#!/usr/bin/env python3
"""Diff two BENCH_regime.json files and fail on replacement-policy regression.

Usage:
    compare_regime.py BASELINE NEW [--tolerance 0.10] [--absolute]
                      [--p99-floor-us 50] [--strict-scan]

The regime matrix (crates/bench/src/bin/regime_matrix.rs) emits one cell
per (regime, policy). This script enforces, in order:

1. **Structure** — NEW contains every (regime, policy) cell BASELINE has,
   covering all three policies (clock, sieve, 2q) and at least four
   regimes. A silently dropped cell is a regression in coverage.
2. **Scan resistance** — in the `scan` regime, 2Q's DRAM hit rate exceeds
   CLOCK's. Checked on BASELINE (the committed record) always, and on NEW
   too with `--strict-scan`.
3. **Throughput** — per cell, ops/s may not regress by more than
   `--tolerance` (default 10%). By default cells are *regime-normalized*
   first: each cell's ops/s is divided by the mean ops/s of its regime in
   the same file, so machine-speed differences between the baseline box
   and the CI runner cancel and only a policy's *relative* standing is
   compared. `--absolute` compares raw ops/s instead (same-machine runs).
4. **p99 latency** — per cell, (normalized) p99 may not rise by more than
   `--tolerance`. Cells where both p99 values sit under `--p99-floor-us`
   are skipped: single-digit-microsecond quantiles are timer noise.

Exit status: 0 clean, 1 any regression, 2 usage/input error.
"""

import argparse
import json
import sys

POLICIES = ("clock", "sieve", "2q")
MIN_REGIMES = 4


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    cells = {(c["regime"], c["policy"]): c for c in doc.get("cells", [])}
    if not cells:
        print(f"error: {path} has no cells", file=sys.stderr)
        sys.exit(2)
    return doc, cells


def regime_means(cells, key):
    """Mean of `key` per regime (for machine-portable normalization)."""
    sums = {}
    for (regime, _), c in cells.items():
        s, n = sums.get(regime, (0.0, 0))
        sums[regime] = (s + c[key], n + 1)
    return {r: s / n for r, (s, n) in sums.items() if n}


def normalized(cells, key):
    means = regime_means(cells, key)
    return {
        k: (c[key] / means[k[0]] if means.get(k[0]) else 0.0)
        for k, c in cells.items()
    }


def check_scan(cells, label, failures):
    two_q = cells.get(("scan", "2q"))
    clock = cells.get(("scan", "clock"))
    if two_q is None or clock is None:
        failures.append(f"{label}: scan regime missing 2q/clock cells")
        return
    if two_q["dram_hit_rate"] <= clock["dram_hit_rate"]:
        failures.append(
            f"{label}: scan regime not scan-resistant — 2q DRAM hit rate "
            f"{two_q['dram_hit_rate']:.4f} <= clock {clock['dram_hit_rate']:.4f}"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional regression per cell (default 0.10)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw values instead of regime-normalized ones")
    ap.add_argument("--p99-floor-us", type=float, default=50.0,
                    help="skip p99 comparison when both values are below this")
    ap.add_argument("--strict-scan", action="store_true",
                    help="require the scan-resistance invariant on NEW too")
    args = ap.parse_args()

    _, base = load(args.baseline)
    _, new = load(args.new)
    failures = []

    # 1. Structure.
    missing = sorted(k for k in base if k not in new)
    for k in missing:
        failures.append(f"cell {k[0]}/{k[1]} present in baseline, missing in new run")
    new_regimes = {r for r, _ in new}
    new_policies = {p for _, p in new}
    if len(new_regimes) < MIN_REGIMES:
        failures.append(
            f"new run covers {len(new_regimes)} regimes (< {MIN_REGIMES}): "
            f"{sorted(new_regimes)}"
        )
    for p in POLICIES:
        if p not in new_policies:
            failures.append(f"new run is missing policy {p!r}")

    # 2. Scan resistance.
    check_scan(base, "baseline", failures)
    if args.strict_scan:
        check_scan(new, "new run", failures)

    # 3/4. Per-cell throughput and p99.
    if args.absolute:
        base_tput = {k: c["ops_per_sec"] for k, c in base.items()}
        new_tput = {k: c["ops_per_sec"] for k, c in new.items()}
        base_p99 = {k: c["p99_us"] for k, c in base.items()}
        new_p99 = {k: c["p99_us"] for k, c in new.items()}
        mode = "absolute"
    else:
        base_tput = normalized(base, "ops_per_sec")
        new_tput = normalized(new, "ops_per_sec")
        base_p99 = normalized(base, "p99_us")
        new_p99 = normalized(new, "p99_us")
        mode = "regime-normalized"

    compared = 0
    for k in sorted(base):
        if k not in new:
            continue
        compared += 1
        regime, policy = k
        b, n = base_tput[k], new_tput[k]
        if b > 0 and n < b * (1.0 - args.tolerance):
            failures.append(
                f"{regime}/{policy}: {mode} throughput regressed "
                f"{b:.3f} -> {n:.3f} ({(n / b - 1.0) * 100:+.1f}%)"
            )
        if base[k].get("scan") or new[k].get("scan"):
            continue  # bimodal latency (point ops vs sweeps): p99 is noise
        raw_b = base[k]["p99_us"]
        raw_n = new[k]["p99_us"]
        if raw_b < args.p99_floor_us and raw_n < args.p99_floor_us:
            continue  # microsecond-scale quantiles are timer noise
        b, n = base_p99[k], new_p99[k]
        if b > 0 and n > b * (1.0 + args.tolerance):
            failures.append(
                f"{regime}/{policy}: {mode} p99 regressed "
                f"{b:.3f} -> {n:.3f} ({(n / b - 1.0) * 100:+.1f}%)"
            )

    print(f"compared {compared} cells ({mode}, tolerance {args.tolerance:.0%})")
    if failures:
        print(f"REGRESSION: {len(failures)} failure(s)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("OK: no replacement-policy regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
