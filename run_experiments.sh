#!/usr/bin/env bash
# Run every experiment binary (one per paper table/figure), writing tables
# to stdout and CSVs to results/.
#
#   ./run_experiments.sh                 # full scale (~30-45 min)
#   SPITFIRE_QUICK=1 ./run_experiments.sh  # smoke scale (~5 min)
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release -p spitfire-bench

BINS=(
  table1_devices
  table2_inclusivity
  fig5_memory_mode
  fig6_bypass_dram
  fig7_bypass_nvm
  fig8_nvm_writes
  fig9_hierarchy
  fig10_adaptive
  fig11_granularity
  fig12_ablation
  fig13_lifetime
  fig14_grid
  fig15_dbsize
  ablation_endurance
  scaling_threads
)

for bin in "${BINS[@]}"; do
  echo
  ./target/release/"$bin"
done

echo "All experiments complete; CSVs in results/."
