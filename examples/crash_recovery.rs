//! Crash and recovery on the NVM-aware WAL (paper §5.2).
//!
//! Commits transactions, then pulls the (virtual) power cord: volatile
//! state vanishes and un-persisted NVM cache lines roll back. Recovery
//! scans the persistent NVM buffer, replays the log (analysis / redo /
//! undo), and rebuilds the indexes — committed data survives, the
//! in-flight transaction does not.
//!
//! ```sh
//! cargo run --release -p spitfire-bench --example crash_recovery
//! ```

use std::sync::Arc;

use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_txn::{Database, DbConfig, TxnError};

const TABLE: u32 = 1;
const TUPLE: usize = 128;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let page = 4096;
    let config = BufferManagerConfig::builder()
        .page_size(page)
        .dram_capacity(16 * page)
        .nvm_capacity(128 * (page + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full) // full crash simulation
        .time_scale(TimeScale::REAL)
        .build()?;
    let bm = Arc::new(BufferManager::new(config)?);
    let db = Database::create(
        bm,
        DbConfig {
            log_tracking: PersistenceTracking::Full,
            ..DbConfig::default()
        },
    )?;
    db.create_table(TABLE, TUPLE)?;

    // Committed work: survives.
    let mut t1 = db.begin();
    for k in 0..50u64 {
        db.insert(
            &mut t1,
            TABLE,
            k,
            &format!("committed row {k:02}")
                .as_bytes()
                .to_vec()
                .tap_pad(),
        )?;
    }
    db.commit(&mut t1)?;
    let mut t2 = db.begin();
    db.update(
        &mut t2,
        TABLE,
        7,
        &b"updated row 07 (v2)".to_vec().tap_pad(),
    )?;
    db.commit(&mut t2)?;
    println!(
        "committed 50 inserts + 1 update; WAL pending bytes: {}",
        db.wal().pending_bytes()
    );

    // In-flight work: must vanish.
    let mut t3 = db.begin();
    db.update(
        &mut t3,
        TABLE,
        7,
        &b"UNCOMMITTED overwrite".to_vec().tap_pad(),
    )?;
    db.insert(
        &mut t3,
        TABLE,
        999,
        &b"UNCOMMITTED insert".to_vec().tap_pad(),
    )?;
    println!("left transaction {} in flight with 2 writes...", t3.id);

    println!("\n*** CRASH ***\n");
    db.simulate_crash();

    let stats = db.recover()?;
    println!(
        "recovery: {} committed txns, {} losers; {} records redone, {} undone; \
         {} pages from the NVM scan; {} index entries rebuilt",
        stats.committed,
        stats.losers,
        stats.redone,
        stats.undone,
        stats.nvm_pages,
        stats.index_entries
    );

    let t = db.begin();
    let row7 = db.read(&t, TABLE, 7)?;
    println!(
        "row 7 after recovery: {:?}",
        String::from_utf8_lossy(&row7[..19])
    );
    assert!(
        row7.starts_with(b"updated row 07 (v2)"),
        "committed update must survive"
    );
    match db.read(&t, TABLE, 999) {
        Err(TxnError::NotFound) => println!("row 999 (uncommitted insert) is gone — correct."),
        other => panic!("uncommitted insert leaked: {other:?}"),
    }
    for k in 0..50u64 {
        assert!(db.read(&t, TABLE, k).is_ok(), "committed row {k} lost");
    }
    println!("all 50 committed rows intact. Recovery works.");
    Ok(())
}

/// Pad example strings to the fixed tuple size.
trait TapPad {
    fn tap_pad(self) -> Vec<u8>;
}

impl TapPad for Vec<u8> {
    fn tap_pad(mut self) -> Vec<u8> {
        self.resize(TUPLE, 0);
        self
    }
}
