//! Quickstart: build a three-tier buffer manager, touch some pages, and
//! watch the migration policy place them across DRAM, NVM, and SSD.
//!
//! ```sh
//! cargo run --release -p spitfire-bench --example quickstart
//! ```

use spitfire_core::{AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, Tier};
use spitfire_device::TimeScale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small hierarchy: 8 pages of DRAM, 32 pages of NVM, unbounded SSD.
    // Device delays are real (Table 1 of the paper) — drop to
    // TimeScale::ZERO if you only care about functionality.
    let page = 16 * 1024;
    let config = BufferManagerConfig::builder()
        .page_size(page)
        .dram_capacity(8 * page)
        .nvm_capacity(32 * (page + 64))
        .policy(MigrationPolicy::lazy()) // Spitfire-Lazy <0.01, 0.01, 0.2, 1>
        .time_scale(TimeScale::REAL)
        .build()?;
    let bm = BufferManager::new(config)?;
    println!("hierarchy: {:?}, policy: {}", bm.hierarchy(), bm.policy());

    // Allocate pages (they start on SSD, like every newly created page).
    let pids: Vec<_> = (0..64)
        .map(|_| bm.allocate_page())
        .collect::<Result<_, _>>()?;

    // Write each page once, then hammer a hot subset with reads.
    for (i, pid) in pids.iter().enumerate() {
        let guard = bm.fetch(*pid, AccessIntent::Write)?;
        guard.write(0, format!("page {i:03} payload").as_bytes())?;
    }
    for round in 0..50 {
        for pid in &pids[..6] {
            let guard = bm.fetch(*pid, AccessIntent::Read)?;
            let mut buf = [0u8; 17];
            guard.read(0, &mut buf)?;
            if round == 0 {
                println!(
                    "read {:?} from {:?}: {}",
                    pid,
                    guard.tier(),
                    String::from_utf8_lossy(&buf)
                );
            }
        }
    }

    // Where did everything end up?
    let (dram, nvm) = bm.resident_pages();
    let m = bm.metrics();
    println!(
        "\nresident pages: {dram} in DRAM, {nvm} in NVM (of {} total)",
        pids.len()
    );
    println!(
        "hits: {} DRAM, {} NVM, {} SSD fetches",
        m.dram_hits, m.nvm_hits, m.ssd_fetches
    );
    println!(
        "inclusivity ratio (duplicated pages): {:.3}",
        bm.inclusivity()
    );
    for tier in [Tier::Dram, Tier::Nvm, Tier::Ssd] {
        if let Some(stats) = bm.device_stats(tier) {
            let s = stats.snapshot();
            println!(
                "{:>4}: {:>8} reads / {:>8} writes ({} KB written)",
                tier.label(),
                s.read_ops,
                s.write_ops,
                s.bytes_written / 1024
            );
        }
    }
    println!("\nThe hot pages migrated upward; cold ones stayed down. That's the whole idea.");
    Ok(())
}
