//! Watch the simulated-annealing tuner (paper §4) adapt the migration
//! policy online: start fully eager, converge toward lazy as throughput
//! feedback arrives.
//!
//! ```sh
//! cargo run --release -p spitfire-bench --example adaptive_tuning
//! ```

use std::time::Duration;

use spitfire_core::adaptive::{AnnealingParams, AnnealingTuner};
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::TimeScale;
use spitfire_wkld::{run_epochs, RawYcsb, YcsbConfig, YcsbMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mb = 1 << 20;
    let config = BufferManagerConfig::builder()
        .page_size(16 * 1024)
        .dram_capacity(2 * mb)
        .nvm_capacity(8 * mb)
        .policy(MigrationPolicy::eager())
        .time_scale(TimeScale::REAL)
        .build()?;
    let bm = BufferManager::new(config)?;
    let w = RawYcsb::setup(
        &bm,
        YcsbConfig {
            records: 16_000,
            theta: 0.3,
            mix: YcsbMix::ReadOnly,
        },
    )?;

    let mut tuner = AnnealingTuner::new(MigrationPolicy::eager(), AnnealingParams::default(), 42);
    bm.admin().set_policy(tuner.candidate());
    println!("epoch | policy under test                    | throughput | temperature");

    let bm_ref = &bm;
    let w_ref = &w;
    run_epochs(
        4,
        11,
        Duration::from_millis(300),
        40,
        |_, rng| w_ref.execute(bm_ref, rng).expect("op"),
        |sample| {
            println!(
                "{:>5} | {:<37} | {:>7.0} op/s | {:.4}",
                sample.epoch,
                tuner.candidate().to_string(),
                sample.throughput,
                tuner.temperature()
            );
            let next = tuner.observe(sample.throughput);
            bm_ref.admin().set_policy(next);
        },
    );

    let hist = tuner.history();
    let early: f64 = hist[..10].iter().map(|e| e.throughput).sum::<f64>() / 10.0;
    let late: f64 = hist[hist.len() - 10..]
        .iter()
        .map(|e| e.throughput)
        .sum::<f64>()
        / 10.0;
    println!(
        "\nconverged on {} — first 10 epochs averaged {:.0} op/s, last 10 averaged {:.0} op/s ({:+.0}%)",
        tuner.current(),
        early,
        late,
        (late / early - 1.0) * 100.0
    );
    Ok(())
}
