//! A transactional bank on the full Spitfire stack: MVTO transactions,
//! B+Tree index, NVM-aware WAL — concurrent transfers that must conserve
//! total balance even under conflict-induced aborts.
//!
//! ```sh
//! cargo run --release -p spitfire-bench --example kv_bank
//! ```

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::TimeScale;
use spitfire_txn::{Database, DbConfig, TxnError};

const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 10_000; // cents
const TABLE: u32 = 1;
const TUPLE: usize = 64;

fn encode(balance: u64) -> Vec<u8> {
    let mut p = vec![0u8; TUPLE];
    p[..8].copy_from_slice(&balance.to_le_bytes());
    p
}

fn decode(p: &[u8]) -> u64 {
    u64::from_le_bytes(p[..8].try_into().unwrap())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let page = 4096;
    let config = BufferManagerConfig::builder()
        .page_size(page)
        .dram_capacity(64 * page)
        .nvm_capacity(256 * (page + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::REAL)
        .build()?;
    let bm = Arc::new(BufferManager::new(config)?);
    let db = Arc::new(Database::create(bm, DbConfig::default())?);
    db.create_table(TABLE, TUPLE)?;

    // Open the accounts.
    let mut txn = db.begin();
    for a in 0..ACCOUNTS {
        db.insert(&mut txn, TABLE, a, &encode(INITIAL))?;
    }
    db.commit(&mut txn)?;
    println!("opened {ACCOUNTS} accounts with {INITIAL} cents each");

    // Concurrent random transfers.
    let workers = 4;
    let transfers_per_worker = 2000;
    let handles: Vec<_> = (0..workers)
        .map(|wid| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(wid);
                let (mut ok, mut retries) = (0u64, 0u64);
                for _ in 0..transfers_per_worker {
                    loop {
                        let from = rng.gen_range(0..ACCOUNTS);
                        let to = rng.gen_range(0..ACCOUNTS);
                        if from == to {
                            break;
                        }
                        let amount = rng.gen_range(1..200u64);
                        let mut txn = db.begin();
                        let attempt = (|| -> Result<(), TxnError> {
                            let src = decode(&db.read(&txn, TABLE, from)?);
                            if src < amount {
                                return Ok(()); // insufficient funds: no-op
                            }
                            let dst = decode(&db.read(&txn, TABLE, to)?);
                            db.update(&mut txn, TABLE, from, &encode(src - amount))?;
                            db.update(&mut txn, TABLE, to, &encode(dst + amount))?;
                            Ok(())
                        })();
                        match attempt {
                            Ok(()) => {
                                if db.commit(&mut txn).is_ok() {
                                    ok += 1;
                                    break;
                                }
                                retries += 1; // commit-time conflict: retry
                            }
                            Err(TxnError::Conflict) => {
                                let _ = db.abort(&mut txn);
                                retries += 1;
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
                (ok, retries)
            })
        })
        .collect();

    let mut total_ok = 0;
    let mut total_retries = 0;
    for h in handles {
        let (ok, retries) = h.join().unwrap();
        total_ok += ok;
        total_retries += retries;
    }
    let (commits, aborts) = db.txn_stats();
    println!("transfers committed: {total_ok} (retries after conflicts: {total_retries})");
    println!("database txn stats: {commits} commits, {aborts} aborts");

    // The invariant: money is conserved.
    let txn = db.begin();
    let total: u64 = (0..ACCOUNTS)
        .map(|a| decode(&db.read(&txn, TABLE, a).unwrap()))
        .sum();
    println!("total balance: {total} (expected {})", ACCOUNTS * INITIAL);
    assert_eq!(total, ACCOUNTS * INITIAL, "conservation violated!");
    println!("conservation holds under concurrent MVTO transactions.");
    Ok(())
}
