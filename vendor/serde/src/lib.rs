//! Vendored stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain-old-data snapshot types — nothing actually serializes through serde
//! (JSON output is hand-rolled in `spitfire-obs`). Since crates.io is
//! unreachable in the build environment, this proc-macro crate supplies
//! no-op derives so those types keep compiling unchanged, and real serde can
//! be dropped in later without touching call sites.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]` — emits no code.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]` — emits no code.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
