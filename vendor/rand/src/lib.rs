//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the parts of `rand` 0.8 that the workspace uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, `gen` / `gen_range` / `gen_bool`,
//! and the [`rngs::SmallRng`] / [`rngs::StdRng`] generators (xoshiro256++
//! seeded via splitmix64). Statistical quality is adequate for workload
//! generation and randomized tests; this is not a cryptographic RNG.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types constructible from a random word stream (stand-in for
/// `Standard: Distribution<T>`).
pub trait FromRandom {
    /// Draw one value from `rng`.
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (stand-in for `SampleRange<T>`).
///
/// The output type is a trait *parameter* (as in real rand) rather than an
/// associated type, so type inference can flow backward from the use site
/// (`buf[rng.gen_range(0..4)]` infers `usize`).
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Widening-multiply range reduction (Lemire-style, without the rejection
// step — bias is < 2^-32 for the span sizes used in this workspace).
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = f64::from_random(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = f64::from_random(rng);
        self.start() + unit * (self.end() - self.start())
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Draw a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_random(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy; this offline stand-in derives the seed from
    /// the system clock and a process-local counter instead.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CTR: AtomicU64 = AtomicU64::new(0);
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t ^ CTR.fetch_add(0x6a09e667f3bcc909, Ordering::Relaxed))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point.
        if s == [0; 4] {
            s[0] = 0x9e3779b97f4a7c15;
        }
        Self { s }
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Concrete generators (`SmallRng`, `StdRng`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Fast non-cryptographic RNG (gated behind the `small_rng` feature in
    /// real rand; always available here but the feature flag is declared).
    #[derive(Debug, Clone)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_seed(seed))
        }
    }

    /// Default generator (cryptographic in real rand; xoshiro here).
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }
}

/// `rand::thread_rng()` stand-in: a fresh entropy-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0..=3u8);
            assert!(w <= 3);
            let f = r.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let i = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniformity_coarse() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[r.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
