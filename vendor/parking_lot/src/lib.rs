//! Vendored stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the `parking_lot` 0.12 API that the workspace uses, layered
//! over `std::sync`. Semantics match parking_lot where they differ from std:
//! poisoning is ignored (a panicking holder does not poison the lock).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning wrapper over [`std::sync::Mutex`]).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `const` contexts).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock (non-poisoning wrapper over [`std::sync::RwLock`]).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock (usable in `const` contexts).
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: g }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: g }
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Outcome of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable compatible with [`Mutex`] (parking_lot-style API:
/// `wait` takes `&mut MutexGuard`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable (usable in `const` contexts).
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// One-time initialization cell (subset of parking_lot's `Once`).
pub struct Once {
    done: AtomicBool,
    inner: std::sync::Once,
}

impl Default for Once {
    fn default() -> Self {
        Self::new()
    }
}

impl Once {
    /// Create a new `Once`.
    pub const fn new() -> Self {
        Self {
            done: AtomicBool::new(false),
            inner: std::sync::Once::new(),
        }
    }

    /// Run `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(|| {
            f();
            self.done.store(true, Ordering::Release);
        });
    }

    /// True once `call_once` has completed.
    pub fn state_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_try_lock() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(0u32);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
            assert!(l.try_write().is_none());
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut g = m.lock();
            *g = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            c.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
