//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`/`boxed`,
//! range and tuple strategies, [`collection::vec`], [`option::of`],
//! [`bool::weighted`], `any::<T>()`, the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: inputs are generated from a fast
//! deterministic PRNG (seeded per test name and case index, so failures
//! reproduce across runs) and **failing cases are not shrunk** — the
//! assertion message reports the case number instead.

/// Deterministic test RNG and run configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    ///
    /// Only `cases` is honoured; the other fields exist so struct literals
    /// with functional update (`..ProptestConfig::default()`) keep working.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Unused (kept for API compatibility).
        pub max_shrink_iters: u32,
        /// Unused (kept for API compatibility).
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
                failure_persistence: None,
            }
        }
    }

    /// FNV-1a hash of a test name, used to derive per-test seeds.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Deterministic xoshiro256++ generator driving input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed a generator (expanded via splitmix64).
        pub fn new(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *w = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            Self { s }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and core combinators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate values satisfying `f` (bounded retries; stand-in for
        /// proptest's `prop_filter`).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy producing a constant (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof requires a positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $idx:tt),+)),*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4),
        (A 0, B 1, C 2, D 3, E 4, F 5)
    );

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors whose length is uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating `None` or `Some(inner)` (50/50).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generate `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Boolean strategies (`proptest::bool::weighted`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating `true` with a fixed probability.
    #[derive(Debug, Clone)]
    pub struct Weighted(f64);

    /// Generate `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.unit_f64() < self.0
        }
    }
}

/// Everything tests normally import (`use proptest::prelude::*`).
pub mod prelude {
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate as prop;
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
}

/// Assert inside a property test (no shrinking; maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Equality assert inside a property test (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Inequality assert inside a property test (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $($(#[$attr:meta])*
       fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0u64..(__config.cases as u64) {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __seed ^ (__case.wrapping_add(1)).wrapping_mul(0x9e3779b97f4a7c15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __run = || -> () { $body };
                    __run();
                }
            }
        )*
    };
}

/// Define property tests: each `arg in strategy` parameter is drawn fresh
/// for every case. Failures are not shrunk (vendored stand-in).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        let s = prop_oneof![3 => 0..10u64, 1 => 90..100u64];
        let mut low = 0;
        let mut high = 0;
        for _ in 0..4000 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || (90..100).contains(&v));
            if v < 10 {
                low += 1;
            } else {
                high += 1;
            }
        }
        // 3:1 weighting should be roughly respected.
        assert!(low > high * 2, "low={low} high={high}");
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::new(2);
        let s = crate::collection::vec((0..5u8, any::<bool>()).prop_map(|(a, b)| (a, b)), 1..4);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|(a, _)| *a < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself drives this test.
        #[test]
        fn macro_generates_args(
            x in 0..100u64,
            flip in prop::bool::weighted(0.5),
            opt in prop::option::of(0..3usize),
        ) {
            prop_assert!(x < 100);
            let _ = flip;
            if let Some(o) = opt {
                prop_assert!(o < 3, "opt {}", o);
            }
        }
    }
}
