//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the criterion 0.5 API used by `benches/microbench.rs`:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a straightforward
//! warm-up-then-sample wall-clock loop: per-sample mean ns/iter with
//! min / median / max printed per benchmark. No statistical analysis,
//! HTML reports, or baseline comparison.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not interpreted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(self, name, &mut f);
        self
    }
}

/// A named group of benchmarks (`group/name` ids).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let id = format!("{}/{}", self.name, name);
        run_bench(self.criterion, &id, &mut f);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` back-to-back for the requested iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` with un-timed per-iteration `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, f: &mut F) {
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably, while warming caches/branch predictors.
    let warm_deadline = Instant::now() + c.warm_up_time;
    let mut iters: u64 = 1;
    loop {
        let d = time_once(f, iters);
        if Instant::now() >= warm_deadline && d >= Duration::from_micros(50) {
            break;
        }
        if d < Duration::from_micros(200) {
            iters = iters.saturating_mul(2);
        }
        if iters >= (1 << 30) {
            break;
        }
    }
    // Aim each sample at measurement_time / sample_size.
    let per_sample = c.measurement_time.as_nanos() as u64 / c.sample_size as u64;
    let last = time_once(f, iters);
    let ns_per_iter = (last.as_nanos() as u64 / iters).max(1);
    iters = (per_sample / ns_per_iter).clamp(1, 1 << 34);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let d = time_once(f, iters);
        samples.push(d.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<40} time: [{min:>10.1} ns {median:>10.1} ns {max:>10.1} ns] ({iters} iters/sample)"
    );
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop_add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| 5u64, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn runs_quickly_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        sample_bench(&mut c);
    }
}
