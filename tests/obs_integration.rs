//! Full-stack observability integration: enable the recorder, drive real
//! transactions through the three-tier stack, and assert that fetch / WAL /
//! commit latencies come out of *both* exporters with sane quantiles, and
//! that buffer + device counters route into the same report.

use std::sync::Arc;
use std::time::Duration;

use spitfire_bench::{database, three_tier, MB};
use spitfire_core::MigrationPolicy;

#[test]
fn report_exports_fetch_wal_commit_quantiles() {
    let bm = three_tier(2 * MB, 8 * MB, MigrationPolicy::lazy());
    let db = Arc::new(database(Arc::clone(&bm)));

    spitfire_obs::set_enabled(true);
    // Time every op (no sampling) so the small fixed op counts below are
    // deterministic lower bounds on histogram counts.
    spitfire_obs::set_sample_interval(1);
    spitfire_obs::registry().reset_histograms();
    bm.register_obs_gauges();
    db.register_obs_gauges();
    spitfire_obs::start_sampler(Duration::from_millis(20));

    db.create_table(1, 128).unwrap();
    for k in 0..400u64 {
        let mut t = db.begin();
        db.insert(&mut t, 1, k, &[7u8; 128]).unwrap();
        db.commit(&mut t).unwrap();
    }
    for k in 0..400u64 {
        let t = db.begin();
        db.read(&t, 1, k).unwrap();
    }

    std::thread::sleep(Duration::from_millis(60));
    spitfire_obs::stop_sampler();

    let mut report = spitfire_obs::Report::capture();
    db.fill_obs_report(&mut report);
    spitfire_obs::set_enabled(false);
    spitfire_obs::set_sample_interval(spitfire_obs::DEFAULT_SAMPLE_INTERVAL);

    // Histograms: the three acceptance operations all recorded, with
    // internally consistent quantiles.
    for op in ["fetch_dram_hit", "wal_append", "txn_commit"] {
        let h = report
            .histograms
            .iter()
            .find(|h| h.name == op)
            .unwrap_or_else(|| panic!("histogram {op} missing"));
        assert!(h.snapshot.count > 0, "{op} recorded nothing");
        let p50 = h.snapshot.quantile(0.5).unwrap();
        let p99 = h.snapshot.quantile(0.99).unwrap();
        assert!(p50 <= p99, "{op}: p50 {p50} > p99 {p99}");
    }

    // Counters: buffer metrics and txn stats routed into the report.
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} missing"))
            .1
    };
    assert!(counter("txn_commits") >= 400);
    assert!(counter("dram_hits") > 0);
    assert!(counter("nvm_bytes_written") > 0 || counter("nvm_write_ops") > 0);

    // Gauges: registered weak gauges are alive and sampled.
    assert!(
        report
            .gauges
            .iter()
            .any(|(n, _)| n == "dram_occupied_frames"),
        "gauges: {:?}",
        report.gauges.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    assert!(
        !report.series.is_empty(),
        "sampler produced no time series points"
    );

    // Both exporters surface the quantiles.
    let prom = report.to_prometheus();
    for op in ["fetch_dram_hit", "wal_append", "txn_commit"] {
        assert!(
            prom.contains(&format!(
                "spitfire_op_latency_seconds{{op=\"{op}\",quantile=\"0.5\"}}"
            )),
            "prometheus missing p50 for {op}:\n{prom}"
        );
        assert!(
            prom.contains(&format!(
                "spitfire_op_latency_seconds{{op=\"{op}\",quantile=\"0.99\"}}"
            )),
            "prometheus missing p99 for {op}"
        );
    }
    let json = report.to_json();
    for op in ["fetch_dram_hit", "wal_append", "txn_commit"] {
        assert!(json.contains(&format!("\"{op}\"")), "json missing {op}");
    }
    assert!(json.contains("\"p50_ns\"") && json.contains("\"p99_ns\""));
}
