//! Smoke tests for the experiment harness plumbing: scaled-down versions
//! of the paper's headline effects must reproduce at `TimeScale::ZERO`-free
//! speed (tiny REAL-scale runs), so a broken cost model or policy wiring
//! fails CI rather than silently producing flat figures.

use spitfire_bench::{build_one_workload, runner, three_tier, ycsb_config, MB};
use spitfire_core::{MigrationPolicy, Tier};
use spitfire_wkld::{run_workload, RawYcsb, YcsbMix};

/// These tests measure real (emulated) timing; running them concurrently
/// on one host would distort each other's clocks, so they serialize.
static TIMING_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn lazy_beats_eager_on_read_only_ycsb() {
    let _serial = TIMING_LOCK.lock().unwrap();
    // The paper's central claim (§6.3): on a three-tier hierarchy whose
    // working set exceeds DRAM, lazy DRAM migration beats eager.
    let w = build_one_workload("YCSB-RO", 2 * MB, 8 * MB, 16 * MB, MigrationPolicy::eager());
    let eager = w.run_point(MigrationPolicy::eager(), 2).throughput();
    let lazy = w
        .run_point(MigrationPolicy::new(0.01, 0.01, 1.0, 1.0), 2)
        .throughput();
    assert!(
        lazy > eager * 1.05,
        "lazy ({lazy:.0}) must beat eager ({eager:.0}) by a visible margin"
    );
}

#[test]
fn eager_nvm_admission_writes_more_to_nvm() {
    let _serial = TIMING_LOCK.lock().unwrap();
    // Figure 8's effect: N = 1 writes far more to NVM than N = 0.01.
    let measure = |n: f64| {
        let policy = MigrationPolicy::new(1.0, 1.0, n, n);
        let w = build_one_workload("YCSB-RO", 2 * MB, 8 * MB, 16 * MB, policy);
        let before = spitfire_bench::nvm_bytes_written(w.bm());
        let report = w.run_point(policy, 2);
        let written = spitfire_bench::nvm_bytes_written(w.bm()) - before;
        written as f64 / report.committed.max(1) as f64
    };
    let lazy = measure(0.01);
    let eager = measure(1.0);
    assert!(
        eager > lazy * 3.0,
        "eager NVM admission ({eager:.0} B/op) must write much more than lazy ({lazy:.0} B/op)"
    );
}

#[test]
fn nvm_ssd_beats_dram_ssd_when_uncacheable() {
    let _serial = TIMING_LOCK.lock().unwrap();
    // Figure 5 / 15's crossover: equal-cost NVM-SSD wins once the database
    // stops fitting the DRAM buffer. (NVM is ~2.2x cheaper per byte.)
    let db_bytes = 24 * MB;
    let dram_ssd = {
        let bm = three_tier(4 * MB, 0, MigrationPolicy::eager());
        let w = RawYcsb::setup(&bm, ycsb_config(db_bytes, 0.3, YcsbMix::ReadOnly)).unwrap();
        run_workload(&runner(2), |_, rng| w.execute(&bm, rng).unwrap()).throughput()
    };
    let nvm_ssd = {
        let bm = three_tier(0, 9 * MB, MigrationPolicy::lazy());
        let w = RawYcsb::setup(&bm, ycsb_config(db_bytes, 0.3, YcsbMix::ReadOnly)).unwrap();
        run_workload(&runner(2), |_, rng| w.execute(&bm, rng).unwrap()).throughput()
    };
    assert!(
        nvm_ssd > dram_ssd,
        "equi-cost NVM-SSD ({nvm_ssd:.0}) must beat DRAM-SSD ({dram_ssd:.0}) beyond cacheability"
    );
}

#[test]
fn coarse_granules_reduce_nvm_read_amplification() {
    let _serial = TIMING_LOCK.lock().unwrap();
    // Figure 11's effect: 64 B loads on a 256 B-granularity device amplify
    // NVM read traffic versus 256 B loads.
    let per_op_nvm_reads = |granule: usize| {
        let bm = spitfire_bench::manager_with(|b| {
            b.dram_capacity(2 * MB)
                .nvm_capacity(8 * MB)
                .policy(MigrationPolicy::eager())
                .fine_grained(granule)
        });
        let w = RawYcsb::setup(&bm, ycsb_config(8 * MB, 0.3, YcsbMix::ReadOnly)).unwrap();
        let report = run_workload(&runner(2), |_, rng| w.execute(&bm, rng).unwrap());
        let reads = bm
            .device_stats(Tier::Nvm)
            .map(|s| s.snapshot().bytes_read)
            .unwrap_or(0);
        reads as f64 / report.committed.max(1) as f64
    };
    let fine = per_op_nvm_reads(64);
    let matched = per_op_nvm_reads(256);
    assert!(
        fine > matched * 1.5,
        "64 B loads ({fine:.0} B/op) must amplify NVM reads vs 256 B ({matched:.0} B/op)"
    );
}
