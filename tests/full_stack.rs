//! Workspace-spanning integration tests: the full stack (devices → buffer
//! manager → index → transactions → workloads) exercised together at
//! `TimeScale::ZERO`.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy, Tier};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_txn::{Database, DbConfig};
use spitfire_wkld::{
    run_workload, RawYcsb, RunnerConfig, Tpcc, TpccConfig, YcsbConfig, YcsbMix, YcsbTxn,
};

const PAGE: usize = 4096;

fn bm(dram_pages: usize, nvm_pages: usize, policy: MigrationPolicy) -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(dram_pages * PAGE)
        .nvm_capacity(nvm_pages * (PAGE + 64))
        .policy(policy)
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    Arc::new(BufferManager::new(config).unwrap())
}

fn quick_runner(threads: usize) -> RunnerConfig {
    RunnerConfig {
        threads,
        warmup: std::time::Duration::from_millis(30),
        duration: std::time::Duration::from_millis(200),
        seed: 42,
    }
}

#[test]
fn raw_ycsb_on_all_hierarchies() {
    for (dram, nvm) in [(32, 64), (64, 0), (0, 96)] {
        let bm = bm(
            dram.max(1) * usize::from(dram > 0),
            nvm,
            MigrationPolicy::lazy(),
        );
        let w = RawYcsb::setup(
            &bm,
            YcsbConfig {
                records: 800,
                theta: 0.3,
                mix: YcsbMix::Balanced,
            },
        )
        .unwrap();
        let report = run_workload(&quick_runner(4), |_, rng| w.execute(&bm, rng).unwrap());
        assert!(
            report.committed > 0,
            "hierarchy ({dram},{nvm}) made no progress"
        );
        assert_eq!(report.abort_rate(), 0.0, "raw ops never abort");
    }
}

#[test]
fn transactional_ycsb_under_contention() {
    let bm = bm(32, 64, MigrationPolicy::lazy());
    let db = Arc::new(Database::create(bm, DbConfig::default()).unwrap());
    let w = YcsbTxn::setup(
        &db,
        YcsbConfig {
            records: 200,
            theta: 0.9,
            mix: YcsbMix::WriteHeavy,
        },
    )
    .unwrap();
    let report = run_workload(&quick_runner(4), |_, rng| w.execute(&db, rng).unwrap());
    assert!(
        report.committed > 100,
        "committed only {}",
        report.committed
    );
    // Heavy skew + write-heavy means conflicts must occur and be survived.
    let (_commits, aborts) = db.txn_stats();
    assert!(
        aborts > 0,
        "expected MVTO conflicts under zipf 0.9 write-heavy"
    );
}

#[test]
fn tpcc_multithreaded_consistency() {
    let bm = bm(128, 512, MigrationPolicy::lazy());
    let db = Arc::new(Database::create(bm, DbConfig::default()).unwrap());
    let t = Tpcc::setup(
        &db,
        TpccConfig {
            warehouses: 2,
            customers_per_district: 30,
            items: 200,
        },
    )
    .unwrap();
    let report = run_workload(&quick_runner(4), |_, rng| t.execute(&db, rng).unwrap());
    assert!(report.committed > 50, "committed only {}", report.committed);
    // Invariant: every order's total equals the sum of its lines (checked
    // in the workload crate per order; here we verify global progress and
    // that the buffer manager touched all three tiers).
    let m = db.buffer_manager().metrics();
    assert!(m.dram_hits > 0);
    assert!(m.total_requests() > 0);
}

#[test]
fn end_to_end_crash_recovery_with_workload() {
    let bm = bm(16, 256, MigrationPolicy::lazy());
    let db = Arc::new(
        Database::create(
            bm,
            DbConfig {
                log_tracking: PersistenceTracking::Full,
                ..DbConfig::default()
            },
        )
        .unwrap(),
    );
    let w = YcsbTxn::setup(
        &db,
        YcsbConfig {
            records: 300,
            theta: 0.5,
            mix: YcsbMix::Balanced,
        },
    )
    .unwrap();
    // Run a burst of transactions single-threaded for determinism.
    let mut rng = SmallRng::seed_from_u64(3);
    for _ in 0..500 {
        w.execute(&db, &mut rng).unwrap();
    }
    // Capture committed state.
    let reference: Vec<Vec<u8>> = {
        let t = db.begin();
        (0..300u64)
            .map(|k| db.read(&t, spitfire_wkld::ycsb::YCSB_TABLE, k).unwrap())
            .collect()
    };
    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert!(stats.index_entries >= 300);
    let t = db.begin();
    for (k, want) in reference.iter().enumerate() {
        let got = db
            .read(&t, spitfire_wkld::ycsb::YCSB_TABLE, k as u64)
            .unwrap();
        assert_eq!(&got, want, "key {k} diverged across crash");
    }
}

#[test]
fn checkpoint_then_crash_preserves_state_on_every_hierarchy() {
    for (dram, nvm) in [(32usize, 64usize), (64, 0)] {
        let bm = bm(dram, nvm, MigrationPolicy::lazy());
        let db = Database::create(
            bm,
            DbConfig {
                log_tracking: PersistenceTracking::Full,
                ..DbConfig::default()
            },
        )
        .unwrap();
        db.create_table(1, 64).unwrap();
        let mut t = db.begin();
        for k in 0..50u64 {
            db.insert(&mut t, 1, k, &[k as u8; 64]).unwrap();
        }
        db.commit(&mut t).unwrap();
        db.checkpoint().unwrap();
        let mut t = db.begin();
        db.update(&mut t, 1, 10, &[0xFF; 64]).unwrap();
        db.commit(&mut t).unwrap();
        db.simulate_crash();
        db.recover().unwrap();
        let t = db.begin();
        for k in 0..50u64 {
            let want = if k == 10 {
                [0xFF; 64].to_vec()
            } else {
                vec![k as u8; 64]
            };
            assert_eq!(db.read(&t, 1, k).unwrap(), want, "({dram},{nvm}) key {k}");
        }
    }
}

#[test]
fn policy_swap_mid_run_is_safe() {
    let bm = bm(16, 32, MigrationPolicy::eager());
    let w = Arc::new(
        RawYcsb::setup(
            &bm,
            YcsbConfig {
                records: 400,
                theta: 0.3,
                mix: YcsbMix::Balanced,
            },
        )
        .unwrap(),
    );
    let bm2 = Arc::clone(&bm);
    let w2 = Arc::clone(&w);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let swapper = std::thread::spawn(move || {
        let policies = [
            MigrationPolicy::eager(),
            MigrationPolicy::lazy(),
            MigrationPolicy::hymem(),
            MigrationPolicy::new(0.0, 0.0, 0.0, 0.0),
        ];
        let mut i = 0;
        while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
            bm2.admin().set_policy(policies[i % policies.len()]);
            i += 1;
            std::thread::yield_now();
        }
    });
    let workers: Vec<_> = (0..4)
        .map(|s| {
            let bm = Arc::clone(&bm);
            let w = Arc::clone(&w2);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(s);
                for _ in 0..2000 {
                    w.execute(&bm, &mut rng).unwrap();
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    swapper.join().unwrap();
}

#[test]
fn device_counters_consistent_with_metrics() {
    let bm = bm(8, 16, MigrationPolicy::eager());
    let w = RawYcsb::setup(
        &bm,
        YcsbConfig {
            records: 400,
            theta: 0.3,
            mix: YcsbMix::ReadOnly,
        },
    )
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..2000 {
        w.execute(&bm, &mut rng).unwrap();
    }
    let m = bm.metrics();
    let ssd = bm.device_stats(Tier::Ssd).unwrap().snapshot();
    // Every recorded SSD fetch read at least one page from the device
    // (setup also wrote pages, so only the read side is comparable).
    assert!(
        ssd.read_ops >= m.ssd_fetches,
        "ssd reads {} < fetches {}",
        ssd.read_ops,
        m.ssd_fetches
    );
    // Every fetch resolves as exactly one of: DRAM hit, NVM hit, SSD
    // fetch, or an NVM→DRAM promotion (recorded as a migration).
    let promotions = m.path(spitfire_core::MigrationPath::NvmToDram);
    assert!(m.dram_hits + m.nvm_hits + m.ssd_fetches + promotions >= 2000);
}
