//! Compile-time assertions over the stable re-export set of
//! `spitfire_core`.
//!
//! Every name referenced here is part of the crate's public API contract:
//! removing or renaming one breaks this test at compile time, forcing the
//! change to be deliberate. Runtime bodies only sanity-check trivial
//! invariants — the point of the test is that it *compiles*.

use std::sync::Arc;

// The stable re-export set. A plain `use` of every name: if any of these
// stops resolving, the API surface changed.
use spitfire_core::{AccessIntent, PageId, Tier};
#[allow(unused_imports)]
use spitfire_core::{
    Admin, BufferError, BufferManager, BufferManagerConfig, BufferManagerConfigBuilder, CycleStats,
    Hierarchy, Maintenance, MaintenanceConfig, MetricsSnapshot, MigrationPath, MigrationPolicy,
    NvmAdmission, PageGuard, PolicyCell, PolicyConfig, ReadGuard, ReplacementPolicy, Result,
    WriteGuard,
};
use spitfire_device::TimeScale;

fn manager() -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(1024)
        .dram_capacity(8 * 1024)
        .nvm_capacity(16 * (1024 + 64))
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    Arc::new(BufferManager::new(config).unwrap())
}

/// The lifecycle API: `admin()` mutators, the `Maintenance` handle, typed
/// fetches. Signatures are pinned by the explicit type ascriptions.
#[test]
fn lifecycle_api_signatures() {
    let bm = manager();

    let admin: Admin<'_> = bm.admin();
    admin.set_policy(MigrationPolicy::lazy());
    admin.set_time_scale(TimeScale::ZERO);
    admin.set_fault_injector(None);
    admin.set_next_page_id(1);

    let maintenance: Maintenance = bm.maintenance();
    assert!(!maintenance.is_running());
    let stats: CycleStats = maintenance.tick();
    assert_eq!(stats, CycleStats::default());
    maintenance.pause_for_crash(); // no workers: must not block
    maintenance.resume();
    maintenance.stop();

    let pid: PageId = bm.allocate_page().unwrap();
    {
        let guard: WriteGuard<'_> = bm.fetch_write(pid).unwrap();
        guard.write(0, b"api").unwrap();
        let _: Tier = guard.tier();
    }
    {
        let guard: ReadGuard<'_> = bm.fetch_read(pid).unwrap();
        let mut b = [0u8; 3];
        guard.read(0, &mut b).unwrap();
        assert_eq!(&b, b"api");
    }
    // The untyped fetch stays available for benches and generic drivers.
    let guard: PageGuard<'_> = bm.fetch(pid, AccessIntent::Read).unwrap();
    drop(guard);

    let snap: MetricsSnapshot = bm.metrics();
    assert!(snap.backpressure_fallbacks == 0);
    let _: (usize, usize) = bm.free_frames();
}

/// Error types are `#[non_exhaustive]` with a uniform `is_retryable()` at
/// every layer, and conversions compose device → buffer → txn.
#[test]
fn error_api_contract() {
    use spitfire_device::DeviceError;
    use spitfire_txn::TxnError;

    let dev = DeviceError::InjectedTransient { op: "write" };
    assert!(dev.is_retryable());
    let buf: BufferError = dev.into();
    assert!(buf.is_retryable());
    let txn: TxnError = buf.into();
    assert!(txn.is_retryable());
    assert!(TxnError::Conflict.is_retryable());

    let fatal: BufferError = DeviceError::InjectedFatal { op: "write" }.into();
    assert!(!fatal.is_retryable());
}

/// Config surface: builder methods for the maintenance service and the
/// public `MaintenanceConfig` fields.
#[test]
fn maintenance_config_surface() {
    let m = MaintenanceConfig {
        dram_low: 0.1,
        dram_high: 0.2,
        nvm_low: 0.1,
        nvm_high: 0.2,
        batch: 4,
        interval_us: 100,
        workers: 2,
    };
    let config = BufferManagerConfig::builder()
        .page_size(1024)
        .dram_capacity(8 * 1024)
        .nvm_capacity(16 * (1024 + 64))
        .maintenance(m)
        .watermarks(1.0 / 16.0, 1.0 / 8.0)
        .maintenance_batch(8)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    assert_eq!(config.maintenance.batch, 8);
    let _: Hierarchy = config.hierarchy();
}

/// Replacement-policy surface: `ReplacementPolicy` stays object-safe (pools
/// hold `Box<dyn ..>`), `PolicyConfig` enumerates/names/parses every
/// shipped policy, and the builder exposes one knob per tier.
#[test]
fn replacement_policy_api_surface() {
    use spitfire_core::FrameId;
    use spitfire_sync::AtomicBitmap;

    // Object safety + the full trait surface through a trait object.
    fn exercise(p: &dyn ReplacementPolicy, occupied: &AtomicBitmap) {
        let _: &'static str = p.name();
        p.admit(FrameId(0));
        p.touch(FrameId(0));
        let _: Option<FrameId> = p.victim(occupied);
        let mut batch: Vec<FrameId> = Vec::new();
        p.victims(occupied, 4, &mut batch);
        assert!(batch.len() <= 4);
        let _: usize = p.alloc_hint();
        p.evict(FrameId(0));
    }
    let occupied = AtomicBitmap::new(8);
    occupied.set(0);
    for cfg in PolicyConfig::ALL {
        let p: Box<dyn ReplacementPolicy> = cfg.build(8);
        assert_eq!(p.name(), cfg.name());
        exercise(p.as_ref(), &occupied);
        // Stable names round-trip through Display/FromStr.
        assert_eq!(cfg.to_string().parse::<PolicyConfig>().unwrap(), cfg);
    }
    assert_eq!(PolicyConfig::default(), PolicyConfig::Clock);

    // Per-tier builder knobs land in the config fields.
    let config = BufferManagerConfig::builder()
        .page_size(1024)
        .dram_capacity(8 * 1024)
        .nvm_capacity(16 * (1024 + 64))
        .dram_policy(PolicyConfig::TwoQ)
        .nvm_policy(PolicyConfig::Sieve)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    assert_eq!(config.dram_policy, PolicyConfig::TwoQ);
    assert_eq!(config.nvm_policy, PolicyConfig::Sieve);
    let bm = BufferManager::new(config).unwrap();
    let pid = bm.allocate_page().unwrap();
    drop(bm.fetch_read(pid).unwrap());
}

/// The deprecated runtime-mutator shims on `BufferManager` stay removed.
/// An extension trait supplies same-named methods returning a private
/// marker type; inherent methods win method resolution, so if any shim
/// reappears on `BufferManager` the `Absent` ascriptions below stop
/// compiling (the real shims returned `()`).
#[test]
fn removed_shims_stay_removed() {
    struct Absent;
    trait ShimsAbsent {
        fn set_policy(&self, _: MigrationPolicy) -> Absent {
            Absent
        }
        fn set_time_scale(&self, _: TimeScale) -> Absent {
            Absent
        }
        fn set_fault_injector(&self, _: Option<Arc<spitfire_device::FaultInjector>>) -> Absent {
            Absent
        }
        fn set_next_page_id(&self, _: u64) -> Absent {
            Absent
        }
    }
    impl ShimsAbsent for BufferManager {}

    let bm = manager();
    let _: Absent = bm.set_policy(MigrationPolicy::lazy());
    let _: Absent = bm.set_time_scale(TimeScale::ZERO);
    let _: Absent = bm.set_fault_injector(None);
    let _: Absent = bm.set_next_page_id(1);
    // The supported path is the scoped admin handle.
    bm.admin().set_next_page_id(1);
}
