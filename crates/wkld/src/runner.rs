//! Multi-threaded workload runner: warm-up, timed measurement, and
//! epoch-based sampling for the adaptive-policy experiments.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Untimed warm-up phase.
    pub warmup: Duration,
    /// Timed measurement phase.
    pub duration: Duration,
    /// Base RNG seed (each worker derives its own).
    pub seed: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            threads: 1,
            warmup: Duration::from_millis(200),
            duration: Duration::from_secs(1),
            seed: 0xC0FFEE,
        }
    }
}

/// Result of a timed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Operations that committed during the measurement phase.
    pub committed: u64,
    /// Operations attempted (committed + aborted).
    pub attempted: u64,
    /// Actual measured wall-clock time.
    pub elapsed: Duration,
    /// Sampled per-operation latencies (every 32nd operation), sorted.
    pub latency_samples: Vec<Duration>,
}

impl RunReport {
    /// Committed operations per second.
    pub fn throughput(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Fraction of attempts that aborted.
    pub fn abort_rate(&self) -> f64 {
        if self.attempted == 0 {
            return 0.0;
        }
        1.0 - self.committed as f64 / self.attempted as f64
    }

    /// Latency at quantile `q` in `[0, 1]` (e.g. 0.5, 0.99) from the
    /// sampled operations; `None` when nothing was sampled.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        if self.latency_samples.is_empty() {
            return None;
        }
        let idx = ((self.latency_samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(self.latency_samples[idx])
    }

    /// One-line p50/p99 summary of the sampled latencies, for printing
    /// alongside throughput: `lat p50=12.3µs p99=456.7µs (n=1024)`.
    pub fn latency_summary(&self) -> String {
        match (self.latency_quantile(0.5), self.latency_quantile(0.99)) {
            (Some(p50), Some(p99)) => format!(
                "lat p50={:.1}µs p99={:.1}µs (n={})",
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6,
                self.latency_samples.len()
            ),
            _ => "lat n/a".to_string(),
        }
    }
}

/// Run `op` from `config.threads` workers: warm up, then measure.
///
/// `op(worker_index, rng)` returns whether the operation committed; it is
/// expected to panic on real errors (experiment harnesses want failures
/// loud).
pub fn run_workload<F>(config: &RunnerConfig, op: F) -> RunReport
where
    F: Fn(usize, &mut SmallRng) -> bool + Send + Sync,
{
    let op = &op;
    let committed = AtomicU64::new(0);
    let attempted = AtomicU64::new(0);
    let measuring = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let samples = parking_lot::Mutex::new(Vec::new());
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|scope| {
        for t in 0..config.threads {
            let committed = &committed;
            let attempted = &attempted;
            let measuring = &measuring;
            let stop = &stop;
            let samples = &samples;
            let mut rng = SmallRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0x9E37));
            scope.spawn(move || {
                let mut local_committed = 0u64;
                let mut local_attempted = 0u64;
                let mut local_samples: Vec<Duration> = Vec::new();
                // relaxed: stop/measuring flags are phase hints; an op attributed to the wrong side of a phase boundary is measurement noise, not an error.
                while !stop.load(Ordering::Relaxed) {
                    // Sample every 32nd operation's latency (cheap enough
                    // to leave on; two clock reads per 32 ops).
                    let timed = local_attempted.is_multiple_of(32);
                    let start = timed.then(Instant::now);
                    let ok = op(t, &mut rng);
                    // relaxed: phase hint, as above.
                    if measuring.load(Ordering::Relaxed) {
                        if let Some(start) = start {
                            let d = start.elapsed();
                            if spitfire_obs::enabled() {
                                spitfire_obs::record_duration(spitfire_obs::Op::WorkloadOp, d);
                            }
                            local_samples.push(d);
                        }
                        local_attempted += 1;
                        local_committed += u64::from(ok);
                        // Flush local counts periodically so epoch sampling
                        // sees fresh numbers.
                        if local_attempted >= 64 {
                            // relaxed: throughput counters are statistics drained by the progress reporter; exact totals come after join.
                            attempted.fetch_add(local_attempted, Ordering::Relaxed);
                            committed.fetch_add(local_committed, Ordering::Relaxed);
                            local_attempted = 0;
                            local_committed = 0;
                        }
                    }
                }
                // relaxed: final flush; the scope join below synchronizes the report reads.
                attempted.fetch_add(local_attempted, Ordering::Relaxed);
                committed.fetch_add(local_committed, Ordering::Relaxed);
                samples.lock().append(&mut local_samples);
            });
        }
        // Coordinator: warm-up, then timed window.
        std::thread::sleep(config.warmup);
        measuring.store(true, Ordering::SeqCst);
        let start = Instant::now();
        std::thread::sleep(config.duration);
        measuring.store(false, Ordering::SeqCst);
        elapsed = start.elapsed();
        stop.store(true, Ordering::SeqCst);
    });

    let mut latency_samples = samples.into_inner();
    latency_samples.sort_unstable();
    RunReport {
        // relaxed: read after scope join; the join is the synchronization.
        committed: committed.load(Ordering::Relaxed),
        attempted: attempted.load(Ordering::Relaxed),
        elapsed,
        latency_samples,
    }
}

/// One epoch's sample from [`run_epochs`].
#[derive(Debug, Clone, Copy)]
pub struct EpochSample {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Committed operations during the epoch.
    pub committed: u64,
    /// Committed operations per second during the epoch.
    pub throughput: f64,
}

/// Run `op` continuously from `threads` workers while sampling throughput
/// every `epoch` duration; `on_epoch` receives each sample (the adaptive
/// tuner swaps policies there, paper §6.4). Returns all samples.
pub fn run_epochs<F, C>(
    threads: usize,
    seed: u64,
    epoch: Duration,
    n_epochs: usize,
    op: F,
    mut on_epoch: C,
) -> Vec<EpochSample>
where
    F: Fn(usize, &mut SmallRng) -> bool + Send + Sync,
    C: FnMut(EpochSample),
{
    let op = &op;
    let committed = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut samples = Vec::with_capacity(n_epochs);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let committed = &committed;
            let stop = &stop;
            let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x51_7CC1));
            scope.spawn(move || {
                // relaxed: shutdown hint; one extra iteration is harmless.
                while !stop.load(Ordering::Relaxed) {
                    if op(t, &mut rng) {
                        // relaxed: throughput statistic.
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // relaxed: progress sampling reads are advisory between epochs.
        let mut last = committed.load(Ordering::Relaxed);
        for e in 0..n_epochs {
            let start = Instant::now();
            std::thread::sleep(epoch);
            // relaxed: advisory progress sample, as above.
            let now = committed.load(Ordering::Relaxed);
            let sample = EpochSample {
                epoch: e,
                committed: now - last,
                throughput: (now - last) as f64 / start.elapsed().as_secs_f64().max(1e-9),
            };
            last = now;
            on_epoch(sample);
            samples.push(sample);
        }
        stop.store(true, Ordering::SeqCst);
    });
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_workload_counts_commits_and_aborts() {
        let config = RunnerConfig {
            threads: 2,
            warmup: Duration::from_millis(20),
            duration: Duration::from_millis(100),
            seed: 1,
        };
        let calls = AtomicUsize::new(0);
        let report = run_workload(&config, |_, _| {
            // Every third call "aborts".
            !calls.fetch_add(1, Ordering::Relaxed).is_multiple_of(3)
        });
        assert!(report.committed > 0);
        assert!(report.attempted >= report.committed);
        assert!(report.abort_rate() > 0.1 && report.abort_rate() < 0.6);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn latency_quantiles_from_samples() {
        let config = RunnerConfig {
            threads: 1,
            warmup: Duration::from_millis(10),
            duration: Duration::from_millis(80),
            seed: 2,
        };
        let report = run_workload(&config, |_, _| {
            std::hint::black_box((0..50).sum::<u64>());
            true
        });
        assert!(!report.latency_samples.is_empty());
        let p50 = report.latency_quantile(0.5).unwrap();
        let p99 = report.latency_quantile(0.99).unwrap();
        assert!(p99 >= p50);
        assert!(report.latency_quantile(0.0).unwrap() <= p50);
        // Sorted invariant.
        assert!(report.latency_samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn run_epochs_samples_every_epoch() {
        let mut seen = Vec::new();
        let samples = run_epochs(
            1,
            7,
            Duration::from_millis(30),
            4,
            |_, _| true,
            |s| seen.push(s.epoch),
        );
        assert_eq!(samples.len(), 4);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(samples.iter().all(|s| s.throughput > 0.0));
    }
}
