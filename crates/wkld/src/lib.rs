//! Benchmark workloads for Spitfire (paper §6.1): YCSB and TPC-C, plus a
//! multi-threaded runner with warm-up, timed windows, and epoch sampling.
//!
//! * [`ycsb`] — the key-value workload (Zipfian keys, 1 KB tuples, three
//!   read/update mixes), with both a buffer-manager-level driver
//!   ([`ycsb::RawYcsb`], measuring "buffer manager operations per second"
//!   as in §6.3) and a full transactional driver ([`ycsb::YcsbTxn`]).
//! * [`tpcc`] — the order-entry benchmark: nine tables, five transaction
//!   types in the standard mix (88 % of transactions modify data).
//! * [`zipf`] — the Zipfian key-distribution sampler both drivers share.
//! * [`runner`] — spawn N workers, warm up, measure, sample epochs.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod runner;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use runner::{run_epochs, run_workload, EpochSample, RunReport, RunnerConfig};
pub use tpcc::{Tpcc, TpccConfig};
pub use ycsb::{RawYcsb, YcsbConfig, YcsbMix, YcsbOpStream, YcsbTxn};
pub use zipf::{ScrambledZipf, Zipf};
