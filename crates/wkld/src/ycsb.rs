//! YCSB workload (paper §6.1).
//!
//! One table of ~1 KB tuples (4 B key + ten 100 B string columns) accessed
//! by Zipfian-distributed keys. Two transaction types — point read and
//! point update — mixed as:
//!
//! * **YCSB-RO**: 100 % reads
//! * **YCSB-BA**: 50 % reads / 50 % updates
//! * **YCSB-WH**: 10 % reads / 90 % updates
//!
//! Two drivers are provided:
//!
//! * [`RawYcsb`] issues page-level operations straight against the buffer
//!   manager (a fixed key → (page, slot) mapping, no index/transactions) —
//!   this measures "buffer manager operations per second", the metric the
//!   paper's §6.3 policy experiments report.
//! * [`YcsbTxn`] drives the full transactional stack (B+Tree index, MVTO,
//!   WAL) for the end-to-end experiments.

use rand::rngs::SmallRng;
use rand::Rng;
use spitfire_core::{BufferManager, PageId};
use spitfire_txn::{Database, TxnError};

use crate::zipf::ScrambledZipf;

/// YCSB tuple size: 4 B key padded + 10 columns × 100 B ≈ 1 KB.
pub const YCSB_TUPLE: usize = 1000;

/// Read/update mix (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// 100 % reads.
    ReadOnly,
    /// 50 % reads, 50 % updates.
    Balanced,
    /// 10 % reads, 90 % updates.
    WriteHeavy,
}

impl YcsbMix {
    /// Fraction of operations that are updates.
    pub fn update_fraction(self) -> f64 {
        match self {
            YcsbMix::ReadOnly => 0.0,
            YcsbMix::Balanced => 0.5,
            YcsbMix::WriteHeavy => 0.9,
        }
    }

    /// Label used in experiment output ("YCSB-RO" etc.).
    pub fn label(self) -> &'static str {
        match self {
            YcsbMix::ReadOnly => "YCSB-RO",
            YcsbMix::Balanced => "YCSB-BA",
            YcsbMix::WriteHeavy => "YCSB-WH",
        }
    }
}

/// YCSB parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of tuples in the table.
    pub records: u64,
    /// Zipfian skew (`0.3` in §6.3, `0.5` in §6.6).
    pub theta: f64,
    /// Operation mix.
    pub mix: YcsbMix,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 10_000,
            theta: 0.3,
            mix: YcsbMix::Balanced,
        }
    }
}

// ---------------------------------------------------------------------
// Deterministic operation stream
// ---------------------------------------------------------------------

/// A deterministic stream of YCSB operations decoupled from any execution
/// engine. The chaos harness draws `(key, is_update)` pairs from it and
/// drives transactions itself, so one seed yields one operation sequence
/// no matter how many crashes interrupt the run.
#[derive(Debug)]
pub struct YcsbOpStream {
    zipf: ScrambledZipf,
    update_fraction: f64,
}

impl YcsbOpStream {
    /// Build a stream over `config`'s key space and mix.
    pub fn new(config: &YcsbConfig) -> Self {
        YcsbOpStream {
            zipf: ScrambledZipf::new(config.records, config.theta),
            update_fraction: config.mix.update_fraction(),
        }
    }

    /// Draw the next operation: a Zipfian key and whether it is an update.
    pub fn next_op(&self, rng: &mut SmallRng) -> (u64, bool) {
        let key = self.zipf.sample(rng);
        let is_update = rng.gen::<f64>() < self.update_fraction;
        (key, is_update)
    }
}

// ---------------------------------------------------------------------
// Raw buffer-manager driver
// ---------------------------------------------------------------------

/// Buffer-manager-level YCSB: tuples at fixed (page, slot) locations.
pub struct RawYcsb {
    config: YcsbConfig,
    zipf: ScrambledZipf,
    pages: Vec<PageId>,
    tuples_per_page: usize,
}

impl RawYcsb {
    /// Allocate and zero-fill the table on `bm`.
    pub fn setup(bm: &BufferManager, config: YcsbConfig) -> spitfire_core::Result<Self> {
        let tuples_per_page = bm.page_size() / YCSB_TUPLE;
        assert!(tuples_per_page > 0, "page smaller than a YCSB tuple");
        let n_pages = (config.records as usize).div_ceil(tuples_per_page);
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            pages.push(bm.allocate_page()?);
        }
        let zipf = ScrambledZipf::new(config.records, config.theta);
        Ok(RawYcsb {
            config,
            zipf,
            pages,
            tuples_per_page,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Number of data pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    fn locate(&self, key: u64) -> (PageId, usize) {
        let page = (key / self.tuples_per_page as u64) as usize;
        let slot = (key % self.tuples_per_page as u64) as usize;
        (self.pages[page], slot * YCSB_TUPLE)
    }

    /// Execute one operation (read or update of one tuple) against `bm`.
    /// Returns `true` (raw operations never abort).
    pub fn execute(&self, bm: &BufferManager, rng: &mut SmallRng) -> spitfire_core::Result<bool> {
        let key = self.zipf.sample(rng);
        let (pid, offset) = self.locate(key);
        let is_update = rng.gen::<f64>() < self.config.mix.update_fraction();
        if is_update {
            let guard = bm.fetch_write(pid)?;
            let payload = [rng.gen::<u8>(); 64];
            // Update one 100 B column region (64 B write within it mirrors
            // a column overwrite without building the full tuple).
            let column = (key as usize % 10) * 100;
            guard.write(offset + column.min(YCSB_TUPLE - 64), &payload)?;
        } else {
            let guard = bm.fetch_read(pid)?;
            let mut buf = [0u8; YCSB_TUPLE];
            guard.read(offset, &mut buf)?;
            std::hint::black_box(&buf);
        }
        Ok(true)
    }

    /// Warm the buffers with one sequential pass over the table.
    pub fn warmup(&self, bm: &BufferManager) -> spitfire_core::Result<()> {
        let mut buf = [0u8; YCSB_TUPLE];
        for pid in &self.pages {
            let guard = bm.fetch_read(*pid)?;
            guard.read(0, &mut buf)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for RawYcsb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawYcsb")
            .field("records", &self.config.records)
            .field("mix", &self.config.mix.label())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Transactional driver
// ---------------------------------------------------------------------

/// Table id used by the transactional YCSB driver.
pub const YCSB_TABLE: u32 = 100;

/// Full-stack YCSB over [`Database`] (index + MVTO + WAL).
pub struct YcsbTxn {
    config: YcsbConfig,
    zipf: ScrambledZipf,
}

impl YcsbTxn {
    /// Create the YCSB table and load `records` tuples.
    pub fn setup(db: &Database, config: YcsbConfig) -> spitfire_txn::Result<Self> {
        db.create_table(YCSB_TABLE, YCSB_TUPLE)?;
        let mut payload = vec![0u8; YCSB_TUPLE];
        const BATCH: u64 = 256;
        let mut key = 0;
        while key < config.records {
            let mut txn = db.begin();
            let end = (key + BATCH).min(config.records);
            for k in key..end {
                payload[..8].copy_from_slice(&k.to_le_bytes());
                db.insert(&mut txn, YCSB_TABLE, k, &payload)?;
            }
            db.commit(&mut txn)?;
            key = end;
        }
        let zipf = ScrambledZipf::new(config.records, config.theta);
        Ok(YcsbTxn { config, zipf })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// Execute one single-operation transaction. Returns `true` if it
    /// committed (conflicts abort and count as `false`).
    pub fn execute(&self, db: &Database, rng: &mut SmallRng) -> spitfire_txn::Result<bool> {
        let key = self.zipf.sample(rng);
        let is_update = rng.gen::<f64>() < self.config.mix.update_fraction();
        let mut txn = db.begin();
        let outcome = if is_update {
            let mut payload = vec![0u8; YCSB_TUPLE];
            payload[..8].copy_from_slice(&key.to_le_bytes());
            payload[8] = rng.gen();
            db.update(&mut txn, YCSB_TABLE, key, &payload)
        } else {
            let mut buf = vec![0u8; YCSB_TUPLE];
            db.read_into(&txn, YCSB_TABLE, key, &mut buf).map(|()| {
                std::hint::black_box(&buf);
            })
        };
        match outcome {
            Ok(()) => match db.commit(&mut txn) {
                Ok(()) => Ok(true),
                Err(TxnError::Conflict) => Ok(false),
                Err(e) => Err(e),
            },
            Err(TxnError::Conflict) => {
                db.abort(&mut txn)?;
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

impl std::fmt::Debug for YcsbTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YcsbTxn")
            .field("records", &self.config.records)
            .field("mix", &self.config.mix.label())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spitfire_core::BufferManagerConfig;
    use spitfire_device::TimeScale;
    use std::sync::Arc;

    #[test]
    fn op_stream_is_deterministic() {
        let config = YcsbConfig::default();
        let s = YcsbOpStream::new(&config);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            assert_eq!(s.next_op(&mut a), s.next_op(&mut b));
        }
    }

    fn bm() -> Arc<BufferManager> {
        let config = BufferManagerConfig::builder()
            .page_size(4096)
            .dram_capacity(16 * 4096)
            .nvm_capacity(64 * (4096 + 64))
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        Arc::new(BufferManager::new(config).unwrap())
    }

    #[test]
    fn raw_ycsb_runs_all_mixes() {
        for mix in [YcsbMix::ReadOnly, YcsbMix::Balanced, YcsbMix::WriteHeavy] {
            let bm = bm();
            let w = RawYcsb::setup(
                &bm,
                YcsbConfig {
                    records: 500,
                    theta: 0.3,
                    mix,
                },
            )
            .unwrap();
            assert_eq!(w.n_pages(), 125); // 4 tuples per 4 KB page
            w.warmup(&bm).unwrap();
            let mut rng = SmallRng::seed_from_u64(1);
            for _ in 0..500 {
                assert!(w.execute(&bm, &mut rng).unwrap());
            }
            let m = bm.metrics();
            assert!(m.total_requests() >= 500);
        }
    }

    #[test]
    fn txn_ycsb_reads_see_loaded_tuples() {
        let bm = bm();
        let db = Database::create(Arc::clone(&bm), spitfire_txn::DbConfig::default()).unwrap();
        let w = YcsbTxn::setup(
            &db,
            YcsbConfig {
                records: 200,
                theta: 0.3,
                mix: YcsbMix::Balanced,
            },
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut committed = 0;
        for _ in 0..300 {
            if w.execute(&db, &mut rng).unwrap() {
                committed += 1;
            }
        }
        assert!(
            committed > 250,
            "most single-op txns commit, got {committed}"
        );
        // Loaded keys are readable.
        let t = db.begin();
        let v = db.read(&t, YCSB_TABLE, 7).unwrap();
        assert_eq!(u64::from_le_bytes(v[..8].try_into().unwrap()), 7);
    }

    #[test]
    fn mix_fractions_match_labels() {
        assert_eq!(YcsbMix::ReadOnly.update_fraction(), 0.0);
        assert_eq!(YcsbMix::Balanced.update_fraction(), 0.5);
        assert_eq!(YcsbMix::WriteHeavy.update_fraction(), 0.9);
        assert_eq!(YcsbMix::WriteHeavy.label(), "YCSB-WH");
    }
}
