//! TPC-C workload (paper §6.1).
//!
//! An order-entry environment of a wholesale supplier: nine tables, five
//! transaction types in the standard mix (NewOrder 45 %, Payment 43 %,
//! OrderStatus 4 %, Delivery 4 %, StockLevel 4 %); 88 % of transactions
//! modify the database, matching the paper's characterization.
//!
//! Scaled-down per the reproduction's substitution rule: items, customers
//! per district, and the order-line count ranges keep the spec's *ratios*
//! while the warehouse count scales total size. Two simplifications are
//! documented in DESIGN.md: customer lookup is always by id (the spec's
//! 60/40 id/last-name split needs a secondary index the paper's
//! experiments do not stress), and Delivery advances a per-district
//! delivery cursor instead of deleting NEW-ORDER rows (the table layer is
//! append-only).

use rand::rngs::SmallRng;
use rand::Rng;
use spitfire_txn::{Database, Transaction, TxnError};

/// Result of one attempted TPC-C transaction.
type TxResult = spitfire_txn::Result<bool>;

// Table ids.
/// WAREHOUSE table id.
pub const T_WAREHOUSE: u32 = 1;
/// DISTRICT table id.
pub const T_DISTRICT: u32 = 2;
/// CUSTOMER table id.
pub const T_CUSTOMER: u32 = 3;
/// HISTORY table id.
pub const T_HISTORY: u32 = 4;
/// NEW-ORDER table id.
pub const T_NEWORDER: u32 = 5;
/// ORDER table id.
pub const T_ORDER: u32 = 6;
/// ORDER-LINE table id.
pub const T_ORDERLINE: u32 = 7;
/// ITEM table id.
pub const T_ITEM: u32 = 8;
/// STOCK table id.
pub const T_STOCK: u32 = 9;

// Tuple sizes (bytes); scaled toward the spec's proportions (customer
// 655 B, stock 306 B in the spec) — large enough that database bytes per
// row stay realistic.
const SZ_WAREHOUSE: usize = 96;
const SZ_DISTRICT: usize = 96;
const SZ_CUSTOMER: usize = 512;
const SZ_HISTORY: usize = 64;
const SZ_NEWORDER: usize = 16;
const SZ_ORDER: usize = 64;
const SZ_ORDERLINE: usize = 128;
const SZ_ITEM: usize = 88;
const SZ_STOCK: usize = 512;

const DISTRICTS: u64 = 10;
const MAX_OL: u64 = 15;

/// TPC-C sizing parameters.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (the scale factor).
    pub warehouses: u64,
    /// Customers per district (spec: 3000; scaled default 300).
    pub customers_per_district: u64,
    /// Items in the catalog (spec: 100 000; scaled default 10 000).
    pub items: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 2,
            customers_per_district: 300,
            items: 10_000,
        }
    }
}

// Key encodings.
fn k_district(w: u64, d: u64) -> u64 {
    w * DISTRICTS + d
}
fn k_customer(w: u64, d: u64, c: u64) -> u64 {
    k_district(w, d) * 100_000 + c
}
fn k_stock(w: u64, i: u64) -> u64 {
    (w << 24) | i
}
fn k_order(w: u64, d: u64, o: u64) -> u64 {
    (k_district(w, d) << 32) | o
}
fn k_orderline(w: u64, d: u64, o: u64, ol: u64) -> u64 {
    (k_order(w, d, o) << 4) | ol
}

// Little-endian field helpers.
fn get_u64(p: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes"))
}
fn put_u64(p: &mut [u8], off: usize, v: u64) {
    p[off..off + 8].copy_from_slice(&v.to_le_bytes());
}
/// Add `delta` to the u64 field at `off`.
fn add_u64(p: &mut [u8], off: usize, delta: u64) {
    let v = get_u64(p, off);
    put_u64(p, off, v + delta);
}

/// TPC-C driver over the transactional database.
pub struct Tpcc {
    config: TpccConfig,
    history_seq: std::sync::atomic::AtomicU64,
}

impl Tpcc {
    /// Create all nine tables and load the initial data.
    pub fn setup(db: &Database, config: TpccConfig) -> spitfire_txn::Result<Self> {
        db.create_table(T_WAREHOUSE, SZ_WAREHOUSE)?;
        db.create_table(T_DISTRICT, SZ_DISTRICT)?;
        db.create_table(T_CUSTOMER, SZ_CUSTOMER)?;
        db.create_table(T_HISTORY, SZ_HISTORY)?;
        db.create_table(T_NEWORDER, SZ_NEWORDER)?;
        db.create_table(T_ORDER, SZ_ORDER)?;
        db.create_table(T_ORDERLINE, SZ_ORDERLINE)?;
        db.create_table(T_ITEM, SZ_ITEM)?;
        db.create_table(T_STOCK, SZ_STOCK)?;

        // Items (shared across warehouses).
        let mut key = 0;
        while key < config.items {
            let mut txn = db.begin();
            let end = (key + 512).min(config.items);
            for i in key..end {
                let mut p = vec![0u8; SZ_ITEM];
                put_u64(&mut p, 0, 100 + i % 9900); // price in cents
                db.insert(&mut txn, T_ITEM, i, &p)?;
            }
            db.commit(&mut txn)?;
            key = end;
        }

        for w in 0..config.warehouses {
            let mut txn = db.begin();
            let mut p = vec![0u8; SZ_WAREHOUSE];
            put_u64(&mut p, 0, 0); // ytd
            put_u64(&mut p, 8, w % 20); // tax (percent-ish)
            db.insert(&mut txn, T_WAREHOUSE, w, &p)?;
            for d in 0..DISTRICTS {
                let mut p = vec![0u8; SZ_DISTRICT];
                put_u64(&mut p, 0, 0); // next_o_id
                put_u64(&mut p, 8, 0); // ytd
                put_u64(&mut p, 16, d % 20); // tax
                put_u64(&mut p, 24, 0); // next_delivery_o_id
                db.insert(&mut txn, T_DISTRICT, k_district(w, d), &p)?;
            }
            db.commit(&mut txn)?;

            // Customers.
            for d in 0..DISTRICTS {
                let mut c = 0;
                while c < config.customers_per_district {
                    let mut txn = db.begin();
                    let end = (c + 256).min(config.customers_per_district);
                    for ci in c..end {
                        let mut p = vec![0u8; SZ_CUSTOMER];
                        put_u64(&mut p, 0, 1_000_000); // balance (cents, offset +1M to stay unsigned)
                        put_u64(&mut p, 32, u64::MAX); // last order id (none)
                        db.insert(&mut txn, T_CUSTOMER, k_customer(w, d, ci), &p)?;
                    }
                    db.commit(&mut txn)?;
                    c = end;
                }
            }

            // Stock.
            let mut i = 0;
            while i < config.items {
                let mut txn = db.begin();
                let end = (i + 512).min(config.items);
                for ii in i..end {
                    let mut p = vec![0u8; SZ_STOCK];
                    put_u64(&mut p, 0, 50 + ii % 50); // quantity
                    db.insert(&mut txn, T_STOCK, k_stock(w, ii), &p)?;
                }
                db.commit(&mut txn)?;
                i = end;
            }
        }
        Ok(Tpcc {
            config,
            history_seq: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Execute one transaction from the standard mix. Returns `true` if it
    /// committed; MVTO conflicts and the spec's 1 % NewOrder user aborts
    /// return `false`.
    pub fn execute(&self, db: &Database, rng: &mut SmallRng) -> TxResult {
        let roll = rng.gen_range(0..100);
        let w = rng.gen_range(0..self.config.warehouses);
        let result = if roll < 45 {
            self.new_order(db, rng, w)
        } else if roll < 88 {
            self.payment(db, rng, w)
        } else if roll < 92 {
            self.order_status(db, rng, w)
        } else if roll < 96 {
            self.delivery(db, rng, w)
        } else {
            self.stock_level(db, rng, w)
        };
        match result {
            Ok(committed) => Ok(committed),
            Err(TxnError::Conflict) | Err(TxnError::NotFound) | Err(TxnError::Duplicate) => {
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    fn finish(
        &self,
        db: &Database,
        txn: &mut Transaction,
        outcome: spitfire_txn::Result<()>,
    ) -> TxResult {
        match outcome {
            Ok(()) => match db.commit(txn) {
                Ok(()) => Ok(true),
                Err(TxnError::Conflict) => Ok(false),
                Err(e) => Err(e),
            },
            Err(e) => {
                if txn.is_active() {
                    db.abort(txn)?;
                }
                Err(e)
            }
        }
    }

    /// TPC-C NewOrder: the backbone transaction (45 %).
    fn new_order(&self, db: &Database, rng: &mut SmallRng, w: u64) -> TxResult {
        let d = rng.gen_range(0..DISTRICTS);
        let c = rng.gen_range(0..self.config.customers_per_district);
        let ol_cnt = rng.gen_range(5..=MAX_OL);
        // Spec: ~1 % of NewOrders reference an invalid item and roll back.
        let user_abort = rng.gen_range(0..100) == 0;

        let mut txn = db.begin();
        let body = (|txn: &mut Transaction| -> spitfire_txn::Result<()> {
            let _warehouse = db.read(txn, T_WAREHOUSE, w)?;
            // District: allocate the order id.
            let mut district = db.read(txn, T_DISTRICT, k_district(w, d))?;
            let o_id = get_u64(&district, 0);
            put_u64(&mut district, 0, o_id + 1);
            db.update(txn, T_DISTRICT, k_district(w, d), &district)?;
            // Customer: record the latest order for OrderStatus.
            let mut customer = db.read(txn, T_CUSTOMER, k_customer(w, d, c))?;
            put_u64(&mut customer, 32, o_id);
            db.update(txn, T_CUSTOMER, k_customer(w, d, c), &customer)?;

            let mut total = 0u64;
            for ol in 0..ol_cnt {
                if user_abort && ol == ol_cnt - 1 {
                    return Err(TxnError::NotFound); // invalid item: rollback
                }
                let i_id = rng.gen_range(0..self.config.items);
                // 1 % remote warehouse order lines.
                let supply_w = if self.config.warehouses > 1 && rng.gen_range(0..100) == 0 {
                    (w + 1 + rng.gen_range(0..self.config.warehouses - 1)) % self.config.warehouses
                } else {
                    w
                };
                let item = db.read(txn, T_ITEM, i_id)?;
                let price = get_u64(&item, 0);
                let qty = rng.gen_range(1..=10u64);
                let mut stock = db.read(txn, T_STOCK, k_stock(supply_w, i_id))?;
                let s_qty = get_u64(&stock, 0);
                let new_qty = if s_qty >= qty + 10 {
                    s_qty - qty
                } else {
                    s_qty + 91 - qty
                };
                put_u64(&mut stock, 0, new_qty);
                add_u64(&mut stock, 8, qty); // ytd
                add_u64(&mut stock, 16, 1); // order_cnt
                db.update(txn, T_STOCK, k_stock(supply_w, i_id), &stock)?;

                let amount = price * qty;
                total += amount;
                let mut line = vec![0u8; SZ_ORDERLINE];
                put_u64(&mut line, 0, i_id);
                put_u64(&mut line, 8, supply_w);
                put_u64(&mut line, 16, qty);
                put_u64(&mut line, 24, amount);
                db.insert(txn, T_ORDERLINE, k_orderline(w, d, o_id, ol), &line)?;
            }

            let mut order = vec![0u8; SZ_ORDER];
            put_u64(&mut order, 0, o_id);
            put_u64(&mut order, 8, c);
            put_u64(&mut order, 24, u64::MAX); // carrier: none yet
            put_u64(&mut order, 32, ol_cnt);
            put_u64(&mut order, 40, total);
            db.insert(txn, T_ORDER, k_order(w, d, o_id), &order)?;
            let mut no = vec![0u8; SZ_NEWORDER];
            put_u64(&mut no, 0, o_id);
            db.insert(txn, T_NEWORDER, k_order(w, d, o_id), &no)?;
            Ok(())
        })(&mut txn);
        match self.finish(db, &mut txn, body) {
            Err(TxnError::NotFound) => Ok(false), // the simulated user abort
            other => other,
        }
    }

    /// TPC-C Payment (43 %).
    fn payment(&self, db: &Database, rng: &mut SmallRng, w: u64) -> TxResult {
        let d = rng.gen_range(0..DISTRICTS);
        // 15 % of payments come through a remote warehouse's customer.
        let (cw, cd) = if self.config.warehouses > 1 && rng.gen_range(0..100) < 15 {
            (
                (w + 1 + rng.gen_range(0..self.config.warehouses - 1)) % self.config.warehouses,
                rng.gen_range(0..DISTRICTS),
            )
        } else {
            (w, d)
        };
        let c = rng.gen_range(0..self.config.customers_per_district);
        let amount = rng.gen_range(100..500_000u64); // cents

        let mut txn = db.begin();
        let body = (|txn: &mut Transaction| -> spitfire_txn::Result<()> {
            let mut warehouse = db.read(txn, T_WAREHOUSE, w)?;
            add_u64(&mut warehouse, 0, amount);
            db.update(txn, T_WAREHOUSE, w, &warehouse)?;

            let mut district = db.read(txn, T_DISTRICT, k_district(w, d))?;
            add_u64(&mut district, 8, amount);
            db.update(txn, T_DISTRICT, k_district(w, d), &district)?;

            let ck = k_customer(cw, cd, c);
            let mut customer = db.read(txn, T_CUSTOMER, ck)?;
            let bal = get_u64(&customer, 0).saturating_sub(amount);
            put_u64(&mut customer, 0, bal);
            add_u64(&mut customer, 8, amount); // ytd_payment
            add_u64(&mut customer, 16, 1); // payment_cnt
            db.update(txn, T_CUSTOMER, ck, &customer)?;

            let h = self
                .history_seq
                // relaxed: history ids need uniqueness only.
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let mut hist = vec![0u8; SZ_HISTORY];
            put_u64(&mut hist, 0, amount);
            put_u64(&mut hist, 8, w);
            put_u64(&mut hist, 16, d);
            put_u64(&mut hist, 24, ck);
            db.insert(txn, T_HISTORY, h, &hist)?;
            Ok(())
        })(&mut txn);
        self.finish(db, &mut txn, body)
    }

    /// TPC-C OrderStatus (4 %, read-only).
    fn order_status(&self, db: &Database, rng: &mut SmallRng, w: u64) -> TxResult {
        let d = rng.gen_range(0..DISTRICTS);
        let c = rng.gen_range(0..self.config.customers_per_district);
        let mut txn = db.begin();
        let body = (|txn: &mut Transaction| -> spitfire_txn::Result<()> {
            let customer = db.read(txn, T_CUSTOMER, k_customer(w, d, c))?;
            let last_o = get_u64(&customer, 32);
            if last_o == u64::MAX {
                return Ok(()); // no orders yet
            }
            let order = match db.read(txn, T_ORDER, k_order(w, d, last_o)) {
                Ok(o) => o,
                Err(TxnError::NotFound) => return Ok(()), // order not visible yet
                Err(e) => return Err(e),
            };
            let ol_cnt = get_u64(&order, 32);
            for ol in 0..ol_cnt {
                match db.read(txn, T_ORDERLINE, k_orderline(w, d, last_o, ol)) {
                    Ok(line) => {
                        std::hint::black_box(&line);
                    }
                    Err(TxnError::NotFound) => break,
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })(&mut txn);
        self.finish(db, &mut txn, body)
    }

    /// TPC-C Delivery (4 %): deliver the oldest undelivered order in every
    /// district (cursor-based; see module docs).
    fn delivery(&self, db: &Database, rng: &mut SmallRng, w: u64) -> TxResult {
        let carrier = rng.gen_range(1..=10u64);
        let mut txn = db.begin();
        let body = (|txn: &mut Transaction| -> spitfire_txn::Result<()> {
            for d in 0..DISTRICTS {
                let dk = k_district(w, d);
                let mut district = db.read(txn, T_DISTRICT, dk)?;
                let next_delivery = get_u64(&district, 24);
                let next_o = get_u64(&district, 0);
                if next_delivery >= next_o {
                    continue; // nothing to deliver in this district
                }
                let o_id = next_delivery;
                let mut order = match db.read(txn, T_ORDER, k_order(w, d, o_id)) {
                    Ok(o) => o,
                    Err(TxnError::NotFound) => continue, // not yet visible
                    Err(e) => return Err(e),
                };
                put_u64(&mut order, 24, carrier);
                db.update(txn, T_ORDER, k_order(w, d, o_id), &order)?;
                let ol_cnt = get_u64(&order, 32);
                let c = get_u64(&order, 8);
                let mut total = 0u64;
                for ol in 0..ol_cnt {
                    let lk = k_orderline(w, d, o_id, ol);
                    let mut line = match db.read(txn, T_ORDERLINE, lk) {
                        Ok(l) => l,
                        Err(TxnError::NotFound) => break,
                        Err(e) => return Err(e),
                    };
                    total += get_u64(&line, 24);
                    put_u64(&mut line, 32, 1); // delivery date set
                    db.update(txn, T_ORDERLINE, lk, &line)?;
                }
                let ck = k_customer(w, d, c);
                let mut customer = db.read(txn, T_CUSTOMER, ck)?;
                add_u64(&mut customer, 0, total);
                add_u64(&mut customer, 24, 1); // delivery_cnt
                db.update(txn, T_CUSTOMER, ck, &customer)?;
                put_u64(&mut district, 24, o_id + 1);
                db.update(txn, T_DISTRICT, dk, &district)?;
            }
            Ok(())
        })(&mut txn);
        self.finish(db, &mut txn, body)
    }

    /// TPC-C StockLevel (4 %, read-only): count recently-ordered items
    /// with stock below a threshold.
    fn stock_level(&self, db: &Database, rng: &mut SmallRng, w: u64) -> TxResult {
        let d = rng.gen_range(0..DISTRICTS);
        let threshold = rng.gen_range(10..=20u64);
        let mut txn = db.begin();
        let body = (|txn: &mut Transaction| -> spitfire_txn::Result<()> {
            let district = db.read(txn, T_DISTRICT, k_district(w, d))?;
            let next_o = get_u64(&district, 0);
            let from = next_o.saturating_sub(20);
            let mut low = 0u64;
            for o_id in from..next_o {
                let order = match db.read(txn, T_ORDER, k_order(w, d, o_id)) {
                    Ok(o) => o,
                    Err(TxnError::NotFound) => continue,
                    Err(e) => return Err(e),
                };
                let ol_cnt = get_u64(&order, 32);
                for ol in 0..ol_cnt {
                    let line = match db.read(txn, T_ORDERLINE, k_orderline(w, d, o_id, ol)) {
                        Ok(l) => l,
                        Err(TxnError::NotFound) => break,
                        Err(e) => return Err(e),
                    };
                    let i_id = get_u64(&line, 0);
                    let supply_w = get_u64(&line, 8);
                    let stock = db.read(txn, T_STOCK, k_stock(supply_w, i_id))?;
                    if get_u64(&stock, 0) < threshold {
                        low += 1;
                    }
                }
            }
            std::hint::black_box(low);
            Ok(())
        })(&mut txn);
        self.finish(db, &mut txn, body)
    }
}

impl std::fmt::Debug for Tpcc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tpcc")
            .field("warehouses", &self.config.warehouses)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spitfire_core::{BufferManager, BufferManagerConfig};
    use spitfire_device::TimeScale;
    use std::sync::Arc;

    fn small_db() -> Database {
        let config = BufferManagerConfig::builder()
            .page_size(4096)
            .dram_capacity(256 * 4096)
            .nvm_capacity(1024 * (4096 + 64))
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        let bm = Arc::new(BufferManager::new(config).unwrap());
        Database::create(bm, spitfire_txn::DbConfig::default()).unwrap()
    }

    fn tiny_config() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            customers_per_district: 20,
            items: 100,
        }
    }

    #[test]
    fn setup_loads_all_tables() {
        let db = small_db();
        let t = Tpcc::setup(&db, tiny_config()).unwrap();
        let txn = db.begin();
        // Warehouses, districts, customers, items, stock exist.
        assert!(db.read(&txn, T_WAREHOUSE, 0).is_ok());
        assert!(db.read(&txn, T_WAREHOUSE, 1).is_ok());
        assert!(db.read(&txn, T_DISTRICT, k_district(1, 9)).is_ok());
        assert!(db.read(&txn, T_CUSTOMER, k_customer(1, 9, 19)).is_ok());
        assert!(db.read(&txn, T_ITEM, 99).is_ok());
        assert!(db.read(&txn, T_STOCK, k_stock(1, 99)).is_ok());
        assert_eq!(t.config().warehouses, 2);
    }

    #[test]
    fn mix_runs_and_mostly_commits() {
        let db = small_db();
        let t = Tpcc::setup(&db, tiny_config()).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut committed = 0;
        const N: usize = 400;
        for _ in 0..N {
            if t.execute(&db, &mut rng).unwrap() {
                committed += 1;
            }
        }
        assert!(committed > N * 8 / 10, "only {committed}/{N} committed");
        // NewOrders advanced some district order counters.
        let txn = db.begin();
        let total_orders: u64 = (0..2)
            .flat_map(|w| (0..DISTRICTS).map(move |d| (w, d)))
            .map(|(w, d)| get_u64(&db.read(&txn, T_DISTRICT, k_district(w, d)).unwrap(), 0))
            .sum();
        assert!(
            total_orders > 50,
            "expected many orders, got {total_orders}"
        );
    }

    #[test]
    fn new_order_conservation() {
        // Order totals equal the sum of their order lines.
        let db = small_db();
        let t = Tpcc::setup(&db, tiny_config()).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            t.execute(&db, &mut rng).unwrap();
        }
        let txn = db.begin();
        let mut checked = 0;
        for w in 0..2 {
            for d in 0..DISTRICTS {
                let district = db.read(&txn, T_DISTRICT, k_district(w, d)).unwrap();
                for o in 0..get_u64(&district, 0) {
                    let Ok(order) = db.read(&txn, T_ORDER, k_order(w, d, o)) else {
                        continue;
                    };
                    let ol_cnt = get_u64(&order, 32);
                    let total = get_u64(&order, 40);
                    let mut sum = 0;
                    for ol in 0..ol_cnt {
                        let line = db
                            .read(&txn, T_ORDERLINE, k_orderline(w, d, o, ol))
                            .unwrap();
                        sum += get_u64(&line, 24);
                    }
                    assert_eq!(sum, total, "order ({w},{d},{o}) total mismatch");
                    checked += 1;
                }
            }
        }
        assert!(
            checked > 10,
            "expected some completed orders, got {checked}"
        );
    }

    #[test]
    fn delivery_advances_cursor_and_credits_customer() {
        let db = small_db();
        let t = Tpcc::setup(
            &db,
            TpccConfig {
                warehouses: 1,
                customers_per_district: 5,
                items: 50,
            },
        )
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        // Generate orders, then force deliveries.
        for _ in 0..60 {
            let _ = t.new_order(&db, &mut rng, 0).unwrap();
        }
        for _ in 0..30 {
            let _ = t.delivery(&db, &mut rng, 0).unwrap();
        }
        let txn = db.begin();
        let mut delivered = 0;
        for d in 0..DISTRICTS {
            let district = db.read(&txn, T_DISTRICT, k_district(0, d)).unwrap();
            delivered += get_u64(&district, 24);
        }
        assert!(delivered > 0, "deliveries must advance the cursor");
    }
}
