//! Zipfian key distribution (Gray et al., "Quickly generating
//! billion-record synthetic databases" — the paper's citation \[14\]).
//!
//! YCSB accesses keys with a Zipfian skew; the paper uses `z = 0.3` for
//! the policy experiments (§6.1) and `z = 0.5` for the storage-design grid
//! (§6.6).

use rand::Rng;

/// Zipfian sampler over `[0, n)` with exponent `theta`.
///
/// `theta = 0` degenerates to uniform; larger values skew harder. The
/// sampler uses the closed-form approximation from Gray et al., with the
/// harmonic normalizer computed once at construction (O(n), done at setup
/// time only).
///
/// ```
/// use rand::SeedableRng;
/// use spitfire_wkld::Zipf;
/// let z = Zipf::new(1000, 0.3); // the paper's YCSB skew
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let rank = z.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// A sampler over `[0, n)` with skew `theta ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            (0.0..1.0).contains(&theta),
            "theta must be in [0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `[0, n)`; rank 0 is the hottest.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The second-order zeta constant (exposed for tests).
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Scrambled Zipfian: Zipfian ranks spread over the key space by a
/// multiplicative hash so that hot keys are not clustered on adjacent
/// pages (the YCSB default behaviour).
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    inner: Zipf,
}

impl ScrambledZipf {
    /// A scrambled sampler over `[0, n)`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipf {
            inner: Zipf::new(n, theta),
        }
    }

    /// Draw a key in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        // Fibonacci scrambling, reduced into the population.
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.inner.population()
    }

    /// Population size.
    pub fn population(&self) -> u64 {
        self.inner.population()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
        let s = ScrambledZipf::new(1000, 0.3);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(10_000, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut top10 = 0;
        const N: usize = 100_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With theta = 0.9 and n = 10^4 the analytic top-10 share is
        // zeta(10, 0.9) / zeta(10^4, 0.9) ≈ 0.20.
        let share = top10 as f64 / N as f64;
        assert!(
            (0.15..0.30).contains(&share),
            "top-10 share {share} off for theta 0.9"
        );
    }

    #[test]
    fn low_theta_is_nearly_uniform() {
        let z = Zipf::new(1000, 0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 1000];
        const N: usize = 200_000;
        for _ in 0..N {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let hottest = *counts.iter().max().unwrap() as f64;
        let expected = N as f64 / 1000.0;
        assert!(
            hottest < expected * 3.0,
            "theta 0.01 should be near-uniform"
        );
    }

    #[test]
    fn frequency_is_monotone_in_rank() {
        let z = Zipf::new(100, 0.6);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0u32; 100];
        for _ in 0..300_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Compare coarse buckets to tolerate sampling noise.
        let first: u32 = counts[..10].iter().sum();
        let mid: u32 = counts[45..55].iter().sum();
        let last: u32 = counts[90..].iter().sum();
        assert!(
            first > mid && mid > last,
            "{first} > {mid} > {last} violated"
        );
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_is_rejected() {
        Zipf::new(10, 1.0);
    }

    #[test]
    fn scrambling_spreads_hot_keys() {
        let s = ScrambledZipf::new(1000, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        // The two hottest keys must not be adjacent (scrambled).
        let mut order: Vec<usize> = (0..1000).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        assert!(
            order[0].abs_diff(order[1]) > 1,
            "hot keys {} and {} adjacent",
            order[0],
            order[1]
        );
    }
}
