//! Workspace automation (`cargo xtask <task>`).
//!
//! The only task so far is `lint`: the atomics-discipline lint that CI
//! runs tree-wide. It is textual on purpose — no syn, no rustc plumbing,
//! no dependencies — because the disciplines it enforces are *comment*
//! conventions and module-level import rules that a line scanner checks
//! reliably:
//!
//! 1. **`relaxed`** — every `Ordering::Relaxed` in non-test code carries
//!    a `// relaxed:` justification on the same line or within the
//!    [`JUSTIFY_WINDOW`] lines above it. Relaxed is the one ordering
//!    whose correctness argument lives entirely outside the type system;
//!    the comment is where that argument goes (and what review + the
//!    model checker audit).
//! 2. **`safety`** — every `unsafe` token likewise carries a
//!    `// SAFETY:` comment. Complements `#![deny(unsafe_op_in_unsafe_fn)]`
//!    (workspace lints), which forces the *block*; this forces the
//!    *argument*.
//! 3. **`fastpath`** — no lock types or lock acquisitions inside the
//!    lock-free fast path: all of `crates/sync/src/pinword.rs`, plus any
//!    region bracketed by `// xtask: fastpath-begin` /
//!    `// xtask: fastpath-end` markers (the manager's `fetch_fast` /
//!    `unpin_fast` hot sections). A mutex creeping into these regions is
//!    exactly the regression the lock-free hit path exists to prevent.
//! 4. **`facade`** — `crates/sync` and `crates/core` must not import
//!    `std::sync::atomic` directly; everything goes through the
//!    `spitfire_sync::atomic` facade so `--cfg spitfire_modelcheck`
//!    builds route every atomic through the model checker. An atomic
//!    that bypasses the facade is invisible to the checker — silently
//!    unverified.
//!
//! Test modules (`#[cfg(test)]`) are exempt from rules 1, 2 and 4: test
//! code freely uses relaxed counters and raw atomics, and verifying the
//! tests is the job of the tests themselves. The lint skips everything
//! from a `#[cfg(test)]` attribute line onward (test modules sit at the
//! bottom of files in this codebase). `crates/xtask` itself and
//! `vendor/` are excluded from the walk: the lint's own source contains
//! the needles it scans for, and vendored third-party code follows its
//! own conventions.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many lines above a flagged token a justification comment may sit.
/// Large enough for a short paragraph, small enough that a comment
/// cannot accidentally cover an unrelated site a screen away.
const JUSTIFY_WINDOW: usize = 8;

/// Fast-path region markers (see module docs, rule 3).
const FASTPATH_BEGIN: &str = "xtask: fastpath-begin";
const FASTPATH_END: &str = "xtask: fastpath-end";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `cargo xtask lint`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no task given (try `cargo xtask lint`)");
            ExitCode::FAILURE
        }
    }
}

struct Finding {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        // The lint scans for its own needle strings; linting itself would
        // only ever flag them.
        if file.starts_with(root.join("crates/xtask")) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(file) else {
            findings.push(Finding {
                file: file.clone(),
                line: 0,
                rule: "io",
                message: "unreadable file".into(),
            });
            continue;
        };
        checked += 1;
        lint_file(&root, file, &text, &mut findings);
    }
    if findings.is_empty() {
        println!("xtask lint: {checked} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} finding(s) in {checked} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels up from this crate's manifest (the
/// binary may be invoked from any CWD via the `cargo xtask` alias).
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask has a workspace root two levels up")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Integration tests and benches are test code — exempt for
            // the same reason `#[cfg(test)]` modules are.
            let name = entry.file_name();
            if name == "tests" || name == "benches" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The code portion of a line: everything before a `//` comment. Naive
/// about `//` inside string literals, which the codebase's conventions
/// make a non-issue (no slash-bearing string constants near atomics).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does `line` or any of the `JUSTIFY_WINDOW` raw lines above it carry
/// `needle` (a justification tag, lowercase) inside a comment?
fn justified(lines: &[&str], idx: usize, needle: &str) -> bool {
    let lo = idx.saturating_sub(JUSTIFY_WINDOW);
    lines[lo..=idx].iter().any(|l| {
        l.find("//")
            .is_some_and(|c| l[c..].to_ascii_lowercase().contains(needle))
    })
}

/// Does the code part contain `unsafe` as a standalone token (not part
/// of `unsafe_op_in_unsafe_fn` or another identifier)?
fn has_unsafe_token(code: &str) -> bool {
    let mut rest = code;
    while let Some(i) = rest.find("unsafe") {
        let before_ok = rest[..i]
            .chars()
            .next_back()
            .map_or(true, |c| !c.is_alphanumeric() && c != '_');
        let after = &rest[i + "unsafe".len()..];
        let after_ok = after
            .chars()
            .next()
            .map_or(true, |c| !c.is_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return true;
        }
        rest = after;
    }
    false
}

fn lint_file(root: &Path, file: &Path, text: &str, findings: &mut Vec<Finding>) {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let lines: Vec<&str> = text.lines().collect();

    let facade_scoped = (rel_str.starts_with("crates/sync/src")
        || rel_str.starts_with("crates/core/src"))
        && rel_str != "crates/sync/src/atomic.rs"
        && rel_str != "crates/sync/src/lock.rs";
    let whole_file_fastpath = rel_str == "crates/sync/src/pinword.rs";

    let mut in_fastpath = whole_file_fastpath;
    let mut fastpath_open_line = 0usize;

    for (i, raw) in lines.iter().enumerate() {
        let lineno = i + 1;
        // Test modules are exempt (and sit at the bottom of each file).
        if raw.trim() == "#[cfg(test)]" {
            break;
        }
        let code = code_part(raw);

        // Region markers live in comments, so match the raw line.
        if raw.contains(FASTPATH_BEGIN) {
            if in_fastpath {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "fastpath",
                    message: format!(
                        "nested `{FASTPATH_BEGIN}` (previous at line {fastpath_open_line})"
                    ),
                });
            }
            in_fastpath = true;
            fastpath_open_line = lineno;
            continue;
        }
        if raw.contains(FASTPATH_END) {
            if !in_fastpath || whole_file_fastpath {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: "fastpath",
                    message: format!("`{FASTPATH_END}` without matching begin"),
                });
            }
            in_fastpath = whole_file_fastpath;
            continue;
        }

        if code.contains("Ordering::Relaxed") && !justified(&lines, i, "relaxed:") {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "relaxed",
                message: "`Ordering::Relaxed` without a `// relaxed:` justification".into(),
            });
        }

        if has_unsafe_token(&code.replace("unsafe_op_in_unsafe_fn", ""))
            && !justified(&lines, i, "safety:")
        {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "safety",
                message: "`unsafe` without a `// SAFETY:` comment".into(),
            });
        }

        if facade_scoped && code.contains("std::sync::atomic") {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: lineno,
                rule: "facade",
                message: "direct `std::sync::atomic` use; go through the \
                          `spitfire_sync::atomic` facade"
                    .into(),
            });
        }

        if in_fastpath {
            for needle in [
                ".lock()",
                ".try_lock(",
                "Mutex",
                "RwLock",
                ".read()",
                ".write()",
            ] {
                if code.contains(needle) {
                    findings.push(Finding {
                        file: rel.to_path_buf(),
                        line: lineno,
                        rule: "fastpath",
                        message: format!(
                            "`{needle}` inside a lock-free fast-path region \
                             (opened at line {fastpath_open_line})"
                        ),
                    });
                }
            }
        }
    }
    if in_fastpath && !whole_file_fastpath {
        findings.push(Finding {
            file: rel.to_path_buf(),
            line: fastpath_open_line,
            rule: "fastpath",
            message: format!("`{FASTPATH_BEGIN}` never closed"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_token_boundaries() {
        assert!(has_unsafe_token("unsafe { x }"));
        assert!(has_unsafe_token("pub unsafe fn f()"));
        assert!(has_unsafe_token("unsafe impl Sync for X {}"));
        assert!(!has_unsafe_token("unsafe_op_in_unsafe_fn"));
        assert!(!has_unsafe_token("not_unsafe_here"));
        assert!(!has_unsafe_token("let safe = 1;"));
    }

    #[test]
    fn justification_window() {
        let lines = vec![
            "// relaxed: counter only",
            "",
            "x.fetch_add(1, Ordering::Relaxed);",
        ];
        assert!(justified(&lines, 2, "relaxed:"));
        let far: Vec<&str> = std::iter::once("// relaxed: too far")
            .chain(std::iter::repeat_n("", JUSTIFY_WINDOW + 1))
            .chain(std::iter::once("x.load(Ordering::Relaxed);"))
            .collect();
        assert!(!justified(&far, far.len() - 1, "relaxed:"));
    }

    #[test]
    fn comments_do_not_trip_code_rules() {
        assert_eq!(
            code_part("x.load(o); // Ordering::Relaxed mention"),
            "x.load(o); "
        );
        assert!(!code_part("// unsafe in a comment").contains("unsafe"));
    }
}
