//! Integration tests for the chaos explorer: determinism, fault
//! absorption, fatal-error surfacing, and schedule parsing.

use std::sync::Arc;

use spitfire_chaos::{
    ChaosConfig, CrashSchedule, DeviceKind, FaultInjector, FaultKind, FaultOp, FaultPlan,
    FaultRule, Trigger,
};
use spitfire_core::{
    AccessIntent, BufferError, BufferManager, BufferManagerConfig, MigrationPolicy, PageId,
};
use spitfire_device::{PersistenceTracking, TimeScale};

#[test]
fn identical_configs_yield_identical_verdicts() {
    let config = ChaosConfig {
        seed: 11,
        schedule: CrashSchedule::EveryKFences(4),
        txns: 80,
        plan: Some(FaultPlan::new(11).rule(FaultRule::any(
            Trigger::Probability(0.02),
            FaultKind::Transient,
        ))),
        ..ChaosConfig::default()
    };
    let a = spitfire_chaos::run(&config);
    let b = spitfire_chaos::run(&config);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert!(a.crashes > 1, "fence schedule should crash mid-run");
    assert_eq!(a, b, "same config must reproduce the same verdict");
}

#[test]
fn different_seeds_explore_different_histories() {
    let base = ChaosConfig {
        schedule: CrashSchedule::RandomOps,
        txns: 60,
        ..ChaosConfig::default()
    };
    let a = spitfire_chaos::run(&ChaosConfig {
        seed: 1,
        ..base.clone()
    });
    let b = spitfire_chaos::run(&ChaosConfig { seed: 2, ..base });
    assert!(a.violations.is_empty() && b.violations.is_empty());
    assert_ne!(
        (a.commits, a.crashes, a.ops_run),
        (b.commits, b.crashes, b.ops_run),
        "seeds should drive distinct schedules"
    );
}

#[test]
fn every_schedule_survives_with_fault_noise() {
    for schedule in [
        CrashSchedule::EveryKFences(3),
        CrashSchedule::EveryNOps(17),
        CrashSchedule::RandomOps,
        CrashSchedule::MidCheckpoint(1),
        CrashSchedule::EveryKMigrations(2),
        CrashSchedule::TornSsdWrites,
        CrashSchedule::None,
    ] {
        let v = spitfire_chaos::run(&ChaosConfig {
            seed: 21,
            schedule,
            txns: 60,
            plan: Some(FaultPlan::new(21).rule(FaultRule::any(
                Trigger::Probability(0.02),
                FaultKind::Transient,
            ))),
            ..ChaosConfig::default()
        });
        assert!(
            v.violations.is_empty(),
            "schedule {} violated: {:?}",
            schedule.label(),
            v.violations
        );
        assert!(v.crashes >= 1, "final crash always runs");
        assert!(v.commits > 0, "workload should make progress");
    }
}

#[test]
fn transient_faults_are_absorbed_by_retry() {
    let v = spitfire_chaos::run(&ChaosConfig {
        seed: 5,
        schedule: CrashSchedule::EveryNOps(23),
        txns: 120,
        plan: Some(FaultPlan::new(5).rule(FaultRule::any(
            Trigger::Probability(0.05),
            FaultKind::Transient,
        ))),
        ..ChaosConfig::default()
    });
    assert!(v.violations.is_empty(), "{:?}", v.violations);
    assert!(v.faults.transient > 0, "plan should have fired");
    assert!(v.io_retries > 0, "retry loop should have absorbed faults");
    assert_eq!(v.io_failures, 0, "no transient fault may surface");
}

#[test]
fn fatal_ssd_read_fault_surfaces_with_context() {
    let config = BufferManagerConfig::builder()
        .page_size(1024)
        .dram_capacity(4 * 1024)
        .nvm_capacity(8 * (1024 + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    // Fill past both buffer tiers so a fetch must reach the SSD.
    let pids: Vec<PageId> = (0..16).map(|_| bm.allocate_page().unwrap()).collect();
    for &pid in &pids {
        let guard = bm.fetch(pid, AccessIntent::Write).unwrap();
        guard.write(0, &[7u8; 64]).unwrap();
    }
    bm.flush_all_dirty().unwrap();
    bm.simulate_crash();

    bm.admin()
        .set_fault_injector(Some(Arc::new(FaultInjector::new(
            FaultPlan::new(1).rule(
                FaultRule::any(Trigger::Always, FaultKind::Fatal)
                    .on_device(DeviceKind::Ssd)
                    .on_op(FaultOp::Read),
            ),
        ))));
    let err = bm
        .fetch(pids[0], AccessIntent::Read)
        .expect_err("fatal SSD read fault must surface");
    match err {
        BufferError::FatalIo { during, .. } => assert_eq!(during, "ssd read"),
        other => panic!("expected FatalIo, got {other:?}"),
    }
}

#[test]
fn schedule_parsing_round_trips() {
    for (s, want) in [
        ("every-4-fences", CrashSchedule::EveryKFences(4)),
        ("every-37-ops", CrashSchedule::EveryNOps(37)),
        ("at-op-12", CrashSchedule::EveryNOps(12)),
        ("every-2-migrations", CrashSchedule::EveryKMigrations(2)),
        ("mid-checkpoint-2", CrashSchedule::MidCheckpoint(2)),
        ("torn-ssd-writes", CrashSchedule::TornSsdWrites),
        ("random", CrashSchedule::RandomOps),
        ("none", CrashSchedule::None),
    ] {
        assert_eq!(CrashSchedule::parse(s), Some(want), "{s}");
    }
    let label = CrashSchedule::EveryKFences(9).label();
    assert_eq!(
        CrashSchedule::parse(&label),
        Some(CrashSchedule::EveryKFences(9))
    );
    assert_eq!(CrashSchedule::parse("every-x-fences"), None);
    assert_eq!(CrashSchedule::parse("sometimes"), None);
}
