//! # spitfire-chaos — deterministic fault injection & crash-schedule exploration
//!
//! Storage engines earn their durability claims under failure, not under
//! green-path tests. This crate drives the full Spitfire stack — buffer
//! manager, NVM-aware WAL, MVTO transactions — through seeded fault
//! plans and crash schedules, then checks the invariants that recovery
//! (paper §5.2) promises:
//!
//! * every committed transaction survives a crash;
//! * no aborted or un-persisted write ever resurrects;
//! * the log always replays as a clean prefix (CRC-framed records);
//! * the tier bookkeeping is consistent after the mapping-table rebuild.
//!
//! Everything is deterministic: one `(seed, schedule, plan)` triple yields
//! one operation sequence, one fault sequence, one crash sequence, and one
//! [`Verdict`] — failures reproduce exactly from the seed printed in CI.
//!
//! ## Quick start
//!
//! ```
//! use spitfire_chaos::{ChaosConfig, CrashSchedule};
//!
//! let verdict = spitfire_chaos::run(&ChaosConfig {
//!     seed: 42,
//!     schedule: CrashSchedule::EveryKFences(8),
//!     txns: 60,
//!     ..ChaosConfig::default()
//! });
//! assert!(verdict.violations.is_empty(), "{:?}", verdict.violations);
//! assert!(verdict.crashes > 0);
//! ```
//!
//! The fault-injection primitives live in [`spitfire_device::fault`] and
//! are re-exported here so harnesses only need one import.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod explorer;

pub use explorer::{run, ChaosConfig, CrashSchedule, Verdict};
pub use spitfire_device::{
    DeviceKind, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, FaultStats, Trigger,
    MEDIA_BLOCK,
};
