//! The crash-schedule explorer: drives a YCSB-style workload against a
//! full [`Database`], crashes it at schedule points, replays recovery,
//! and checks the durability invariants against a shadow model.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{
    DeviceKind, FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, FaultStats,
    PersistenceTracking, SsdBackendConfig, TimeScale, Trigger,
};
use spitfire_txn::{Database, DbConfig, SnapshotConfig, TxnError};
use spitfire_wkld::{YcsbConfig, YcsbMix, YcsbOpStream};

const PAGE: usize = 1024;
const TABLE: u32 = 1;
const TUPLE: usize = 64;

/// When (relative to workload progress) the explorer pulls the plug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSchedule {
    /// Crash whenever the WAL's NVM device has issued `k` more sfence
    /// epochs than at the previous crash (ties crashes to durability
    /// boundaries, the most adversarial points).
    EveryKFences(u64),
    /// Crash every `n` completed operations.
    EveryNOps(u64),
    /// Crash at seeded-random operation counts (1..=64 ops apart).
    RandomOps,
    /// Sabotage every `m`th checkpoint: a one-shot fatal fault kills the
    /// snapshot-generation write partway through its block stream, then
    /// the explorer crashes. Recovery must fall back to the last
    /// *installed* generation plus the (untruncated) WAL tail.
    MidCheckpoint(u64),
    /// Crash whenever the buffer manager's migration counters (completed
    /// paths plus shadow-commit aborts) have advanced by `k` since the
    /// previous crash — the plug-pull lands right on the heels of
    /// migration activity, the most adversarial points for the
    /// shadow-copy protocol's commit/abort windows.
    EveryKMigrations(u64),
    /// Torn-write sabotage on the SSD tier (forces the real-file
    /// `FileSsdDevice` backend): page writes tear at `MEDIA_BLOCK`
    /// granularity while every SSD `sync` fails, so a torn image can land
    /// on the device but can never be made durable — the buffer manager
    /// must keep the upper-tier copy dirty and authoritative, and the
    /// crash rollback discards the torn bytes. Crashes land at
    /// seeded-random op counts like [`CrashSchedule::RandomOps`].
    TornSsdWrites,
    /// Never crash mid-run (one final crash still happens at the end).
    None,
}

impl CrashSchedule {
    /// Parse a CLI spelling: `every-K-fences`, `every-N-ops`, `at-op-N`
    /// (alias for `every-N-ops`), `every-K-migrations`,
    /// `mid-checkpoint-M`, `torn-ssd-writes`, `random`, or `none`.
    pub fn parse(s: &str) -> Option<CrashSchedule> {
        match s {
            "random" => return Some(CrashSchedule::RandomOps),
            "torn-ssd-writes" => return Some(CrashSchedule::TornSsdWrites),
            "none" => return Some(CrashSchedule::None),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("every-") {
            if let Some(k) = rest.strip_suffix("-fences") {
                return k.parse().ok().map(CrashSchedule::EveryKFences);
            }
            if let Some(n) = rest.strip_suffix("-ops") {
                return n.parse().ok().map(CrashSchedule::EveryNOps);
            }
            if let Some(k) = rest.strip_suffix("-migrations") {
                return k.parse().ok().map(CrashSchedule::EveryKMigrations);
            }
        }
        if let Some(n) = s.strip_prefix("at-op-") {
            return n.parse().ok().map(CrashSchedule::EveryNOps);
        }
        if let Some(m) = s.strip_prefix("mid-checkpoint-") {
            return m.parse().ok().map(CrashSchedule::MidCheckpoint);
        }
        None
    }

    /// Stable label for logs and CI output.
    pub fn label(&self) -> String {
        match self {
            CrashSchedule::EveryKFences(k) => format!("every-{k}-fences"),
            CrashSchedule::EveryNOps(n) => format!("every-{n}-ops"),
            CrashSchedule::RandomOps => "random".to_string(),
            CrashSchedule::MidCheckpoint(m) => format!("mid-checkpoint-{m}"),
            CrashSchedule::EveryKMigrations(k) => format!("every-{k}-migrations"),
            CrashSchedule::TornSsdWrites => "torn-ssd-writes".to_string(),
            CrashSchedule::None => "none".to_string(),
        }
    }
}

/// One exploration run: workload shape, crash schedule, fault plan.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the operation stream and random crash points.
    pub seed: u64,
    /// When to crash.
    pub schedule: CrashSchedule,
    /// Number of transactions to attempt.
    pub txns: u64,
    /// Key-space size (small on purpose: maximises version-chain churn
    /// and conflict coverage per transaction).
    pub keys: u64,
    /// Checkpoint after every this many transactions (None: never).
    pub checkpoint_every: Option<u64>,
    /// Fault plan installed on every device (None: fault-free).
    pub plan: Option<FaultPlan>,
    /// Whether a corrupt WAL tail is a violation. Keep `true` unless the
    /// plan injects torn writes (which legitimately corrupt the tail —
    /// the invariant then is that the checksum *detects* it, which
    /// `read_all_checked` reports rather than mis-replaying).
    pub expect_clean_log: bool,
    /// Back the SSD tier with a real file ([`SsdBackendConfig::File`],
    /// auto-removed temp file) instead of the in-memory emulation, so the
    /// whole invariant suite runs against genuine block-device I/O.
    /// [`CrashSchedule::TornSsdWrites`] forces this on.
    pub file_ssd: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            schedule: CrashSchedule::None,
            txns: 200,
            keys: 16,
            checkpoint_every: Some(64),
            plan: None,
            expect_clean_log: true,
            file_ssd: false,
        }
    }
}

/// What one exploration run observed. Two runs with the same
/// [`ChaosConfig`] must produce equal verdicts — that equality is itself
/// one of the tested invariants (determinism).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Verdict {
    /// Operations attempted (reads + writes, including failed ones).
    pub ops_run: u64,
    /// Transactions attempted.
    pub txns_run: u64,
    /// Transactions that committed.
    pub commits: u64,
    /// Transactions aborted (voluntarily or on conflict).
    pub aborts: u64,
    /// Crash/recover cycles executed (includes the final one).
    pub crashes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Operations that failed with a non-logic I/O error.
    pub io_failures: u64,
    /// Transient device errors absorbed by retry (buffer manager only).
    pub io_retries: u64,
    /// Fault-injector counters at the end of the run.
    pub faults: FaultStats,
    /// Invariant violations. Empty means the run passed.
    pub violations: Vec<String>,
}

fn database(chaos: &ChaosConfig) -> Database {
    let file_ssd = chaos.file_ssd || matches!(chaos.schedule, CrashSchedule::TornSsdWrites);
    let ssd_backend = if file_ssd {
        SsdBackendConfig::File { path: None }
    } else {
        SsdBackendConfig::Emulated
    };
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(16 * PAGE)
        .nvm_capacity(128 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .ssd_backend(ssd_backend)
        .build()
        .expect("static config");
    let db = Database::create(
        Arc::new(BufferManager::new(config).expect("fresh buffer manager")),
        DbConfig {
            log_tracking: PersistenceTracking::Full,
            ..DbConfig::default()
        },
    )
    .expect("create database");
    db.create_table(TABLE, TUPLE).expect("create table");
    // Every chaos run exercises the instant-restart path: explicit
    // checkpoints write snapshot generations, and crash_and_verify's
    // recoveries load them (falling back to full WAL replay only before
    // the first generation exists). `full_every: 3` mixes full and
    // incremental generations within one run.
    db.enable_snapshots(SnapshotConfig {
        full_every: 3,
        ..SnapshotConfig::default()
    });
    db
}

/// Crash, recover, and check every invariant. Appends violations to `v`.
fn crash_and_verify(
    db: &Database,
    model: &HashMap<u64, u8>,
    uncertain: &HashSet<u64>,
    keys: u64,
    v: &mut Verdict,
    expect_clean_log: bool,
) {
    db.simulate_crash();

    // Invariant: the log replays as a clean prefix. (Checked on the
    // post-crash image, i.e. exactly what recovery will see.)
    match db.wal().read_all_checked() {
        Ok(report) => {
            if report.corrupt && expect_clean_log {
                v.violations.push(format!(
                    "WAL tail corrupt without torn-write faults: {report:?}"
                ));
            }
        }
        Err(e) => v.violations.push(format!("WAL scan failed: {e}")),
    }

    if let Err(e) = db.recover() {
        v.violations.push(format!("recovery failed: {e}"));
        return;
    }

    // Invariant: tier bookkeeping is consistent after the mapping-table
    // rebuild. Checked before the verification reads below repopulate
    // DRAM and would mask an inconsistency.
    let bm = db.buffer_manager();
    let (dram_pages, nvm_pages) = bm.resident_pages();
    let (dram_frames, nvm_frames) = bm.occupied_frames();
    if dram_pages != dram_frames || nvm_pages != nvm_frames {
        v.violations.push(format!(
            "tier occupancy mismatch after recovery: \
             mapping says {dram_pages} DRAM / {nvm_pages} NVM pages, \
             pools hold {dram_frames} / {nvm_frames} frames"
        ));
    }

    // Invariant: exactly the committed set survives. Keys whose commit
    // outcome is ambiguous (commit returned an I/O error — the commit
    // record may or may not have reached the log) are skipped.
    let txn = db.begin();
    for key in 0..keys {
        if uncertain.contains(&key) {
            continue;
        }
        match (db.read(&txn, TABLE, key), model.get(&key)) {
            (Ok(got), Some(&byte)) => {
                if !(got[0] == byte && got.iter().all(|&b| b == byte)) {
                    v.violations.push(format!(
                        "key {key}: recovered {} but committed value was {byte}",
                        got[0]
                    ));
                }
            }
            (Ok(got), None) => v.violations.push(format!(
                "key {key}: resurrected with {} but was never committed",
                got[0]
            )),
            (Err(TxnError::NotFound), None) => {}
            (Err(TxnError::NotFound), Some(&byte)) => v
                .violations
                .push(format!("key {key}: committed value {byte} lost")),
            (Err(e), _) => v.violations.push(format!("key {key}: read failed: {e}")),
        }
    }
    let mut txn = txn;
    let _ = db.abort(&mut txn);
}

/// Run one exploration and return its [`Verdict`].
///
/// Fully deterministic: the same `config` always yields the same verdict
/// (single-threaded; every random draw comes from seeded generators).
pub fn run(config: &ChaosConfig) -> Verdict {
    let mut v = Verdict::default();
    let db = database(config);
    let plan = match config.schedule {
        CrashSchedule::TornSsdWrites => {
            // Tear SSD page writes (silently persisting only a
            // MEDIA_BLOCK prefix) while failing every SSD sync. A torn
            // image may sit on the device, but without a successful sync
            // the buffer manager never marks the page clean, so the
            // upper-tier copy stays dirty and authoritative and the
            // crash rollback discards the torn bytes — committed data
            // must survive purely from NVM + WAL + snapshots.
            let base = config
                .plan
                .clone()
                .unwrap_or_else(|| FaultPlan::new(config.seed));
            Some(
                base.rule(
                    FaultRule::any(Trigger::Probability(0.25), FaultKind::TornWrite)
                        .on_device(DeviceKind::Ssd)
                        .on_op(FaultOp::Write),
                )
                .rule(
                    FaultRule::any(Trigger::Always, FaultKind::Fatal)
                        .on_device(DeviceKind::Ssd)
                        .on_op(FaultOp::Sync),
                ),
            )
        }
        _ => config.plan.clone(),
    };
    let injector = plan.map(|plan| Arc::new(FaultInjector::new(plan)));
    db.set_fault_injector(injector.clone());

    // Background maintenance in deterministic (tick) mode: cycles run
    // inline on this thread between transactions, so pre-eviction and
    // batched write-back participate in every crash schedule without
    // free-running threads perturbing the seeded fault/policy draws.
    let maintenance = db.buffer_manager().maintenance();

    let stream = YcsbOpStream::new(&YcsbConfig {
        records: config.keys,
        theta: 0.5,
        mix: YcsbMix::WriteHeavy,
    });
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Shadow state. `model` holds committed values only; `uncertain`
    // holds keys whose last commit attempt ended in an I/O error (the
    // commit record may or may not be durable — either outcome is
    // legal, so verification skips them until a later clean commit).
    let mut model: HashMap<u64, u8> = HashMap::new();
    let mut uncertain: HashSet<u64> = HashSet::new();

    let mut ops: u64 = 0;
    let fences = |db: &Database| db.wal().nvm_stats().snapshot().fences;
    // Total migration activity: every completed path plus every shadow
    // commit that aborted. Monotone across crash/recover cycles.
    let migrations = |db: &Database| {
        let m = db.buffer_manager().metrics();
        m.migrations.iter().sum::<u64>() + m.migrations_aborted
    };
    let mut next_fence_crash = match config.schedule {
        CrashSchedule::EveryKFences(k) => fences(&db) + k.max(1),
        _ => u64::MAX,
    };
    let mut next_op_crash = match config.schedule {
        CrashSchedule::EveryNOps(n) => n.max(1),
        CrashSchedule::RandomOps | CrashSchedule::TornSsdWrites => 1 + rng.gen::<u64>() % 64,
        _ => u64::MAX,
    };
    let mut next_mig_crash = match config.schedule {
        CrashSchedule::EveryKMigrations(k) => migrations(&db) + k.max(1),
        _ => u64::MAX,
    };

    let mut ckpt_attempts: u64 = 0;

    'txns: for t in 0..config.txns {
        v.txns_run += 1;
        // One deterministic maintenance cycle per transaction boundary.
        maintenance.tick();
        if let Some(every) = config.checkpoint_every {
            if t > 0 && t % every == 0 {
                ckpt_attempts += 1;
                let sabotage = matches!(
                    config.schedule,
                    CrashSchedule::MidCheckpoint(m) if ckpt_attempts.is_multiple_of(m.max(1))
                );
                if sabotage {
                    // Kill this checkpoint partway through: a one-shot
                    // fatal fault on the k-th snapshot-store write leaves
                    // a partial (never-installed) generation behind, then
                    // the plug is pulled. Recovery must ignore the
                    // partial blocks and restart from the last installed
                    // generation plus the WAL tail, which the failed
                    // checkpoint must not have truncated.
                    // A full (SSD-backed) generation writes only index
                    // runs plus a manifest, so even the smallest
                    // generation has two store writes: alternate between
                    // killing the first and second.
                    let kth = 1 + (config.seed ^ ckpt_attempts) % 2;
                    let plan = FaultPlan::new(config.seed.wrapping_add(ckpt_attempts)).rule(
                        FaultRule::any(Trigger::NthOp(kth), FaultKind::Fatal).on_op(FaultOp::Write),
                    );
                    db.set_snapshot_fault_injector(Some(Arc::new(FaultInjector::new(plan))));
                    if db.checkpoint().is_ok() {
                        v.violations
                            .push("sabotaged checkpoint unexpectedly succeeded".to_string());
                    }
                    // Restore the run-wide background-noise injector (or
                    // none) before recovery reads the store.
                    db.set_snapshot_fault_injector(injector.clone());
                    maintenance.pause_for_crash();
                    crash_and_verify(
                        &db,
                        &model,
                        &uncertain,
                        config.keys,
                        &mut v,
                        config.expect_clean_log,
                    );
                    maintenance.resume();
                    v.crashes += 1;
                } else {
                    // Quiescent here: no transaction is in flight. A
                    // failed checkpoint is safe — the error surfaces
                    // before the generation is installed and before the
                    // log is truncated, so no records are dropped.
                    match db.checkpoint() {
                        Ok(_) => v.checkpoints += 1,
                        Err(_) => v.io_failures += 1,
                    }
                }
            }
        }

        let mut txn = db.begin();
        let mut pending: HashMap<u64, u8> = HashMap::new();
        let mut failed = false;
        let n_ops = 1 + rng.gen::<u64>() % 3;
        for _ in 0..n_ops {
            let (key, is_update) = stream.next_op(&mut rng);
            ops += 1;
            if is_update {
                let byte = rng.gen::<u8>();
                let payload = vec![byte; TUPLE];
                let result = match db.update(&mut txn, TABLE, key, &payload) {
                    Err(TxnError::NotFound) => db.insert(&mut txn, TABLE, key, &payload),
                    other => other,
                };
                match result {
                    Ok(()) => {
                        pending.insert(key, byte);
                    }
                    Err(TxnError::Conflict | TxnError::Duplicate) => failed = true,
                    Err(_) => {
                        v.io_failures += 1;
                        failed = true;
                    }
                }
            } else {
                let expect = pending.get(&key).or_else(|| model.get(&key)).copied();
                match (db.read(&txn, TABLE, key), expect) {
                    (Ok(got), Some(byte)) => {
                        // Own writes and committed state must both be
                        // visible mid-run, not just after recovery.
                        if !uncertain.contains(&key) && got[0] != byte {
                            v.violations.push(format!(
                                "live read of key {key} saw {} expected {byte}",
                                got[0]
                            ));
                        }
                    }
                    (Ok(got), None) => {
                        if !uncertain.contains(&key) {
                            v.violations
                                .push(format!("live read resurrected key {key} = {}", got[0]));
                        }
                    }
                    (Err(TxnError::NotFound), Some(byte)) => {
                        if !uncertain.contains(&key) {
                            v.violations
                                .push(format!("live read lost key {key} = {byte}"));
                        }
                    }
                    (Err(TxnError::NotFound), None) => {}
                    (Err(_), _) => {
                        v.io_failures += 1;
                        failed = true;
                    }
                }
            }

            // Crash points are checked between operations, so an
            // interrupted transaction becomes a recovery loser and its
            // writes must NOT survive — the resurrection check above
            // stays strict for them.
            let crash_now = ops >= next_op_crash
                || fences(&db) >= next_fence_crash
                || migrations(&db) >= next_mig_crash;
            if crash_now {
                match config.schedule {
                    CrashSchedule::EveryNOps(n) => {
                        let n = n.max(1);
                        while next_op_crash <= ops {
                            next_op_crash += n;
                        }
                    }
                    CrashSchedule::RandomOps | CrashSchedule::TornSsdWrites => {
                        next_op_crash = ops + 1 + rng.gen::<u64>() % 64;
                    }
                    CrashSchedule::EveryKFences(k) => {
                        let k = k.max(1);
                        let now = fences(&db);
                        while next_fence_crash <= now {
                            next_fence_crash += k;
                        }
                    }
                    CrashSchedule::EveryKMigrations(k) => {
                        let k = k.max(1);
                        let now = migrations(&db);
                        while next_mig_crash <= now {
                            next_mig_crash += k;
                        }
                    }
                    CrashSchedule::MidCheckpoint(_) | CrashSchedule::None => {}
                }
                // Park maintenance across the crash (no-op in tick mode,
                // but keeps the lifecycle protocol honest) and schedule a
                // refill once recovery is done.
                maintenance.pause_for_crash();
                crash_and_verify(
                    &db,
                    &model,
                    &uncertain,
                    config.keys,
                    &mut v,
                    config.expect_clean_log,
                );
                maintenance.resume();
                v.crashes += 1;
                continue 'txns;
            }
        }

        if failed {
            let _ = db.abort(&mut txn);
            v.aborts += 1;
        } else if rng.gen::<f64>() < 0.1 {
            // Voluntary abort: its writes must never resurrect.
            let _ = db.abort(&mut txn);
            v.aborts += 1;
        } else {
            match db.commit(&mut txn) {
                Ok(()) => {
                    for (key, byte) in pending {
                        model.insert(key, byte);
                        uncertain.remove(&key);
                    }
                    v.commits += 1;
                }
                Err(TxnError::Conflict) => v.aborts += 1,
                Err(_) => {
                    // The commit record's durability is unknown; flag
                    // every touched key as unverifiable until a later
                    // commit settles it.
                    v.io_failures += 1;
                    for key in pending.keys() {
                        uncertain.insert(*key);
                    }
                }
            }
        }
    }

    // Final crash: every run ends with at least one recovery check.
    maintenance.pause_for_crash();
    crash_and_verify(
        &db,
        &model,
        &uncertain,
        config.keys,
        &mut v,
        config.expect_clean_log,
    );
    maintenance.resume();
    v.crashes += 1;

    v.ops_run = ops;
    v.io_retries = db.buffer_manager().metrics().io_retries;
    if let Some(inj) = &injector {
        v.faults = inj.stats();
    }
    v
}
