//! Chaos recovery explorer CLI.
//!
//! Runs the crash-schedule explorer against the full database stack and
//! reports a verdict per run. Exit status is non-zero if any run
//! observed an invariant violation, so this doubles as a CI gate:
//!
//! ```text
//! chaos_recovery --seed 7 --schedule every-4-fences
//! chaos_recovery --matrix            # the fixed CI seed × schedule grid
//! ```
//!
//! Every run is deterministic in `(--seed, --schedule, --fault-probability)`;
//! re-running a failing line reproduces it exactly.

use std::process::ExitCode;

use spitfire_chaos::{
    ChaosConfig, CrashSchedule, FaultKind, FaultOp, FaultPlan, FaultRule, Trigger, Verdict,
};

const USAGE: &str = "usage: chaos_recovery [--seed N] [--schedule S] [--txns N] [--keys N] \
     [--fault-probability P] [--file-ssd] [--matrix]
  --seed N               rng seed for ops and crash points (default 1)
  --schedule S           every-K-fences | every-N-ops | at-op-N | every-K-migrations |
                         mid-checkpoint-M | torn-ssd-writes | random | none
  --txns N               transactions per run (default 200)
  --keys N               key-space size (default 16)
  --fault-probability P  background transient-fault rate, e.g. 0.01 (default 0)
  --file-ssd             back the SSD tier with a real file (O_DIRECT when supported)
  --matrix               run the fixed CI grid (seeds 1..=8 x 7 schedules)";

/// Background-noise plan: transient errors on every device path plus
/// occasional write-latency spikes. The rate is kept low enough that
/// exhausting the 8-attempt retry loop is impossible in practice
/// (p^9 ~ 1e-18 at p = 0.01), so these faults must be fully absorbed.
fn noise_plan(seed: u64, p: f64) -> Option<FaultPlan> {
    if p <= 0.0 {
        return None;
    }
    Some(
        FaultPlan::new(seed)
            .rule(FaultRule::any(
                Trigger::Probability(p),
                FaultKind::Transient,
            ))
            .rule(
                FaultRule::any(Trigger::Probability(p / 4.0), FaultKind::LatencyUs(20))
                    .on_op(FaultOp::Write),
            ),
    )
}

fn print_verdict(seed: u64, schedule: &CrashSchedule, v: &Verdict) {
    let status = if v.violations.is_empty() {
        "ok"
    } else {
        "FAIL"
    };
    println!(
        "seed={seed:<3} schedule={:<16} {status}: txns={} commits={} aborts={} \
         crashes={} checkpoints={} io_failures={} io_retries={} faults={}",
        schedule.label(),
        v.txns_run,
        v.commits,
        v.aborts,
        v.crashes,
        v.checkpoints,
        v.io_failures,
        v.io_retries,
        v.faults.injected,
    );
    for violation in &v.violations {
        println!("    violation: {violation}");
    }
}

fn run_one(
    seed: u64,
    schedule: CrashSchedule,
    txns: u64,
    keys: u64,
    p: f64,
    file_ssd: bool,
) -> bool {
    let config = ChaosConfig {
        seed,
        schedule,
        txns,
        keys,
        plan: noise_plan(seed, p),
        file_ssd,
        ..ChaosConfig::default()
    };
    let v = spitfire_chaos::run(&config);
    print_verdict(seed, &schedule, &v);
    v.violations.is_empty()
}

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut schedule = CrashSchedule::None;
    let mut txns = 200u64;
    let mut keys = 16u64;
    let mut probability = 0.0f64;
    let mut file_ssd = false;
    let mut matrix = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--seed" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage_error("--seed needs an integer"),
            },
            "--schedule" => match value(&mut i).as_deref().and_then(CrashSchedule::parse) {
                Some(s) => schedule = s,
                None => {
                    return usage_error(
                        "--schedule needs every-K-fences | every-N-ops | at-op-N | \
                         every-K-migrations | mid-checkpoint-M | torn-ssd-writes | \
                         random | none",
                    )
                }
            },
            "--txns" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => txns = n,
                None => return usage_error("--txns needs an integer"),
            },
            "--keys" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => keys = n,
                None => return usage_error("--keys needs an integer"),
            },
            "--fault-probability" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(p) => probability = p,
                None => return usage_error("--fault-probability needs a float"),
            },
            "--file-ssd" => file_ssd = true,
            "--matrix" => matrix = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage_error("");
            }
        }
        i += 1;
    }

    if matrix {
        // The CI grid: fixed seeds x crash schedules, with background
        // transient noise. Torn WAL writes and dropped flushes stay out
        // of the grid (a silently dropped fsync is genuine, intentional
        // data loss — targeted detection tests cover those); the
        // torn-ssd-writes schedule is safe to include because it pairs
        // every torn SSD page write with failing syncs, so the torn image
        // can never be trusted. It always runs file-backed; --file-ssd
        // flips the remaining schedules onto the real-file backend too.
        let schedules = [
            CrashSchedule::EveryKFences(2),
            CrashSchedule::EveryKFences(8),
            CrashSchedule::EveryNOps(37),
            CrashSchedule::RandomOps,
            CrashSchedule::MidCheckpoint(2),
            CrashSchedule::EveryKMigrations(2),
            CrashSchedule::TornSsdWrites,
        ];
        let mut failures = 0u32;
        let total = 8 * schedules.len();
        for seed in 1..=8u64 {
            for schedule in schedules {
                if !run_one(seed, schedule, txns, keys, 0.01, file_ssd) {
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!("{failures} run(s) violated recovery invariants");
            return ExitCode::FAILURE;
        }
        let backend = if file_ssd { "file-backed" } else { "emulated" };
        println!("matrix clean: {total}/{total} runs upheld every invariant ({backend} SSD)");
        return ExitCode::SUCCESS;
    }

    if run_one(seed, schedule, txns, keys, probability, file_ssd) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    if !message.is_empty() {
        eprintln!("{message}");
    }
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
