//! SSD page store: block-addressable page device with SSD-speed cost
//! accounting, backed by either an emulated in-memory arena or a real
//! file with direct I/O ([`crate::FileSsdDevice`]).

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cost::{AccessPattern, CostModel, TimeScale};
use crate::error::DeviceError;
use crate::fault::{FaultInjector, FaultOp, Outcome};
use crate::file_ssd::FileSsdDevice;
use crate::nvm::PersistenceTracking;
use crate::profile::{DeviceKind, DeviceProfile};
use crate::stats::DeviceStats;
use crate::Result;

/// Number of lock shards for the emulated page map; power of two.
const SHARDS: usize = 64;

/// Which store implementation backs an [`SsdDevice`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum SsdBackendConfig {
    /// The emulated in-memory arena with cost-model delays (the default;
    /// deterministic, no filesystem dependency).
    #[default]
    Emulated,
    /// A real file written through `pwrite`/`pread` with `O_DIRECT` when
    /// the filesystem supports it. Emulated delays are disabled — the
    /// device's own latency is the measurement. `path: None` uses a
    /// unique temporary file removed when the device drops.
    File {
        /// Backing-file path; `None` for an auto-removed temp file.
        path: Option<PathBuf>,
    },
}

/// Durability bookkeeping mirroring an OS page cache: writes land in the
/// volatile page map and only become crash-safe once [`SsdDevice::sync`]
/// copies them into the synced image (the emulated fsync barrier).
struct SyncedImage {
    /// Page images as of the last successful `sync`.
    synced: Mutex<HashMap<u64, Box<[u8]>>>,
    /// Pages written (or overwritten) since the last `sync`.
    dirty: Mutex<HashSet<u64>>,
}

/// The two store implementations behind the shared fault/cost/stats
/// plumbing of [`SsdDevice`].
enum Backend {
    Mem {
        shards: Vec<RwLock<HashMap<u64, Box<[u8]>>>>,
        durability: Option<SyncedImage>,
    },
    File(FileSsdDevice),
}

/// SSD page store: whole-page reads and writes only.
///
/// Unlike [`crate::NvmDevice`], the CPU cannot address individual bytes —
/// every transfer moves an entire page, which is the defining property that
/// makes a DRAM (or NVM) buffer mandatory for SSD-resident data (paper §1).
///
/// The default backend is an unbounded sharded hash map from page id to
/// page image with emulated Optane-SSD (P4800X) timing; capacity
/// accounting is the caller's concern (the database simply grows the SSD
/// as pages are allocated, as in the paper's experiments where the SSD
/// always holds the whole database). [`SsdDevice::with_backend`] selects
/// a real backing file instead ([`SsdBackendConfig::File`]); fault
/// injection, stats, and the durability model behave identically on both.
pub struct SsdDevice {
    backend: Backend,
    page_size: usize,
    cost: CostModel,
    stats: Arc<DeviceStats>,
    injector: RwLock<Option<Arc<FaultInjector>>>,
}

impl SsdDevice {
    /// An SSD storing `page_size`-byte pages with Table 1 characteristics.
    /// Writes are treated as durable immediately (no crash model), matching
    /// the historical behavior; use [`SsdDevice::with_tracking`] with
    /// [`PersistenceTracking::Full`] for recovery tests.
    pub fn new(page_size: usize, scale: TimeScale) -> Self {
        Self::with_profile(page_size, DeviceProfile::optane_ssd(), scale)
    }

    /// An SSD with the requested durability bookkeeping. Under
    /// [`PersistenceTracking::Full`], writes are volatile until
    /// [`SsdDevice::sync`] and [`SsdDevice::simulate_crash`] rolls back to
    /// the last synced image — the SSD analogue of the NVM device's
    /// unflushed-line discard.
    pub fn with_tracking(
        page_size: usize,
        scale: TimeScale,
        tracking: PersistenceTracking,
    ) -> Self {
        let mut dev = Self::with_profile(page_size, DeviceProfile::optane_ssd(), scale);
        if tracking == PersistenceTracking::Full {
            if let Backend::Mem { durability, .. } = &mut dev.backend {
                *durability = Some(SyncedImage {
                    synced: Mutex::new(HashMap::new()),
                    dirty: Mutex::new(HashSet::new()),
                });
            }
        }
        dev
    }

    /// An SSD with the chosen backend ([`SsdBackendConfig`]). The file
    /// backend propagates open errors; the emulated backend is infallible.
    pub fn with_backend(
        page_size: usize,
        scale: TimeScale,
        tracking: PersistenceTracking,
        backend: &SsdBackendConfig,
    ) -> Result<Self> {
        match backend {
            SsdBackendConfig::Emulated => Ok(Self::with_tracking(page_size, scale, tracking)),
            SsdBackendConfig::File { path } => {
                let file = FileSsdDevice::new(
                    page_size,
                    path.clone(),
                    tracking == PersistenceTracking::Full,
                )?;
                let mut dev = Self::with_profile(page_size, DeviceProfile::optane_ssd(), scale);
                dev.backend = Backend::File(file);
                Ok(dev)
            }
        }
    }

    /// An SSD with a custom profile (emulated backend).
    pub fn with_profile(page_size: usize, profile: DeviceProfile, scale: TimeScale) -> Self {
        SsdDevice {
            backend: Backend::Mem {
                shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
                durability: None,
            },
            page_size,
            cost: CostModel::new(profile, scale),
            stats: Arc::new(DeviceStats::new()),
            injector: RwLock::new(None),
        }
    }

    /// Whether this device is backed by a real file (no emulated delays).
    pub fn is_file_backed(&self) -> bool {
        matches!(self.backend, Backend::File(_))
    }

    /// The file backend, when active (diagnostics: path, direct-I/O flag).
    pub fn file_backend(&self) -> Option<&FileSsdDevice> {
        match &self.backend {
            Backend::File(f) => Some(f),
            Backend::Mem { .. } => None,
        }
    }

    /// Attach (or detach with `None`) a chaos fault injector; every
    /// subsequent page read/write/sync consults it first.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.write() = injector;
    }

    fn fault(&self, op: FaultOp, pid: u64, len: usize) -> Outcome {
        match &*self.injector.read() {
            // Page ops expose `pid * page_size` as the byte offset so
            // offset-range predicates can target page ranges.
            Some(inj) => inj.decide(
                DeviceKind::Ssd,
                op,
                pid.wrapping_mul(self.page_size as u64),
                len,
            ),
            None => Outcome::Proceed,
        }
    }

    fn mem_mark_dirty(&self, pid: u64) {
        if let Backend::Mem {
            durability: Some(d),
            ..
        } = &self.backend
        {
            d.dirty.lock().insert(pid);
        }
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Shared handle to this device's counters.
    pub fn stats(&self) -> Arc<DeviceStats> {
        Arc::clone(&self.stats)
    }

    /// The device profile in effect.
    pub fn profile(&self) -> &DeviceProfile {
        self.cost.profile()
    }

    /// Change the emulated-delay scale (no effect on the file backend,
    /// whose latency is the real device's).
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.cost.set_scale(scale);
    }

    fn shard(&self, pid: u64) -> &RwLock<HashMap<u64, Box<[u8]>>> {
        let Backend::Mem { shards, .. } = &self.backend else {
            unreachable!("shard() is only called on the emulated backend");
        };
        &shards[(pid as usize) & (SHARDS - 1)]
    }

    /// Read page `pid` into `buf` (must be exactly one page long).
    pub fn read_page(&self, pid: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        if let Outcome::Fail(e) = self.fault(FaultOp::Read, pid, buf.len()) {
            return Err(e);
        }
        match &self.backend {
            Backend::Mem { .. } => {
                {
                    let shard = self.shard(pid).read();
                    let page = shard.get(&pid).ok_or(DeviceError::PageNotFound(pid))?;
                    buf.copy_from_slice(page);
                }
                let eff = self.cost.charge_read(self.page_size, AccessPattern::Random);
                self.stats.record_read(eff);
            }
            Backend::File(f) => {
                f.read_page(pid, buf)?;
                self.stats.record_read(self.page_size);
            }
        }
        Ok(())
    }

    /// Store `data[..keep]` as page `pid` in the emulated arena. For a
    /// torn write (`keep` short of a full page) an existing page keeps its
    /// old tail bytes and a fresh page gets a zero tail — the page
    /// "exists" either way.
    fn mem_store(&self, pid: u64, data: &[u8], keep: usize) {
        let mut shard = self.shard(pid).write();
        match shard.get_mut(&pid) {
            Some(page) => page[..keep].copy_from_slice(&data[..keep]),
            None => {
                let mut page = vec![0u8; self.page_size].into_boxed_slice();
                page[..keep].copy_from_slice(&data[..keep]);
                shard.insert(pid, page);
            }
        }
    }

    fn write_page_inner(&self, pid: u64, data: &[u8], pattern: AccessPattern) -> Result<()> {
        if data.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: data.len(),
            });
        }
        let keep = match self.fault(FaultOp::Write, pid, data.len()) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Truncate(keep) => keep,
            Outcome::Proceed | Outcome::Drop => data.len(),
        };
        match &self.backend {
            Backend::Mem { .. } => {
                self.mem_store(pid, data, keep);
                self.mem_mark_dirty(pid);
                let eff = self.cost.charge_write(self.page_size, pattern);
                self.stats.record_write(eff);
            }
            Backend::File(f) => {
                f.write_page(pid, data, keep)?;
                self.stats.record_write(self.page_size);
            }
        }
        Ok(())
    }

    /// Write `data` (exactly one page) as page `pid`, creating it if absent.
    ///
    /// Volatile until [`SsdDevice::sync`] when durability tracking is on.
    pub fn write_page(&self, pid: u64, data: &[u8]) -> Result<()> {
        self.write_page_inner(pid, data, AccessPattern::Random)
    }

    /// Append-style sequential write used by the log writer: identical to
    /// [`SsdDevice::write_page`] but charged at sequential-write rates
    /// and always replacing the full page image.
    pub fn append_page(&self, pid: u64, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: data.len(),
            });
        }
        let keep = match self.fault(FaultOp::Write, pid, data.len()) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Truncate(keep) => keep,
            Outcome::Proceed | Outcome::Drop => data.len(),
        };
        match &self.backend {
            Backend::Mem { .. } => {
                {
                    let mut shard = self.shard(pid).write();
                    let mut page = vec![0u8; self.page_size].into_boxed_slice();
                    page[..keep].copy_from_slice(&data[..keep]);
                    shard.insert(pid, page);
                }
                self.mem_mark_dirty(pid);
                let eff = self
                    .cost
                    .charge_write(self.page_size, AccessPattern::Sequential);
                self.stats.record_write(eff);
            }
            Backend::File(f) => {
                f.write_page(pid, data, keep)?;
                self.stats.record_write(self.page_size);
            }
        }
        Ok(())
    }

    /// Submit a batch of pages as one sorted multi-page write (the
    /// maintenance/checkpoint write-back fast path): page ids are sorted,
    /// contiguous runs are coalesced into single submissions on the file
    /// backend, and the whole batch is charged at sequential-write rates.
    /// The caller issues the single [`SsdDevice::sync`] that makes the
    /// batch durable.
    ///
    /// When a fault injector is attached the batch degrades to per-page
    /// writes so every page gets its own fault decision (torn writes,
    /// per-page transients) exactly as if [`SsdDevice::write_page`] had
    /// been called in a loop. Returns the number of device submissions.
    pub fn write_pages(&self, pages: &mut Vec<(u64, &[u8])>) -> Result<usize> {
        for (_, data) in pages.iter() {
            if data.len() != self.page_size {
                return Err(DeviceError::BadPageSize {
                    expected: self.page_size,
                    got: data.len(),
                });
            }
        }
        let faulted = self.injector.read().is_some();
        if let (Backend::File(f), false) = (&self.backend, faulted) {
            let n = f.write_pages(pages)?;
            for _ in pages.iter() {
                self.stats.record_write(self.page_size);
            }
            return Ok(n);
        }
        pages.sort_unstable_by_key(|(pid, _)| *pid);
        for (pid, data) in pages.iter() {
            self.write_page_inner(*pid, data, AccessPattern::Sequential)?;
        }
        Ok(pages.len())
    }

    /// Durability barrier (fsync): make every write since the last sync
    /// crash-safe. A no-op for the emulated backend without durability
    /// tracking; a real `fdatasync` on the file backend. A dropped-flush
    /// fault returns `Ok` while leaving the pages volatile.
    pub fn sync(&self) -> Result<()> {
        match self.fault(FaultOp::Sync, 0, 0) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Drop => return Ok(()),
            Outcome::Proceed | Outcome::Truncate(_) => {}
        }
        match &self.backend {
            Backend::Mem { durability, .. } => {
                let Some(d) = durability else {
                    return Ok(());
                };
                let dirty: Vec<u64> = d.dirty.lock().drain().collect();
                let mut bytes = 0usize;
                let mut synced = d.synced.lock();
                for pid in dirty {
                    if let Some(page) = self.shard(pid).read().get(&pid) {
                        bytes += page.len();
                        synced.insert(pid, page.clone());
                    }
                }
                self.stats.record_flush(bytes);
                self.stats.record_fence();
            }
            Backend::File(f) => {
                let bytes = f.sync()?;
                self.stats.record_flush(bytes);
                self.stats.record_fence();
            }
        }
        Ok(())
    }

    /// Model power loss: roll the page store back to the last synced
    /// image, discarding every un-synced write — the block-device analogue
    /// of [`crate::NvmDevice::simulate_crash`]. A no-op without tracking.
    pub fn simulate_crash(&self) {
        match &self.backend {
            Backend::Mem {
                shards, durability, ..
            } => {
                let Some(d) = durability else { return };
                d.dirty.lock().clear();
                let synced = d.synced.lock();
                for shard in shards {
                    shard.write().clear();
                }
                for (pid, page) in synced.iter() {
                    self.shard(*pid).write().insert(*pid, page.clone());
                }
            }
            Backend::File(f) => f.simulate_crash(),
        }
    }

    /// Whether page `pid` exists on the device.
    pub fn contains(&self, pid: u64) -> bool {
        match &self.backend {
            Backend::Mem { .. } => self.shard(pid).read().contains_key(&pid),
            Backend::File(f) => f.contains(pid),
        }
    }

    /// Number of pages currently stored.
    pub fn page_count(&self) -> usize {
        match &self.backend {
            Backend::Mem { shards, .. } => shards.iter().map(|s| s.read().len()).sum(),
            Backend::File(f) => f.page_count(),
        }
    }

    /// Occupied capacity in bytes.
    pub fn used_bytes(&self) -> u64 {
        self.page_count() as u64 * self.page_size as u64
    }

    /// Highest page id stored, if any (used by recovery to restore the
    /// page allocator).
    pub fn max_page_id(&self) -> Option<u64> {
        match &self.backend {
            Backend::Mem { shards, .. } => shards
                .iter()
                .filter_map(|s| s.read().keys().max().copied())
                .max(),
            Backend::File(f) => f.max_page_id(),
        }
    }
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("page_size", &self.page_size)
            .field("pages", &self.page_count())
            .field("file_backed", &self.is_file_backed())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> SsdDevice {
        SsdDevice::new(4096, TimeScale::ZERO)
    }

    fn file_ssd(tracking: PersistenceTracking) -> SsdDevice {
        SsdDevice::with_backend(
            4096,
            TimeScale::ZERO,
            tracking,
            &SsdBackendConfig::File { path: None },
        )
        .expect("file-backed ssd")
    }

    #[test]
    fn write_then_read_page() {
        let d = ssd();
        let page = vec![7u8; 4096];
        d.write_page(42, &page).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(42, &mut buf).unwrap();
        assert_eq!(buf, page);
        assert_eq!(d.page_count(), 1);
        assert!(d.contains(42));
        assert!(!d.contains(43));
    }

    #[test]
    fn missing_page_is_an_error() {
        let d = ssd();
        let mut buf = vec![0u8; 4096];
        assert_eq!(
            d.read_page(1, &mut buf).unwrap_err(),
            DeviceError::PageNotFound(1)
        );
    }

    #[test]
    fn wrong_buffer_size_is_rejected() {
        let d = ssd();
        let mut small = vec![0u8; 100];
        assert!(matches!(
            d.read_page(1, &mut small).unwrap_err(),
            DeviceError::BadPageSize {
                expected: 4096,
                got: 100
            }
        ));
        assert!(d.write_page(1, &small).is_err());
    }

    #[test]
    fn overwrite_replaces_content() {
        let d = ssd();
        d.write_page(9, &vec![1u8; 4096]).unwrap();
        d.write_page(9, &vec![2u8; 4096]).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(9, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn concurrent_writers_to_distinct_pages() {
        let d = Arc::new(ssd());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        d.write_page(i, &vec![(i + round) as u8; 4096]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.page_count(), 8);
        for i in 0..8u64 {
            let mut buf = vec![0u8; 4096];
            d.read_page(i, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == buf[0]));
        }
    }

    #[test]
    fn used_bytes_tracks_page_count() {
        let d = ssd();
        d.write_page(1, &vec![0u8; 4096]).unwrap();
        d.write_page(2, &vec![0u8; 4096]).unwrap();
        assert_eq!(d.used_bytes(), 8192);
    }

    #[test]
    fn unsynced_writes_are_lost_on_crash() {
        let d = SsdDevice::with_tracking(4096, TimeScale::ZERO, PersistenceTracking::Full);
        d.write_page(1, &vec![1u8; 4096]).unwrap();
        d.sync().unwrap();
        d.write_page(1, &vec![9u8; 4096]).unwrap(); // overwrite, un-synced
        d.write_page(2, &vec![2u8; 4096]).unwrap(); // new page, un-synced
        d.simulate_crash();
        let mut buf = vec![0u8; 4096];
        d.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "page 1 rolled back to synced image");
        assert_eq!(
            d.read_page(2, &mut buf).unwrap_err(),
            DeviceError::PageNotFound(2),
            "never-synced page vanishes"
        );
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn crash_without_tracking_is_a_noop() {
        let d = ssd();
        d.write_page(5, &vec![5u8; 4096]).unwrap();
        d.simulate_crash();
        assert!(d.contains(5));
        d.sync().unwrap(); // also a no-op
    }

    #[test]
    fn sync_counts_fence_and_flushed_bytes() {
        let d = SsdDevice::with_tracking(4096, TimeScale::ZERO, PersistenceTracking::Full);
        d.write_page(1, &vec![1u8; 4096]).unwrap();
        d.write_page(2, &vec![2u8; 4096]).unwrap();
        d.sync().unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.fences, 1);
        assert_eq!(s.bytes_flushed, 8192);
        // Clean sync flushes nothing new but still fences.
        d.sync().unwrap();
        assert_eq!(d.stats().snapshot().bytes_flushed, 8192);
    }

    #[test]
    fn file_backend_round_trip_and_crash_model() {
        let d = file_ssd(PersistenceTracking::Full);
        assert!(d.is_file_backed());
        d.write_page(1, &vec![1u8; 4096]).unwrap();
        d.sync().unwrap();
        d.write_page(1, &vec![9u8; 4096]).unwrap();
        d.write_page(2, &vec![2u8; 4096]).unwrap();
        d.simulate_crash();
        let mut buf = vec![0u8; 4096];
        d.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "file page rolled back to synced image");
        assert!(!d.contains(2));
        let s = d.stats().snapshot();
        assert!(s.read_ops >= 1 && s.write_ops >= 3 && s.fences == 1);
    }

    #[test]
    fn file_backend_batched_writes() {
        let d = file_ssd(PersistenceTracking::Counters);
        let pages: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i + 1; 4096]).collect();
        let mut batch: Vec<(u64, &[u8])> = vec![
            (3, &pages[0]),
            (1, &pages[1]),
            (2, &pages[2]),
            (9, &pages[3]),
        ];
        let submissions = d.write_pages(&mut batch).unwrap();
        assert_eq!(submissions, 2, "1..=3 coalesce, 9 stands alone");
        d.sync().unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(2, &mut buf).unwrap();
        assert_eq!(buf[0], 3);
        assert_eq!(d.page_count(), 4);
    }

    #[test]
    fn batched_writes_on_emulated_backend_match_per_page() {
        let d = SsdDevice::with_tracking(4096, TimeScale::ZERO, PersistenceTracking::Full);
        let a = vec![5u8; 4096];
        let b = vec![6u8; 4096];
        let mut batch: Vec<(u64, &[u8])> = vec![(7, &a), (8, &b)];
        assert_eq!(d.write_pages(&mut batch).unwrap(), 2);
        d.simulate_crash();
        assert!(!d.contains(7), "batched writes are volatile until sync");
    }
}
