//! Emulated SSD: block-addressable page store with SSD-speed cost accounting.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cost::{AccessPattern, CostModel, TimeScale};
use crate::error::DeviceError;
use crate::fault::{FaultInjector, FaultOp, Outcome};
use crate::nvm::PersistenceTracking;
use crate::profile::{DeviceKind, DeviceProfile};
use crate::stats::DeviceStats;
use crate::Result;

/// Number of lock shards for the page map; power of two.
const SHARDS: usize = 64;

/// Durability bookkeeping mirroring an OS page cache: writes land in the
/// volatile page map and only become crash-safe once [`SsdDevice::sync`]
/// copies them into the synced image (the emulated fsync barrier).
struct SyncedImage {
    /// Page images as of the last successful `sync`.
    synced: Mutex<HashMap<u64, Box<[u8]>>>,
    /// Pages written (or overwritten) since the last `sync`.
    dirty: Mutex<HashSet<u64>>,
}

/// Emulated Optane SSD (P4800X): whole-page reads and writes only.
///
/// Unlike [`crate::NvmDevice`], the CPU cannot address individual bytes —
/// every transfer moves an entire page, which is the defining property that
/// makes a DRAM (or NVM) buffer mandatory for SSD-resident data (paper §1).
///
/// The store is an unbounded sharded hash map from page id to page image;
/// capacity accounting is the caller's concern (the database simply grows
/// the SSD as pages are allocated, as in the paper's experiments where the
/// SSD always holds the whole database).
pub struct SsdDevice {
    shards: Vec<RwLock<HashMap<u64, Box<[u8]>>>>,
    page_size: usize,
    cost: CostModel,
    stats: Arc<DeviceStats>,
    durability: Option<SyncedImage>,
    injector: RwLock<Option<Arc<FaultInjector>>>,
}

impl SsdDevice {
    /// An SSD storing `page_size`-byte pages with Table 1 characteristics.
    /// Writes are treated as durable immediately (no crash model), matching
    /// the historical behavior; use [`SsdDevice::with_tracking`] with
    /// [`PersistenceTracking::Full`] for recovery tests.
    pub fn new(page_size: usize, scale: TimeScale) -> Self {
        Self::with_profile(page_size, DeviceProfile::optane_ssd(), scale)
    }

    /// An SSD with the requested durability bookkeeping. Under
    /// [`PersistenceTracking::Full`], writes are volatile until
    /// [`SsdDevice::sync`] and [`SsdDevice::simulate_crash`] rolls back to
    /// the last synced image — the SSD analogue of the NVM device's
    /// unflushed-line discard.
    pub fn with_tracking(
        page_size: usize,
        scale: TimeScale,
        tracking: PersistenceTracking,
    ) -> Self {
        let mut dev = Self::with_profile(page_size, DeviceProfile::optane_ssd(), scale);
        if tracking == PersistenceTracking::Full {
            dev.durability = Some(SyncedImage {
                synced: Mutex::new(HashMap::new()),
                dirty: Mutex::new(HashSet::new()),
            });
        }
        dev
    }

    /// An SSD with a custom profile.
    pub fn with_profile(page_size: usize, profile: DeviceProfile, scale: TimeScale) -> Self {
        SsdDevice {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            page_size,
            cost: CostModel::new(profile, scale),
            stats: Arc::new(DeviceStats::new()),
            durability: None,
            injector: RwLock::new(None),
        }
    }

    /// Attach (or detach with `None`) a chaos fault injector; every
    /// subsequent page read/write/sync consults it first.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.write() = injector;
    }

    fn fault(&self, op: FaultOp, pid: u64, len: usize) -> Outcome {
        match &*self.injector.read() {
            // Page ops expose `pid * page_size` as the byte offset so
            // offset-range predicates can target page ranges.
            Some(inj) => inj.decide(
                DeviceKind::Ssd,
                op,
                pid.wrapping_mul(self.page_size as u64),
                len,
            ),
            None => Outcome::Proceed,
        }
    }

    fn mark_dirty(&self, pid: u64) {
        if let Some(d) = &self.durability {
            d.dirty.lock().insert(pid);
        }
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Shared handle to this device's counters.
    pub fn stats(&self) -> Arc<DeviceStats> {
        Arc::clone(&self.stats)
    }

    /// The device profile in effect.
    pub fn profile(&self) -> &DeviceProfile {
        self.cost.profile()
    }

    /// Change the emulated-delay scale.
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.cost.set_scale(scale);
    }

    fn shard(&self, pid: u64) -> &RwLock<HashMap<u64, Box<[u8]>>> {
        &self.shards[(pid as usize) & (SHARDS - 1)]
    }

    /// Read page `pid` into `buf` (must be exactly one page long).
    pub fn read_page(&self, pid: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        if let Outcome::Fail(e) = self.fault(FaultOp::Read, pid, buf.len()) {
            return Err(e);
        }
        {
            let shard = self.shard(pid).read();
            let page = shard.get(&pid).ok_or(DeviceError::PageNotFound(pid))?;
            buf.copy_from_slice(page);
        }
        let eff = self.cost.charge_read(self.page_size, AccessPattern::Random);
        self.stats.record_read(eff);
        Ok(())
    }

    /// Store `data[..keep]` as page `pid`. For a torn write (`keep` short of
    /// a full page) an existing page keeps its old tail bytes and a fresh
    /// page gets a zero tail — the page "exists" either way.
    fn store(&self, pid: u64, data: &[u8], keep: usize) {
        let mut shard = self.shard(pid).write();
        match shard.get_mut(&pid) {
            Some(page) => page[..keep].copy_from_slice(&data[..keep]),
            None => {
                let mut page = vec![0u8; self.page_size].into_boxed_slice();
                page[..keep].copy_from_slice(&data[..keep]);
                shard.insert(pid, page);
            }
        }
    }

    /// Write `data` (exactly one page) as page `pid`, creating it if absent.
    ///
    /// Volatile until [`SsdDevice::sync`] when durability tracking is on.
    pub fn write_page(&self, pid: u64, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: data.len(),
            });
        }
        let keep = match self.fault(FaultOp::Write, pid, data.len()) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Truncate(keep) => keep,
            Outcome::Proceed | Outcome::Drop => data.len(),
        };
        self.store(pid, data, keep);
        self.mark_dirty(pid);
        let eff = self
            .cost
            .charge_write(self.page_size, AccessPattern::Random);
        self.stats.record_write(eff);
        Ok(())
    }

    /// Append-style sequential write used by the log writer: identical to
    /// [`SsdDevice::write_page`] but charged at sequential-write rates.
    pub fn append_page(&self, pid: u64, data: &[u8]) -> Result<()> {
        if data.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: data.len(),
            });
        }
        let keep = match self.fault(FaultOp::Write, pid, data.len()) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Truncate(keep) => keep,
            Outcome::Proceed | Outcome::Drop => data.len(),
        };
        {
            let mut shard = self.shard(pid).write();
            let mut page = vec![0u8; self.page_size].into_boxed_slice();
            page[..keep].copy_from_slice(&data[..keep]);
            shard.insert(pid, page);
        }
        self.mark_dirty(pid);
        let eff = self
            .cost
            .charge_write(self.page_size, AccessPattern::Sequential);
        self.stats.record_write(eff);
        Ok(())
    }

    /// Durability barrier (emulated fsync): make every write since the last
    /// sync crash-safe. A no-op without durability tracking. A dropped-flush
    /// fault returns `Ok` while leaving the pages volatile.
    pub fn sync(&self) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        match self.fault(FaultOp::Sync, 0, 0) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Drop => return Ok(()),
            Outcome::Proceed | Outcome::Truncate(_) => {}
        }
        let dirty: Vec<u64> = d.dirty.lock().drain().collect();
        let mut bytes = 0usize;
        let mut synced = d.synced.lock();
        for pid in dirty {
            if let Some(page) = self.shard(pid).read().get(&pid) {
                bytes += page.len();
                synced.insert(pid, page.clone());
            }
        }
        self.stats.record_flush(bytes);
        self.stats.record_fence();
        Ok(())
    }

    /// Model power loss: roll the page map back to the last synced image,
    /// discarding every un-synced write — the block-device analogue of
    /// [`crate::NvmDevice::simulate_crash`]. A no-op without tracking.
    pub fn simulate_crash(&self) {
        let Some(d) = &self.durability else { return };
        d.dirty.lock().clear();
        let synced = d.synced.lock();
        for shard in &self.shards {
            shard.write().clear();
        }
        for (pid, page) in synced.iter() {
            self.shard(*pid).write().insert(*pid, page.clone());
        }
    }

    /// Whether page `pid` exists on the device.
    pub fn contains(&self, pid: u64) -> bool {
        self.shard(pid).read().contains_key(&pid)
    }

    /// Number of pages currently stored.
    pub fn page_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Occupied capacity in bytes.
    pub fn used_bytes(&self) -> u64 {
        self.page_count() as u64 * self.page_size as u64
    }

    /// Highest page id stored, if any (used by recovery to restore the
    /// page allocator).
    pub fn max_page_id(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.read().keys().max().copied())
            .max()
    }
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("page_size", &self.page_size)
            .field("pages", &self.page_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> SsdDevice {
        SsdDevice::new(4096, TimeScale::ZERO)
    }

    #[test]
    fn write_then_read_page() {
        let d = ssd();
        let page = vec![7u8; 4096];
        d.write_page(42, &page).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(42, &mut buf).unwrap();
        assert_eq!(buf, page);
        assert_eq!(d.page_count(), 1);
        assert!(d.contains(42));
        assert!(!d.contains(43));
    }

    #[test]
    fn missing_page_is_an_error() {
        let d = ssd();
        let mut buf = vec![0u8; 4096];
        assert_eq!(
            d.read_page(1, &mut buf).unwrap_err(),
            DeviceError::PageNotFound(1)
        );
    }

    #[test]
    fn wrong_buffer_size_is_rejected() {
        let d = ssd();
        let mut small = vec![0u8; 100];
        assert!(matches!(
            d.read_page(1, &mut small).unwrap_err(),
            DeviceError::BadPageSize {
                expected: 4096,
                got: 100
            }
        ));
        assert!(d.write_page(1, &small).is_err());
    }

    #[test]
    fn overwrite_replaces_content() {
        let d = ssd();
        d.write_page(9, &vec![1u8; 4096]).unwrap();
        d.write_page(9, &vec![2u8; 4096]).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(9, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn concurrent_writers_to_distinct_pages() {
        let d = Arc::new(ssd());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        d.write_page(i, &vec![(i + round) as u8; 4096]).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.page_count(), 8);
        for i in 0..8u64 {
            let mut buf = vec![0u8; 4096];
            d.read_page(i, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == buf[0]));
        }
    }

    #[test]
    fn used_bytes_tracks_page_count() {
        let d = ssd();
        d.write_page(1, &vec![0u8; 4096]).unwrap();
        d.write_page(2, &vec![0u8; 4096]).unwrap();
        assert_eq!(d.used_bytes(), 8192);
    }

    #[test]
    fn unsynced_writes_are_lost_on_crash() {
        let d = SsdDevice::with_tracking(4096, TimeScale::ZERO, PersistenceTracking::Full);
        d.write_page(1, &vec![1u8; 4096]).unwrap();
        d.sync().unwrap();
        d.write_page(1, &vec![9u8; 4096]).unwrap(); // overwrite, un-synced
        d.write_page(2, &vec![2u8; 4096]).unwrap(); // new page, un-synced
        d.simulate_crash();
        let mut buf = vec![0u8; 4096];
        d.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "page 1 rolled back to synced image");
        assert_eq!(
            d.read_page(2, &mut buf).unwrap_err(),
            DeviceError::PageNotFound(2),
            "never-synced page vanishes"
        );
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn crash_without_tracking_is_a_noop() {
        let d = ssd();
        d.write_page(5, &vec![5u8; 4096]).unwrap();
        d.simulate_crash();
        assert!(d.contains(5));
        d.sync().unwrap(); // also a no-op
    }

    #[test]
    fn sync_counts_fence_and_flushed_bytes() {
        let d = SsdDevice::with_tracking(4096, TimeScale::ZERO, PersistenceTracking::Full);
        d.write_page(1, &vec![1u8; 4096]).unwrap();
        d.write_page(2, &vec![2u8; 4096]).unwrap();
        d.sync().unwrap();
        let s = d.stats().snapshot();
        assert_eq!(s.fences, 1);
        assert_eq!(s.bytes_flushed, 8192);
        // Clean sync flushes nothing new but still fences.
        d.sync().unwrap();
        assert_eq!(d.stats().snapshot().bytes_flushed, 8192);
    }
}
