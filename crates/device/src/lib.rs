//! Emulated storage devices for the Spitfire three-tier buffer manager.
//!
//! The Spitfire paper (SIGMOD 2021) is evaluated on Intel Optane DC Persistent
//! Memory Modules and an Optane SSD. This crate replaces that hardware with an
//! in-process emulation that preserves the properties the paper's results
//! depend on:
//!
//! * **Relative performance** — each device carries a [`DeviceProfile`]
//!   (latency, bandwidth, access granularity, price) seeded from Table 1 of
//!   the paper, and a [`CostModel`] that charges real wall-clock time for each
//!   access using a bandwidth-reservation scheme, so saturation under
//!   multi-threading emerges naturally.
//! * **Byte-addressability of NVM** — [`NvmDevice`] exposes load/store-style
//!   range reads and writes at arbitrary offsets, while [`SsdDevice`] only
//!   supports whole-page transfers.
//! * **Persistence semantics** — [`NvmDevice`] models the `clwb`/`sfence`
//!   protocol: written bytes sit in a volatile "CPU cache" shadow until they
//!   are explicitly flushed, and [`NvmDevice::simulate_crash`] discards
//!   everything that was not persisted, which is what the recovery protocol
//!   in `spitfire-txn` is tested against.
//! * **Memory mode** — [`MemoryModeDevice`] models DRAM acting as a
//!   direct-mapped write-back cache in front of NVM (the configuration the
//!   paper compares against app-direct mode in Figure 5).
//!
//! All emulated delays scale with a [`TimeScale`]; unit tests run with
//! [`TimeScale::ZERO`] (no delay, counters only) while experiments use
//! [`TimeScale::REAL`].

#![warn(missing_docs)]
#![warn(clippy::all)]

mod cost;
mod dram;
mod error;
pub mod fault;
mod file_ssd;
mod memory_mode;
mod nvm;
mod profile;
mod ssd;
mod stats;

pub use cost::{AccessPattern, CostModel, TimeScale};
pub use dram::DramDevice;
pub use error::DeviceError;
pub use fault::{
    FaultInjector, FaultKind, FaultOp, FaultPlan, FaultRule, FaultStats, Trigger, MEDIA_BLOCK,
};
pub use file_ssd::FileSsdDevice;
pub use memory_mode::MemoryModeDevice;
pub use nvm::{NvmDevice, PersistenceTracking};
pub use profile::{DeviceKind, DeviceProfile};
pub use ssd::{SsdBackendConfig, SsdDevice};
pub use stats::{DeviceStats, StatsSnapshot};

/// Result alias used throughout the device crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// Size of one CPU cache line in bytes; the unit of `clwb` flushing.
pub const CACHE_LINE: usize = 64;
