//! Real-file SSD backend: pages live at `pid * page_size` in one flat
//! file, written through `pwrite`/`pread` with `O_DIRECT` when the
//! filesystem supports it.
//!
//! This is the "measure against real block-device behaviour" half of the
//! [`crate::SsdDevice`]: instead of the emulated arena plus cost model,
//! reads and writes hit an actual file descriptor, so miss-path and
//! write-back numbers reflect the kernel block layer (or the page cache,
//! when direct I/O is unavailable — tmpfs rejects `O_DIRECT` with
//! `EINVAL`, in which case the device transparently falls back to
//! buffered I/O and reports that via [`FileSsdDevice::is_direct`]).
//!
//! Durability semantics mirror the emulated device exactly, which is what
//! lets the chaos suite run unchanged: under
//! [`PersistenceTracking::Full`](crate::PersistenceTracking::Full) every
//! first write to a page since the last sync records an in-memory
//! pre-image, `sync` is a real `fdatasync` that discards the pre-images,
//! and `simulate_crash` rolls every un-synced page back to its pre-image
//! (removing pages that did not exist) — the file-backed analogue of the
//! arena's synced-image rollback. The fault injector stays layered in the
//! [`crate::SsdDevice`] wrapper, above this module, so torn writes and
//! dropped flushes behave identically on both backends.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::{FileExt, OpenOptionsExt};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::DeviceError;
use crate::Result;

/// `open(2)` flag requesting direct I/O; not in `std`, value from
/// `asm-generic/fcntl.h` (x86-64 and every Linux ABI this crate targets).
const O_DIRECT: i32 = 0x4000;

/// Alignment for direct-I/O transfer buffers. 4 KiB satisfies every
/// logical-block size in practice (512 and 4096).
const DIRECT_ALIGN: usize = 4096;

/// Monotonic suffix for auto-generated backing-file names, so concurrent
/// devices in one process (tests, benches) never collide.
static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A page-size transfer buffer aligned for `O_DIRECT`.
struct AlignedBuf {
    ptr: *mut u8,
    layout: Layout,
}

impl AlignedBuf {
    fn new(len: usize) -> Self {
        let layout = Layout::from_size_align(len.max(1), DIRECT_ALIGN).expect("valid layout");
        // SAFETY: layout has non-zero size (len.max(1)) and a valid
        // power-of-two alignment; the pointer is checked for null below.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "aligned page buffer allocation failed");
        AlignedBuf { ptr, layout }
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: ptr is a live allocation of layout.size() bytes owned by
        // self; the lifetime is tied to &self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.layout.size()) }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above, with exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.layout.size()) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // SAFETY: ptr was returned by alloc_zeroed with exactly this layout.
        unsafe { dealloc(self.ptr, self.layout) };
    }
}

// SAFETY: AlignedBuf owns its allocation exclusively; sending it to
// another thread transfers that ownership like a Vec<u8>.
unsafe impl Send for AlignedBuf {}

/// Page bookkeeping for the backing file, all behind one mutex: which
/// pages exist (the file itself cannot distinguish "never written" from
/// "written zeros"), which are dirty since the last sync, and — under
/// full persistence tracking — the pre-image each un-synced page had at
/// its first write since the last sync.
struct FileState {
    present: HashSet<u64>,
    dirty: HashSet<u64>,
    /// `pid -> pre-image` for crash rollback; `None` = page did not exist.
    /// Populated only when `durable` is set.
    undo: HashMap<u64, Option<Box<[u8]>>>,
    /// Reusable aligned scratch buffers (one page each).
    scratch: Vec<AlignedBuf>,
}

/// File-backed page store with direct I/O. See the module docs; normally
/// reached through [`crate::SsdDevice`] with
/// [`crate::SsdBackendConfig::File`], which layers fault injection, cost
/// accounting, and stats on top.
pub struct FileSsdDevice {
    file: File,
    path: PathBuf,
    unlink_on_drop: bool,
    page_size: usize,
    direct: bool,
    durable: bool,
    state: Mutex<FileState>,
}

fn io_err(op: &'static str, e: &io::Error) -> DeviceError {
    DeviceError::Io {
        op,
        message: e.to_string(),
    }
}

impl FileSsdDevice {
    /// Open (or create) the backing file. With `path = None` a unique
    /// temporary file is created and unlinked when the device drops; an
    /// explicit path is left in place. `durable` enables the pre-image
    /// undo log that makes [`FileSsdDevice::simulate_crash`] meaningful.
    ///
    /// `O_DIRECT` is attempted whenever `page_size` is a multiple of 512;
    /// filesystems that reject it (tmpfs) fall back to buffered I/O.
    pub fn new(page_size: usize, path: Option<PathBuf>, durable: bool) -> Result<Self> {
        assert!(page_size > 0, "page size must be non-zero");
        let unlink_on_drop = path.is_none();
        let path = path.unwrap_or_else(|| {
            // relaxed: the counter only needs uniqueness, not ordering.
            let seq = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("spitfire-ssd-{}-{seq}.img", std::process::id()))
        });
        let mut direct = page_size.is_multiple_of(512);
        let open = |flags: i32| {
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(unlink_on_drop)
                .custom_flags(flags)
                .open(&path)
        };
        let file = if direct {
            match open(O_DIRECT) {
                Ok(f) => f,
                Err(_) => {
                    // tmpfs and friends reject O_DIRECT at open time.
                    direct = false;
                    open(0).map_err(|e| io_err("open", &e))?
                }
            }
        } else {
            open(0).map_err(|e| io_err("open", &e))?
        };
        // An explicit pre-existing file is adopted: every page slot up to
        // its length is considered present (holes read as zeros).
        let mut present = HashSet::new();
        if !unlink_on_drop {
            let len = file.metadata().map_err(|e| io_err("open", &e))?.len();
            present.extend(0..len / page_size as u64);
        }
        Ok(FileSsdDevice {
            file,
            path,
            unlink_on_drop,
            page_size,
            direct,
            durable,
            state: Mutex::new(FileState {
                present,
                dirty: HashSet::new(),
                undo: HashMap::new(),
                scratch: Vec::new(),
            }),
        })
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Whether the file is open with `O_DIRECT` (false after the buffered
    /// fallback on filesystems without direct-I/O support).
    pub fn is_direct(&self) -> bool {
        self.direct
    }

    /// The backing file's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn take_scratch(&self, st: &mut FileState) -> AlignedBuf {
        st.scratch
            .pop()
            .unwrap_or_else(|| AlignedBuf::new(self.page_size))
    }

    fn read_into(&self, pid: u64, out: &mut [u8], st: &mut FileState) -> Result<()> {
        let off = pid * self.page_size as u64;
        if self.direct {
            let mut scratch = self.take_scratch(st);
            let res = self.file.read_exact_at(scratch.as_mut_slice(), off);
            out.copy_from_slice(scratch.as_slice());
            st.scratch.push(scratch);
            res.map_err(|e| io_err("read", &e))?;
        } else {
            self.file
                .read_exact_at(out, off)
                .map_err(|e| io_err("read", &e))?;
        }
        Ok(())
    }

    fn write_full(&self, pid: u64, data: &[u8], st: &mut FileState) -> Result<()> {
        debug_assert_eq!(data.len(), self.page_size);
        let off = pid * self.page_size as u64;
        if self.direct {
            let mut scratch = self.take_scratch(st);
            scratch.as_mut_slice().copy_from_slice(data);
            let res = self.file.write_all_at(scratch.as_slice(), off);
            st.scratch.push(scratch);
            res.map_err(|e| io_err("write", &e))?;
        } else {
            self.file
                .write_all_at(data, off)
                .map_err(|e| io_err("write", &e))?;
        }
        Ok(())
    }

    /// Read page `pid` into `buf` (exactly one page).
    pub fn read_page(&self, pid: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: buf.len(),
            });
        }
        let mut st = self.state.lock();
        if !st.present.contains(&pid) {
            return Err(DeviceError::PageNotFound(pid));
        }
        self.read_into(pid, buf, &mut st)
    }

    /// Write `data[..keep]` as page `pid` (`keep < page_size` models a
    /// torn write: the old tail survives for an existing page, a fresh
    /// page gets a zero tail — identical to the emulated arena). The
    /// write is volatile until [`FileSsdDevice::sync`] when durability
    /// tracking is on.
    pub fn write_page(&self, pid: u64, data: &[u8], keep: usize) -> Result<()> {
        if data.len() != self.page_size {
            return Err(DeviceError::BadPageSize {
                expected: self.page_size,
                got: data.len(),
            });
        }
        let mut st = self.state.lock();
        let existed = st.present.contains(&pid);
        if self.durable && !st.undo.contains_key(&pid) {
            let pre = if existed {
                let mut img = vec![0u8; self.page_size].into_boxed_slice();
                self.read_into(pid, &mut img, &mut st)?;
                Some(img)
            } else {
                None
            };
            st.undo.insert(pid, pre);
        }
        if keep == self.page_size {
            self.write_full(pid, data, &mut st)?;
        } else {
            // Torn write: read-modify-write a full page so the file always
            // holds whole pages (direct I/O cannot issue sub-sector
            // writes anyway).
            let mut img = vec![0u8; self.page_size];
            if existed {
                self.read_into(pid, &mut img, &mut st)?;
            }
            img[..keep].copy_from_slice(&data[..keep]);
            self.write_full(pid, &img, &mut st)?;
        }
        st.present.insert(pid);
        st.dirty.insert(pid);
        Ok(())
    }

    /// Write a batch of pages, sorted by page id and with runs of
    /// *contiguous* ids coalesced into single multi-page submissions —
    /// the direct-I/O batching the maintenance and checkpoint write-back
    /// paths amortize their one fsync over. Returns the number of
    /// submissions issued (diagnostics; `<= pages.len()`).
    ///
    /// All-or-nothing per submission: an I/O error aborts the batch with
    /// pages up to the failure written. Callers that need per-page
    /// fault handling (injected faults) use [`FileSsdDevice::write_page`]
    /// per page instead; this path is for fault-free bulk submission.
    pub fn write_pages(&self, pages: &mut Vec<(u64, &[u8])>) -> Result<usize> {
        for (_, data) in pages.iter() {
            if data.len() != self.page_size {
                return Err(DeviceError::BadPageSize {
                    expected: self.page_size,
                    got: data.len(),
                });
            }
        }
        pages.sort_unstable_by_key(|(pid, _)| *pid);
        let mut st = self.state.lock();
        if self.durable {
            for (pid, _) in pages.iter() {
                if !st.undo.contains_key(pid) {
                    let pre = if st.present.contains(pid) {
                        let mut img = vec![0u8; self.page_size].into_boxed_slice();
                        self.read_into(*pid, &mut img, &mut st)?;
                        Some(img)
                    } else {
                        None
                    };
                    st.undo.insert(*pid, pre);
                }
            }
        }
        let mut submissions = 0usize;
        let mut i = 0;
        while i < pages.len() {
            // Extend the run while page ids stay contiguous.
            let mut j = i + 1;
            while j < pages.len() && pages[j].0 == pages[j - 1].0 + 1 {
                j += 1;
            }
            let run = &pages[i..j];
            let off = run[0].0 * self.page_size as u64;
            let mut buf = vec![0u8; run.len() * self.page_size];
            for (k, (_, data)) in run.iter().enumerate() {
                buf[k * self.page_size..(k + 1) * self.page_size].copy_from_slice(data);
            }
            if self.direct {
                // One aligned submission per run; runs are rarely longer
                // than the maintenance batch, so the copy is bounded.
                let layout = Layout::from_size_align(buf.len(), DIRECT_ALIGN).expect("layout");
                // SAFETY: non-zero size (runs are non-empty), power-of-two
                // alignment; null-checked below; deallocated before return.
                let ptr = unsafe { alloc_zeroed(layout) };
                assert!(!ptr.is_null(), "aligned batch buffer allocation failed");
                // SAFETY: ptr spans layout.size() == buf.len() bytes.
                let slice = unsafe { std::slice::from_raw_parts_mut(ptr, buf.len()) };
                slice.copy_from_slice(&buf);
                let res = self.file.write_all_at(slice, off);
                // SAFETY: allocated above with exactly this layout.
                unsafe { dealloc(ptr, layout) };
                res.map_err(|e| io_err("write", &e))?;
            } else {
                self.file
                    .write_all_at(&buf, off)
                    .map_err(|e| io_err("write", &e))?;
            }
            for (pid, _) in run {
                st.present.insert(*pid);
                st.dirty.insert(*pid);
            }
            submissions += 1;
            i = j;
        }
        Ok(submissions)
    }

    /// Durability barrier: `fdatasync` the file and discard the undo log
    /// (writes before this point survive [`FileSsdDevice::simulate_crash`]).
    /// Returns the number of bytes made durable by this sync.
    pub fn sync(&self) -> Result<usize> {
        self.file.sync_data().map_err(|e| io_err("sync", &e))?;
        let mut st = self.state.lock();
        let bytes = st.dirty.len() * self.page_size;
        st.dirty.clear();
        st.undo.clear();
        Ok(bytes)
    }

    /// Model power loss: roll every page written since the last sync back
    /// to its pre-image (pages that did not exist disappear). A no-op
    /// without durability tracking.
    pub fn simulate_crash(&self) {
        if !self.durable {
            return;
        }
        let mut st = self.state.lock();
        let undo = std::mem::take(&mut st.undo);
        for (pid, pre) in undo {
            match pre {
                Some(img) => {
                    // Rollback of an in-process simulation: failure to
                    // restore would be a harness I/O error, not a modelled
                    // crash outcome, so it is fatal.
                    self.write_full(pid, &img, &mut st)
                        .expect("crash-rollback write");
                }
                None => {
                    st.present.remove(&pid);
                }
            }
        }
        st.dirty.clear();
    }

    /// Whether page `pid` exists.
    pub fn contains(&self, pid: u64) -> bool {
        self.state.lock().present.contains(&pid)
    }

    /// Number of pages currently stored.
    pub fn page_count(&self) -> usize {
        self.state.lock().present.len()
    }

    /// Highest page id stored, if any.
    pub fn max_page_id(&self) -> Option<u64> {
        self.state.lock().present.iter().max().copied()
    }
}

impl Drop for FileSsdDevice {
    fn drop(&mut self) {
        if self.unlink_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl std::fmt::Debug for FileSsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSsdDevice")
            .field("path", &self.path)
            .field("page_size", &self.page_size)
            .field("direct", &self.direct)
            .field("pages", &self.page_count())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(durable: bool) -> FileSsdDevice {
        FileSsdDevice::new(4096, None, durable).expect("file ssd")
    }

    #[test]
    fn write_read_round_trip() {
        let d = dev(false);
        let page = vec![7u8; 4096];
        d.write_page(42, &page, 4096).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(42, &mut buf).unwrap();
        assert_eq!(buf, page);
        assert!(d.contains(42));
        assert!(!d.contains(43));
        assert_eq!(d.page_count(), 1);
        assert_eq!(d.max_page_id(), Some(42));
    }

    #[test]
    fn missing_page_is_an_error() {
        let d = dev(false);
        let mut buf = vec![0u8; 4096];
        assert_eq!(
            d.read_page(1, &mut buf).unwrap_err(),
            DeviceError::PageNotFound(1)
        );
    }

    #[test]
    fn torn_write_keeps_old_tail() {
        let d = dev(false);
        d.write_page(3, &vec![1u8; 4096], 4096).unwrap();
        d.write_page(3, &vec![2u8; 4096], 256).unwrap();
        let mut buf = vec![0u8; 4096];
        d.read_page(3, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
        assert_eq!(buf[255], 2);
        assert_eq!(buf[256], 1, "old tail survives a torn write");
        // Fresh page: zero tail.
        d.write_page(4, &vec![9u8; 4096], 128).unwrap();
        d.read_page(4, &mut buf).unwrap();
        assert_eq!(buf[127], 9);
        assert_eq!(buf[128], 0);
    }

    #[test]
    fn unsynced_writes_roll_back_on_crash() {
        let d = dev(true);
        d.write_page(1, &vec![1u8; 4096], 4096).unwrap();
        d.sync().unwrap();
        d.write_page(1, &vec![9u8; 4096], 4096).unwrap();
        d.write_page(2, &vec![2u8; 4096], 4096).unwrap();
        d.simulate_crash();
        let mut buf = vec![0u8; 4096];
        d.read_page(1, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "page 1 rolled back to synced image");
        assert_eq!(
            d.read_page(2, &mut buf).unwrap_err(),
            DeviceError::PageNotFound(2),
            "never-synced page vanishes"
        );
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn batch_coalesces_contiguous_runs() {
        let d = dev(false);
        let pages: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i + 1; 4096]).collect();
        // Out-of-order ids 7,5,6 plus isolated 10, 12: two runs + two singles.
        let mut batch: Vec<(u64, &[u8])> = vec![
            (7, &pages[0]),
            (5, &pages[1]),
            (10, &pages[2]),
            (6, &pages[3]),
            (12, &pages[4]),
        ];
        let submissions = d.write_pages(&mut batch).unwrap();
        assert_eq!(submissions, 3, "5..=7 coalesce; 10 and 12 stand alone");
        let mut buf = vec![0u8; 4096];
        d.read_page(5, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
        d.read_page(6, &mut buf).unwrap();
        assert_eq!(buf[0], 4);
        d.read_page(7, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        d.read_page(12, &mut buf).unwrap();
        assert_eq!(buf[0], 5);
        assert_eq!(d.page_count(), 5);
    }

    #[test]
    fn batch_writes_roll_back_on_crash() {
        let d = dev(true);
        d.write_page(5, &vec![1u8; 4096], 4096).unwrap();
        d.sync().unwrap();
        let new5 = vec![9u8; 4096];
        let new6 = vec![6u8; 4096];
        let mut batch: Vec<(u64, &[u8])> = vec![(5, &new5), (6, &new6)];
        d.write_pages(&mut batch).unwrap();
        d.simulate_crash();
        let mut buf = vec![0u8; 4096];
        d.read_page(5, &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        assert!(!d.contains(6));
    }

    #[test]
    fn explicit_path_survives_drop_and_reopen() {
        let path = std::env::temp_dir().join(format!(
            "spitfire-ssd-test-{}-{}.img",
            std::process::id(),
            line!()
        ));
        {
            let d = FileSsdDevice::new(4096, Some(path.clone()), false).unwrap();
            d.write_page(1, &vec![3u8; 4096], 4096).unwrap();
            d.sync().unwrap();
        }
        assert!(path.exists(), "explicit path is not unlinked on drop");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_reports_dirty_bytes() {
        let d = dev(true);
        d.write_page(1, &vec![1u8; 4096], 4096).unwrap();
        d.write_page(2, &vec![2u8; 4096], 4096).unwrap();
        assert_eq!(d.sync().unwrap(), 8192);
        assert_eq!(d.sync().unwrap(), 0);
    }
}
