//! Error type for device operations.

use std::fmt;

/// Errors raised by emulated devices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeviceError {
    /// An access touched bytes outside the device's capacity.
    OutOfBounds {
        /// Start offset of the offending access.
        offset: usize,
        /// Length of the offending access.
        len: usize,
        /// Device capacity in bytes.
        capacity: usize,
    },
    /// A page-granular device was asked for a page it does not hold.
    PageNotFound(u64),
    /// A transfer buffer did not match the device's page size.
    BadPageSize {
        /// Expected page size in bytes.
        expected: usize,
        /// Provided buffer length.
        got: usize,
    },
    /// A transient I/O error injected by the fault plane; retrying the
    /// same operation may succeed.
    InjectedTransient {
        /// Label of the intercepted entry point (`"read"`, `"write"`, ...).
        op: &'static str,
    },
    /// A fatal I/O error injected by the fault plane; retries cannot help
    /// and callers must surface it.
    InjectedFatal {
        /// Label of the intercepted entry point.
        op: &'static str,
    },
    /// A real operating-system I/O error from a file-backed device.
    Io {
        /// Label of the failing entry point (`"open"`, `"read"`, ...).
        op: &'static str,
        /// The OS error rendered as text.
        message: String,
    },
}

impl DeviceError {
    /// Whether retrying the failed operation may succeed. Transient
    /// injected faults are retryable; everything else (bounds/contract
    /// violations, missing pages, fatal media errors) is not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, DeviceError::InjectedTransient { .. })
    }

    /// Whether this error came from the fault-injection plane.
    pub fn is_injected(&self) -> bool {
        matches!(
            self,
            DeviceError::InjectedTransient { .. } | DeviceError::InjectedFatal { .. }
        )
    }
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for device of {capacity} bytes",
                offset + len
            ),
            DeviceError::PageNotFound(pid) => write!(f, "page {pid} not present on device"),
            DeviceError::BadPageSize { expected, got } => {
                write!(
                    f,
                    "buffer of {got} bytes does not match page size {expected}"
                )
            }
            DeviceError::InjectedTransient { op } => {
                write!(f, "injected transient I/O error during {op}")
            }
            DeviceError::InjectedFatal { op } => {
                write!(f, "injected fatal I/O error during {op}")
            }
            DeviceError::Io { op, message } => {
                write!(f, "I/O error during {op}: {message}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DeviceError::OutOfBounds {
            offset: 10,
            len: 5,
            capacity: 12,
        };
        assert_eq!(
            e.to_string(),
            "access [10, 15) out of bounds for device of 12 bytes"
        );
        assert_eq!(
            DeviceError::PageNotFound(7).to_string(),
            "page 7 not present on device"
        );
    }

    #[test]
    fn retryability_taxonomy() {
        let transient = DeviceError::InjectedTransient { op: "read" };
        let fatal = DeviceError::InjectedFatal { op: "write" };
        assert!(transient.is_retryable() && transient.is_injected());
        assert!(!fatal.is_retryable() && fatal.is_injected());
        assert!(!DeviceError::PageNotFound(1).is_retryable());
        assert!(!DeviceError::PageNotFound(1).is_injected());
        assert_eq!(
            transient.to_string(),
            "injected transient I/O error during read"
        );
    }
}
