//! Emulated NVM (Optane DC PMM): byte-addressable, persistent, with
//! `clwb`/`sfence` semantics and crash simulation.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cost::{AccessPattern, CostModel, TimeScale};
use crate::dram::Arena;
use crate::fault::{FaultInjector, FaultOp, Outcome};
use crate::profile::{DeviceKind, DeviceProfile};
use crate::stats::DeviceStats;
use crate::{Result, CACHE_LINE};

/// How much persistence bookkeeping the device performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistenceTracking {
    /// Only count flushed bytes and fences. Writes are treated as durable
    /// immediately. Use for performance experiments where crash simulation
    /// is not needed.
    Counters,
    /// Maintain a full shadow copy of the persisted image so that
    /// [`NvmDevice::simulate_crash`] can discard un-persisted writes. Use
    /// for recovery tests. Doubles the device's memory footprint.
    Full,
}

/// Ranges `clwb`-ed but not yet ordered by an `sfence`.
struct PersistDomain {
    /// Last successfully persisted image of the arena.
    image: Mutex<Box<[u8]>>,
    /// Cache-line-aligned ranges staged by `clwb`, committed by `sfence`.
    pending: Mutex<Vec<(usize, usize)>>,
}

/// Emulated Optane DC PMM.
///
/// Exposes load/store-style range access (the app-direct `mmap` interface
/// from paper §2.2) plus the persistence primitives the paper's recovery
/// protocol builds on:
///
/// * [`NvmDevice::clwb`] stages a cache-line range for write-back;
/// * [`NvmDevice::sfence`] commits every staged range to the persistent
///   image;
/// * [`NvmDevice::simulate_crash`] rolls the device content back to the
///   persistent image, modelling power loss.
///
/// Under [`PersistenceTracking::Counters`] the staging machinery is skipped
/// and writes are durable immediately (counters are still maintained).
pub struct NvmDevice {
    arena: Arena,
    domain: Option<PersistDomain>,
    cost: CostModel,
    stats: Arc<DeviceStats>,
    injector: RwLock<Option<Arc<FaultInjector>>>,
}

impl NvmDevice {
    /// An NVM device of `capacity` bytes with Table 1 Optane characteristics.
    pub fn new(capacity: usize, scale: TimeScale, tracking: PersistenceTracking) -> Self {
        Self::with_profile(capacity, DeviceProfile::optane_pmm(), scale, tracking)
    }

    /// An NVM device with a custom profile.
    pub fn with_profile(
        capacity: usize,
        profile: DeviceProfile,
        scale: TimeScale,
        tracking: PersistenceTracking,
    ) -> Self {
        let domain = match tracking {
            PersistenceTracking::Counters => None,
            PersistenceTracking::Full => Some(PersistDomain {
                image: Mutex::new(vec![0u8; capacity].into_boxed_slice()),
                pending: Mutex::new(Vec::new()),
            }),
        };
        NvmDevice {
            arena: Arena::new(capacity),
            domain,
            cost: CostModel::new(profile, scale),
            stats: Arc::new(DeviceStats::new()),
            injector: RwLock::new(None),
        }
    }

    /// Attach (or detach with `None`) a chaos fault injector; every
    /// subsequent read/write/clwb/sfence consults it first.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.write() = injector;
    }

    fn fault(&self, op: FaultOp, offset: usize, len: usize) -> Outcome {
        match &*self.injector.read() {
            Some(inj) => inj.decide(DeviceKind::Nvm, op, offset as u64, len),
            None => Outcome::Proceed,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Shared handle to this device's counters.
    pub fn stats(&self) -> Arc<DeviceStats> {
        Arc::clone(&self.stats)
    }

    /// The device profile in effect.
    pub fn profile(&self) -> &DeviceProfile {
        self.cost.profile()
    }

    /// Change the emulated-delay scale.
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.cost.set_scale(scale);
    }

    /// Read `buf.len()` bytes starting at `offset`.
    ///
    /// Charged at the device's media granularity (256 B for Optane), which is
    /// why sub-granule reads do not save bandwidth (paper §6.5, Figure 11).
    pub fn read(&self, offset: usize, buf: &mut [u8], pattern: AccessPattern) -> Result<()> {
        if let Outcome::Fail(e) = self.fault(FaultOp::Read, offset, buf.len()) {
            return Err(e);
        }
        self.arena.read(offset, buf)?;
        let eff = self.cost.charge_read(buf.len(), pattern);
        self.stats.record_read(eff);
        Ok(())
    }

    /// Write `data` starting at `offset`. The write is *not* persistent
    /// until `clwb` + `sfence` under [`PersistenceTracking::Full`].
    ///
    /// A torn-write fault stores only a prefix of complete
    /// [`crate::MEDIA_BLOCK`]s while still reporting success, modelling a
    /// media write interrupted mid-line.
    pub fn write(&self, offset: usize, data: &[u8], pattern: AccessPattern) -> Result<()> {
        let data = match self.fault(FaultOp::Write, offset, data.len()) {
            Outcome::Fail(e) => return Err(e),
            Outcome::Truncate(keep) => &data[..keep],
            Outcome::Proceed | Outcome::Drop => data,
        };
        self.arena.write(offset, data)?;
        let eff = self.cost.charge_write(data.len(), pattern);
        self.stats.record_write(eff);
        Ok(())
    }

    /// Stage the cache lines covering `[offset, offset + len)` for
    /// write-back (emulated `clwb`). Non-blocking, unordered: the data is
    /// only guaranteed durable after the next [`NvmDevice::sfence`].
    pub fn clwb(&self, offset: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        match self.fault(FaultOp::Clwb, offset, len) {
            Outcome::Fail(e) => return Err(e),
            // Silently dropped flush: the caller believes the lines were
            // written back, but nothing is staged for persistence.
            Outcome::Drop => return Ok(()),
            Outcome::Proceed | Outcome::Truncate(_) => {}
        }
        let start = offset - offset % CACHE_LINE;
        let end = (offset + len).div_ceil(CACHE_LINE) * CACHE_LINE;
        let end = end.min(self.arena.capacity());
        if start >= end {
            return Ok(());
        }
        self.stats.record_flush(end - start);
        if let Some(domain) = &self.domain {
            domain.pending.lock().push((start, end - start));
        }
        Ok(())
    }

    /// Commit every staged cache-line range to the persistent image
    /// (emulated `sfence` ordering all preceding `clwb`s).
    pub fn sfence(&self) {
        self.stats.record_fence();
        // Only an explicitly injected dropped flush defeats the fence
        // (modelling a missing ordering barrier): it leaves the staged
        // ranges pending, so a later fence may still commit them. Generic
        // error faults are ignored here — `sfence` is an ordering
        // instruction with no failure mode, and silently skipping the
        // commit on a `Fail` outcome would let an "absorbable" transient
        // fault violate durability with no error the caller could retry.
        if matches!(self.fault(FaultOp::Sfence, 0, 0), Outcome::Drop) {
            return;
        }
        let Some(domain) = &self.domain else { return };
        let drained: Vec<(usize, usize)> = std::mem::take(&mut *domain.pending.lock());
        if drained.is_empty() {
            return;
        }
        let mut image = domain.image.lock();
        for (off, len) in drained {
            // Copy the current arena content for the flushed range into the
            // persisted image. (Hardware persists the content at write-back
            // time, which lies between clwb and sfence; committing at sfence
            // is within that window.)
            self.arena
                .read(off, &mut image[off..off + len])
                .expect("pending range was validated by clwb");
        }
    }

    /// Convenience: `clwb` the range then `sfence`.
    pub fn persist(&self, offset: usize, len: usize) -> Result<()> {
        self.clwb(offset, len)?;
        self.sfence();
        Ok(())
    }

    /// Model power loss: discard every write that was not persisted.
    ///
    /// Only meaningful under [`PersistenceTracking::Full`]; a no-op
    /// otherwise. After this call the device content equals the persistent
    /// image (staged-but-unfenced ranges are also discarded).
    pub fn simulate_crash(&self) {
        let Some(domain) = &self.domain else { return };
        domain.pending.lock().clear();
        let image = domain.image.lock();
        self.arena
            .write(0, &image)
            .expect("image length equals capacity");
    }
}

impl std::fmt::Debug for NvmDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvmDevice")
            .field("capacity", &self.capacity())
            .field("tracking", &self.domain.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev(tracking: PersistenceTracking) -> NvmDevice {
        NvmDevice::new(4096, TimeScale::ZERO, tracking)
    }

    #[test]
    fn unpersisted_writes_are_lost_on_crash() {
        let d = dev(PersistenceTracking::Full);
        d.write(128, b"volatile", AccessPattern::Random).unwrap();
        d.simulate_crash();
        let mut buf = [0xAAu8; 8];
        d.read(128, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn persisted_writes_survive_crash() {
        let d = dev(PersistenceTracking::Full);
        d.write(128, b"durable!", AccessPattern::Random).unwrap();
        d.persist(128, 8).unwrap();
        d.write(512, b"volatile", AccessPattern::Random).unwrap();
        d.simulate_crash();
        let mut buf = [0u8; 8];
        d.read(128, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"durable!");
        d.read(512, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn clwb_without_sfence_is_not_durable() {
        let d = dev(PersistenceTracking::Full);
        d.write(0, b"staged", AccessPattern::Random).unwrap();
        d.clwb(0, 6).unwrap();
        d.simulate_crash();
        let mut buf = [0u8; 6];
        d.read(0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(buf, [0u8; 6]);
    }

    #[test]
    fn clwb_rounds_to_cache_lines() {
        let d = dev(PersistenceTracking::Full);
        d.write(100, b"x", AccessPattern::Random).unwrap();
        d.clwb(100, 1).unwrap();
        // One whole cache line (64 B) is flushed.
        assert_eq!(d.stats().snapshot().bytes_flushed, 64);
    }

    #[test]
    fn counters_mode_treats_writes_as_durable() {
        let d = dev(PersistenceTracking::Counters);
        d.write(0, b"data", AccessPattern::Random).unwrap();
        d.simulate_crash();
        let mut buf = [0u8; 4];
        d.read(0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn effective_read_granularity_is_256b() {
        let d = dev(PersistenceTracking::Counters);
        let mut buf = [0u8; 64];
        d.read(0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(d.stats().snapshot().bytes_read, 256);
    }

    #[test]
    fn persist_at_capacity_boundary() {
        let d = dev(PersistenceTracking::Full);
        d.write(4090, b"end", AccessPattern::Random).unwrap();
        d.persist(4090, 3).unwrap();
        d.simulate_crash();
        let mut buf = [0u8; 3];
        d.read(4090, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"end");
    }
}
