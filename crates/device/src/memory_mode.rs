//! Memory-mode emulation: DRAM as a hardware-managed direct-mapped
//! write-back cache in front of NVM (paper §2.2, evaluated in Figure 5).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::{AccessPattern, CostModel, TimeScale};
use crate::dram::Arena;
use crate::profile::DeviceProfile;
use crate::stats::DeviceStats;
use crate::Result;

/// Cache block size used by the memory-mode model.
///
/// Real memory-mode caches at 64 B granularity; we model at 4 KB blocks to
/// keep tag storage negligible. Hit/miss behaviour at buffer-manager page
/// granularity is unaffected because pages (16 KB) span whole blocks either
/// way.
pub const MEMORY_MODE_BLOCK: usize = 4096;

/// Tag word layout: bit 63 = valid, bit 62 = dirty, low 62 bits = NVM block
/// index resident in this cache slot.
const TAG_VALID: u64 = 1 << 63;
const TAG_DIRTY: u64 = 1 << 62;
const TAG_INDEX: u64 = (1 << 62) - 1;

/// DRAM-cached NVM, as configured by Optane "memory mode".
///
/// The data lives in a single NVM-capacity arena; the DRAM cache is a *cost*
/// model (direct-mapped tags) that decides whether each block access is
/// charged at DRAM or NVM speed, including dirty-victim write-back traffic.
/// This reproduces the two properties Figure 5 turns on: capacity equal to
/// NVM, and DRAM-speed only while the working set fits the DRAM cache.
pub struct MemoryModeDevice {
    arena: Arena,
    tags: Vec<AtomicU64>,
    dram_cost: CostModel,
    nvm_cost: CostModel,
    stats: Arc<DeviceStats>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoryModeDevice {
    /// A memory-mode device with `nvm_capacity` bytes of (NVM) capacity and
    /// a `dram_capacity`-byte direct-mapped DRAM cache.
    pub fn new(nvm_capacity: usize, dram_capacity: usize, scale: TimeScale) -> Self {
        let slots = (dram_capacity / MEMORY_MODE_BLOCK).max(1);
        MemoryModeDevice {
            arena: Arena::new(nvm_capacity),
            tags: (0..slots).map(|_| AtomicU64::new(0)).collect(),
            dram_cost: CostModel::new(DeviceProfile::dram(), scale),
            nvm_cost: CostModel::new(DeviceProfile::optane_pmm(), scale),
            stats: Arc::new(DeviceStats::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Capacity in bytes (the NVM capacity; DRAM is invisible in this mode).
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Shared handle to this device's counters.
    pub fn stats(&self) -> Arc<DeviceStats> {
        Arc::clone(&self.stats)
    }

    /// DRAM-cache hits since creation.
    pub fn cache_hits(&self) -> u64 {
        // relaxed: advisory statistic.
        self.hits.load(Ordering::Relaxed)
    }

    /// DRAM-cache misses since creation.
    pub fn cache_misses(&self) -> u64 {
        // relaxed: advisory statistic.
        self.misses.load(Ordering::Relaxed)
    }

    /// Change the emulated-delay scale on both underlying cost models.
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.dram_cost.set_scale(scale);
        self.nvm_cost.set_scale(scale);
    }

    /// Probe the cache for the block containing `offset`, charging the
    /// appropriate device(s). `write` marks the block dirty.
    fn touch_block(&self, offset: usize, write: bool) {
        let block = (offset / MEMORY_MODE_BLOCK) as u64;
        let slot = (block as usize) % self.tags.len();
        let tag = &self.tags[slot];
        let dirty_flag = if write { TAG_DIRTY } else { 0 };
        let desired = TAG_VALID | dirty_flag | (block & TAG_INDEX);

        // relaxed: tags are an emulated-cache hit/miss model; they gate accounting, never real data.
        let old = tag.load(Ordering::Relaxed);
        let hit = old & TAG_VALID != 0 && old & TAG_INDEX == block & TAG_INDEX;
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            tag.store(old | desired, Ordering::Relaxed);
            return;
        }
        // relaxed: miss statistic.
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Write back a dirty victim at NVM write speed.
        if old & TAG_VALID != 0 && old & TAG_DIRTY != 0 {
            let eff = self
                .nvm_cost
                .charge_write(MEMORY_MODE_BLOCK, AccessPattern::Random);
            self.stats.record_write(eff);
        }
        // Fill from NVM.
        let eff = self
            .nvm_cost
            .charge_read(MEMORY_MODE_BLOCK, AccessPattern::Random);
        self.stats.record_read(eff);
        // relaxed: tag update for the emulation model (see the hit-check above).
        tag.store(desired, Ordering::Relaxed);
    }

    fn charge(&self, offset: usize, len: usize, write: bool, pattern: AccessPattern) {
        if len == 0 {
            return;
        }
        let first = offset / MEMORY_MODE_BLOCK;
        let last = (offset + len - 1) / MEMORY_MODE_BLOCK;
        for block in first..=last {
            self.touch_block(block * MEMORY_MODE_BLOCK, write);
        }
        // The CPU-side transfer itself always runs at DRAM speed once the
        // block is cached.
        if write {
            self.dram_cost.charge_write(len, pattern);
        } else {
            self.dram_cost.charge_read(len, pattern);
        }
    }

    /// Read `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: usize, buf: &mut [u8], pattern: AccessPattern) -> Result<()> {
        self.arena.read(offset, buf)?;
        self.charge(offset, buf.len(), false, pattern);
        Ok(())
    }

    /// Write `data` starting at `offset`.
    ///
    /// Memory mode presents the whole device as *volatile* (paper §2.2): the
    /// DBMS cannot rely on these writes surviving a crash, so no persistence
    /// primitives are offered.
    pub fn write(&self, offset: usize, data: &[u8], pattern: AccessPattern) -> Result<()> {
        self.arena.write(offset, data)?;
        self.charge(offset, data.len(), true, pattern);
        Ok(())
    }
}

impl std::fmt::Debug for MemoryModeDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryModeDevice")
            .field("capacity", &self.capacity())
            .field("cache_slots", &self.tags.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let d = MemoryModeDevice::new(64 * 1024, 16 * 1024, TimeScale::ZERO);
        d.write(5000, b"memmode", AccessPattern::Random).unwrap();
        let mut buf = [0u8; 7];
        d.read(5000, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"memmode");
    }

    #[test]
    fn repeated_access_hits_cache() {
        let d = MemoryModeDevice::new(64 * 1024, 16 * 1024, TimeScale::ZERO);
        let mut buf = [0u8; 8];
        d.read(0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(d.cache_misses(), 1);
        d.read(8, &mut buf, AccessPattern::Random).unwrap();
        d.read(16, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(d.cache_hits(), 2);
        assert_eq!(d.cache_misses(), 1);
    }

    #[test]
    fn conflicting_blocks_evict_each_other() {
        // 1-slot cache: two blocks that map to the same slot thrash.
        let d = MemoryModeDevice::new(16 * MEMORY_MODE_BLOCK, MEMORY_MODE_BLOCK, TimeScale::ZERO);
        let mut buf = [0u8; 1];
        d.read(0, &mut buf, AccessPattern::Random).unwrap();
        d.read(MEMORY_MODE_BLOCK, &mut buf, AccessPattern::Random)
            .unwrap();
        d.read(0, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(d.cache_misses(), 3);
        assert_eq!(d.cache_hits(), 0);
    }

    #[test]
    fn dirty_victim_causes_writeback_traffic() {
        let d = MemoryModeDevice::new(16 * MEMORY_MODE_BLOCK, MEMORY_MODE_BLOCK, TimeScale::ZERO);
        d.write(0, &[1u8; 16], AccessPattern::Random).unwrap();
        let before = d.stats().snapshot().bytes_written;
        let mut buf = [0u8; 1];
        // Evicting the dirty block writes it back to NVM.
        d.read(MEMORY_MODE_BLOCK, &mut buf, AccessPattern::Random)
            .unwrap();
        let after = d.stats().snapshot().bytes_written;
        assert_eq!(after - before, MEMORY_MODE_BLOCK as u64);
    }

    #[test]
    fn spanning_access_touches_every_block() {
        let d = MemoryModeDevice::new(64 * 1024, 64 * 1024, TimeScale::ZERO);
        let mut buf = vec![0u8; 2 * MEMORY_MODE_BLOCK];
        d.read(0, &mut buf, AccessPattern::Sequential).unwrap();
        assert_eq!(d.cache_misses(), 2);
    }
}
