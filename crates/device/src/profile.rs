//! Device performance profiles seeded from Table 1 of the Spitfire paper.

use serde::{Deserialize, Serialize};

/// Which storage tier a device belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Volatile byte-addressable memory (tier 1).
    Dram,
    /// Non-volatile byte-addressable memory, e.g. Optane DC PMM (tier 2).
    Nvm,
    /// Block-addressable flash storage (tier 3).
    Ssd,
}

impl DeviceKind {
    /// Short lowercase label used in metrics and experiment output.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Dram => "dram",
            DeviceKind::Nvm => "nvm",
            DeviceKind::Ssd => "ssd",
        }
    }
}

/// Performance and cost characteristics of one device.
///
/// Default constructors ([`DeviceProfile::dram`], [`DeviceProfile::optane_pmm`],
/// [`DeviceProfile::optane_ssd`]) reproduce Table 1 of the paper: Optane DC
/// PMMs (6 modules) and an Optane DC P4800X SSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Which tier this profile describes.
    pub kind: DeviceKind,
    /// Idle sequential read latency in nanoseconds.
    pub seq_read_latency_ns: u64,
    /// Idle random read latency in nanoseconds.
    pub rand_read_latency_ns: u64,
    /// Write latency in nanoseconds (Table 1 does not report write latency
    /// separately; we follow the common approximation of using the random
    /// read latency for DRAM/NVM and the read latency for SSD).
    pub write_latency_ns: u64,
    /// Sequential read bandwidth in bytes per second.
    pub seq_read_bw: u64,
    /// Random read bandwidth in bytes per second.
    pub rand_read_bw: u64,
    /// Sequential write bandwidth in bytes per second.
    pub seq_write_bw: u64,
    /// Random write bandwidth in bytes per second.
    pub rand_write_bw: u64,
    /// Media access granularity in bytes: transfers are rounded up to a
    /// multiple of this (64 B for DRAM, 256 B for Optane PMMs, 16 KB for SSD).
    pub access_granularity: usize,
    /// Price in dollars per gigabyte (used by the Figure 14 grid search).
    pub price_per_gb: f64,
    /// Whether writes survive power loss.
    pub persistent: bool,
}

const GB: u64 = 1_000_000_000;

impl DeviceProfile {
    /// DRAM profile from Table 1 (six DDR4 modules, one socket).
    pub fn dram() -> Self {
        DeviceProfile {
            kind: DeviceKind::Dram,
            seq_read_latency_ns: 75,
            rand_read_latency_ns: 80,
            write_latency_ns: 80,
            seq_read_bw: 180 * GB,
            rand_read_bw: 180 * GB,
            seq_write_bw: 180 * GB,
            rand_write_bw: 180 * GB,
            access_granularity: 64,
            price_per_gb: 10.0,
            persistent: false,
        }
    }

    /// Optane DC PMM profile from Table 1 (six modules, one socket).
    pub fn optane_pmm() -> Self {
        DeviceProfile {
            kind: DeviceKind::Nvm,
            seq_read_latency_ns: 170,
            rand_read_latency_ns: 320,
            write_latency_ns: 320,
            seq_read_bw: 91_200_000_000,
            rand_read_bw: 28_800_000_000,
            seq_write_bw: 27_600_000_000,
            rand_write_bw: 6 * GB,
            access_granularity: 256,
            price_per_gb: 4.5,
            persistent: true,
        }
    }

    /// Optane DC P4800X SSD profile from Table 1.
    pub fn optane_ssd() -> Self {
        DeviceProfile {
            kind: DeviceKind::Ssd,
            seq_read_latency_ns: 10_000,
            rand_read_latency_ns: 12_000,
            write_latency_ns: 12_000,
            seq_read_bw: 2_600_000_000,
            rand_read_bw: 2_400_000_000,
            seq_write_bw: 2_400_000_000,
            rand_write_bw: 2_300_000_000,
            access_granularity: 16 * 1024,
            price_per_gb: 2.8,
            persistent: true,
        }
    }

    /// Profile for the given tier with Table 1 defaults.
    pub fn for_kind(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::Dram => Self::dram(),
            DeviceKind::Nvm => Self::optane_pmm(),
            DeviceKind::Ssd => Self::optane_ssd(),
        }
    }

    /// Dollar cost of `bytes` capacity on this device.
    pub fn cost_of(&self, bytes: u64) -> f64 {
        self.price_per_gb * bytes as f64 / GB as f64
    }

    /// Round `bytes` up to a whole number of media access units.
    ///
    /// A 64 B read from an Optane PMM still transfers 256 B at the media
    /// level; this mismatch is the reason cache-line-grained loading does not
    /// pay off on real PMMs (paper §6.5, Figure 11).
    pub fn effective_transfer(&self, bytes: usize) -> usize {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.access_granularity) * self.access_granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_round_trip() {
        let dram = DeviceProfile::dram();
        assert_eq!(dram.rand_read_latency_ns, 80);
        assert!(!dram.persistent);

        let nvm = DeviceProfile::optane_pmm();
        assert_eq!(nvm.access_granularity, 256);
        assert_eq!(nvm.rand_write_bw, 6 * GB);
        assert!(nvm.persistent);

        let ssd = DeviceProfile::optane_ssd();
        assert_eq!(ssd.access_granularity, 16 * 1024);
        assert!(ssd.persistent);
    }

    #[test]
    fn effective_transfer_rounds_to_granularity() {
        let nvm = DeviceProfile::optane_pmm();
        assert_eq!(nvm.effective_transfer(0), 0);
        assert_eq!(nvm.effective_transfer(1), 256);
        assert_eq!(nvm.effective_transfer(256), 256);
        assert_eq!(nvm.effective_transfer(257), 512);
        let ssd = DeviceProfile::optane_ssd();
        assert_eq!(ssd.effective_transfer(100), 16 * 1024);
    }

    #[test]
    fn price_ordering_matches_paper() {
        // Table 1: DRAM ($10/GB) > NVM ($4.5/GB) > SSD ($2.8/GB).
        let d = DeviceProfile::dram().price_per_gb;
        let n = DeviceProfile::optane_pmm().price_per_gb;
        let s = DeviceProfile::optane_ssd().price_per_gb;
        assert!(d > n && n > s);
    }

    #[test]
    fn cost_of_scales_linearly() {
        let nvm = DeviceProfile::optane_pmm();
        let one_gb = nvm.cost_of(GB);
        assert!((one_gb - 4.5).abs() < 1e-9);
        assert!((nvm.cost_of(2 * GB) - 9.0).abs() < 1e-9);
    }
}
