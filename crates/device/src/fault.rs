//! Deterministic fault-injection plane for the emulated devices.
//!
//! A [`FaultPlan`] is a seeded list of [`FaultRule`]s. Compiling it into a
//! [`FaultInjector`] and attaching that injector to a device (see
//! `set_fault_injector` on [`crate::DramDevice`], [`crate::NvmDevice`] and
//! [`crate::SsdDevice`]) makes every read/write/flush path consult
//! [`FaultInjector::decide`] before touching the backing store. Rules can
//! inject transient or fatal I/O errors, latency spikes, torn writes at
//! [`MEDIA_BLOCK`] granularity, and silently-dropped flushes, triggered by
//! seeded-RNG probability, nth-op counters, or device/op/offset predicates.
//!
//! Determinism contract: each rule owns its own splitmix64 stream derived
//! from the plan seed, and its own match counter. A single-threaded caller
//! issuing the same operation sequence against two injectors built from the
//! same plan observes byte-identical fault sequences.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spitfire_obs::{record_op, Op};

use crate::error::DeviceError;
use crate::profile::DeviceKind;

/// NVM media write granularity: torn writes persist a prefix of complete
/// 256 B blocks (§5 of the paper models persistence at cache-line/media
/// granularity; 256 B matches Optane's internal write unit).
pub const MEDIA_BLOCK: usize = 256;

/// The device entry points the injector can intercept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A read (`DramDevice::read`, `NvmDevice::read`, `SsdDevice::read_page`).
    Read,
    /// A write (`write`, `write_page`, `append_page`).
    Write,
    /// An `NvmDevice::clwb` cache-line write-back.
    Clwb,
    /// An `NvmDevice::sfence` persistence barrier.
    Sfence,
    /// An `SsdDevice::sync` durability barrier.
    Sync,
}

impl FaultOp {
    /// Stable lowercase label for logs and error messages.
    pub const fn label(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Clwb => "clwb",
            FaultOp::Sfence => "sfence",
            FaultOp::Sync => "sync",
        }
    }
}

/// What a firing rule does to the intercepted operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail with [`DeviceError::InjectedTransient`] (retryable).
    Transient,
    /// Fail with [`DeviceError::InjectedFatal`] (not retryable).
    Fatal,
    /// Sleep the given number of microseconds, then proceed normally.
    LatencyUs(u64),
    /// Persist only a prefix of complete [`MEDIA_BLOCK`]s of the write;
    /// the tail is lost without any error being reported.
    TornWrite,
    /// Silently skip the flush/fence/sync; the caller sees success but
    /// nothing was made durable.
    DropFlush,
}

/// When a matching rule actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on each match with this probability, drawn from the rule's
    /// seeded RNG stream (clamped to `[0, 1]`).
    Probability(f64),
    /// Fire exactly once, on the nth match (1-based).
    NthOp(u64),
    /// Fire on every nth match (1-based: n, 2n, 3n, ...).
    EveryNth(u64),
    /// Fire on every match.
    Always,
}

/// One fault rule: predicates (device, ops, offset range) + trigger + kind.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Restrict to one device kind (`None` = any device).
    pub device: Option<DeviceKind>,
    /// Restrict to these entry points (empty = any op).
    pub ops: Vec<FaultOp>,
    /// Restrict to operations whose byte offset lies in `[lo, hi)`.
    /// For `SsdDevice` page ops the offset is `page_id * page_size`.
    pub offset_range: Option<(u64, u64)>,
    /// When a matching operation fires the fault.
    pub trigger: Trigger,
    /// What happens when it fires.
    pub kind: FaultKind,
}

impl FaultRule {
    /// A rule matching every operation on every device.
    pub fn any(trigger: Trigger, kind: FaultKind) -> Self {
        FaultRule {
            device: None,
            ops: Vec::new(),
            offset_range: None,
            trigger,
            kind,
        }
    }

    /// Restrict the rule to one device kind.
    #[must_use]
    pub fn on_device(mut self, device: DeviceKind) -> Self {
        self.device = Some(device);
        self
    }

    /// Restrict the rule to one entry point (may be chained).
    #[must_use]
    pub fn on_op(mut self, op: FaultOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Restrict the rule to byte offsets in `[lo, hi)`.
    #[must_use]
    pub fn in_range(mut self, lo: u64, hi: u64) -> Self {
        self.offset_range = Some((lo, hi));
        self
    }

    fn matches(&self, device: DeviceKind, op: FaultOp, offset: u64) -> bool {
        if self.device.is_some_and(|d| d != device) {
            return false;
        }
        if !self.ops.is_empty() && !self.ops.contains(&op) {
            return false;
        }
        if let Some((lo, hi)) = self.offset_range {
            if offset < lo || offset >= hi {
                return false;
            }
        }
        true
    }
}

/// A seeded, declarative fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-rule RNG streams.
    pub seed: u64,
    /// Rules, checked in order; the first one that fires wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Append a rule.
    #[must_use]
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// Monotonic counters describing what an injector has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations that matched some rule's predicates.
    pub matched: u64,
    /// Faults actually fired (sum of the per-kind counters below).
    pub injected: u64,
    /// Transient errors injected.
    pub transient: u64,
    /// Fatal errors injected.
    pub fatal: u64,
    /// Latency spikes injected.
    pub latency: u64,
    /// Torn writes injected.
    pub torn: u64,
    /// Flushes/fences/syncs silently dropped.
    pub dropped_flush: u64,
}

/// Verdict of [`FaultInjector::decide`] for one intercepted operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// No fault: perform the operation normally.
    Proceed,
    /// Fail the operation with this error.
    Fail(DeviceError),
    /// Perform only the first `keep` bytes of the write (torn write);
    /// report success to the caller.
    Truncate(usize),
    /// Skip the flush/fence/sync entirely; report success to the caller.
    Drop,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 output function over an already-advanced state word.
fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct RuleState {
    rule: FaultRule,
    /// Matches seen so far (1-based op index for Nth/EveryNth triggers).
    matched: AtomicU64,
    /// splitmix64 state for this rule's private random stream.
    rng: AtomicU64,
}

impl RuleState {
    fn next_u64(&self) -> u64 {
        let state = self
            .rng
            // relaxed: RNG state needs atomicity only; any interleaving of draws is an equally valid random sequence.
            .fetch_add(GOLDEN, Ordering::Relaxed)
            .wrapping_add(GOLDEN);
        splitmix64(state)
    }

    fn next_f64(&self) -> f64 {
        // 53 random bits → uniform in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Compiled, thread-safe form of a [`FaultPlan`], attachable to devices.
pub struct FaultInjector {
    rules: Vec<RuleState>,
    matched: AtomicU64,
    transient: AtomicU64,
    fatal: AtomicU64,
    latency: AtomicU64,
    torn: AtomicU64,
    dropped_flush: AtomicU64,
}

impl FaultInjector {
    /// Compile a plan: rule `i` gets an independent stream seeded from
    /// `plan.seed` and its index.
    pub fn new(plan: FaultPlan) -> Self {
        let rules = plan
            .rules
            .into_iter()
            .enumerate()
            .map(|(i, rule)| RuleState {
                rule,
                matched: AtomicU64::new(0),
                rng: AtomicU64::new(splitmix64(
                    plan.seed.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN)),
                )),
            })
            .collect();
        FaultInjector {
            rules,
            matched: AtomicU64::new(0),
            transient: AtomicU64::new(0),
            fatal: AtomicU64::new(0),
            latency: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            dropped_flush: AtomicU64::new(0),
        }
    }

    /// Snapshot the fault counters.
    pub fn stats(&self) -> FaultStats {
        // relaxed: advisory snapshot of fault statistics counters.
        let transient = self.transient.load(Ordering::Relaxed);
        let fatal = self.fatal.load(Ordering::Relaxed);
        let latency = self.latency.load(Ordering::Relaxed);
        let torn = self.torn.load(Ordering::Relaxed);
        let dropped_flush = self.dropped_flush.load(Ordering::Relaxed);
        FaultStats {
            matched: self.matched.load(Ordering::Relaxed),
            injected: transient + fatal + latency + torn + dropped_flush,
            transient,
            fatal,
            latency,
            torn,
            dropped_flush,
        }
    }

    /// Decide the fate of one intercepted operation. The first rule whose
    /// predicates match *and* whose trigger fires wins; latency spikes are
    /// applied here (the caller just proceeds).
    pub fn decide(&self, device: DeviceKind, op: FaultOp, offset: u64, len: usize) -> Outcome {
        for rs in &self.rules {
            if !rs.rule.matches(device, op, offset) {
                continue;
            }
            // relaxed: fault statistics counters; no ordering needed.
            self.matched.fetch_add(1, Ordering::Relaxed);
            let nth = rs.matched.fetch_add(1, Ordering::Relaxed) + 1;
            let fires = match rs.rule.trigger {
                Trigger::Probability(p) => rs.next_f64() < p,
                Trigger::NthOp(n) => nth == n,
                Trigger::EveryNth(n) => n > 0 && nth % n == 0,
                Trigger::Always => true,
            };
            if !fires {
                continue;
            }
            self.note(device, op, offset);
            match rs.rule.kind {
                FaultKind::Transient => {
                    // relaxed: fault statistics counter.
                    self.transient.fetch_add(1, Ordering::Relaxed);
                    return Outcome::Fail(DeviceError::InjectedTransient { op: op.label() });
                }
                FaultKind::Fatal => {
                    // relaxed: fault statistics counter.
                    self.fatal.fetch_add(1, Ordering::Relaxed);
                    return Outcome::Fail(DeviceError::InjectedFatal { op: op.label() });
                }
                FaultKind::LatencyUs(us) => {
                    // relaxed: fault statistics counter.
                    self.latency.fetch_add(1, Ordering::Relaxed);
                    if us > 0 {
                        std::thread::sleep(Duration::from_micros(us));
                    }
                    return Outcome::Proceed;
                }
                FaultKind::TornWrite => {
                    // relaxed: fault statistics counter.
                    self.torn.fetch_add(1, Ordering::Relaxed);
                    let blocks = len.div_ceil(MEDIA_BLOCK).max(1);
                    let surviving = (rs.next_u64() % blocks as u64) as usize;
                    return Outcome::Truncate(len.min(surviving * MEDIA_BLOCK));
                }
                FaultKind::DropFlush => {
                    // relaxed: fault statistics counter.
                    self.dropped_flush.fetch_add(1, Ordering::Relaxed);
                    return Outcome::Drop;
                }
            }
        }
        Outcome::Proceed
    }

    /// Best-effort obs breadcrumb: a `fault_injected` histogram tick and,
    /// when tracing is on, an event in the trace ring. The authoritative
    /// fault counts live in [`FaultInjector::stats`].
    fn note(&self, device: DeviceKind, _op: FaultOp, offset: u64) {
        record_op(
            Op::FaultInjected,
            Some(Instant::now()),
            offset,
            device.label(),
        );
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("rules", &self.rules.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(inj: &FaultInjector, n: usize) -> Vec<Outcome> {
        (0..n)
            .map(|i| inj.decide(DeviceKind::Nvm, FaultOp::Write, (i * 64) as u64, 64))
            .collect()
    }

    #[test]
    fn same_plan_same_seed_same_outcomes() {
        let plan = FaultPlan::new(42).rule(FaultRule::any(
            Trigger::Probability(0.25),
            FaultKind::Transient,
        ));
        let a = drive(&FaultInjector::new(plan.clone()), 512);
        let b = drive(&FaultInjector::new(plan.clone()), 512);
        assert_eq!(a, b);
        let fired = a.iter().filter(|o| **o != Outcome::Proceed).count();
        assert!(
            fired > 64 && fired < 256,
            "p=0.25 over 512 ops, got {fired}"
        );
        // A different seed produces a different schedule.
        let c = drive(&FaultInjector::new(FaultPlan { seed: 43, ..plan }), 512);
        assert_ne!(a, c);
    }

    #[test]
    fn nth_op_fires_exactly_once() {
        let inj = FaultInjector::new(
            FaultPlan::new(1).rule(FaultRule::any(Trigger::NthOp(3), FaultKind::Fatal)),
        );
        let outs = drive(&inj, 8);
        for (i, o) in outs.iter().enumerate() {
            if i == 2 {
                assert!(matches!(
                    o,
                    Outcome::Fail(DeviceError::InjectedFatal { .. })
                ));
            } else {
                assert_eq!(*o, Outcome::Proceed);
            }
        }
        assert_eq!(inj.stats().fatal, 1);
    }

    #[test]
    fn every_nth_fires_periodically() {
        let inj = FaultInjector::new(
            FaultPlan::new(1).rule(FaultRule::any(Trigger::EveryNth(4), FaultKind::Transient)),
        );
        let outs = drive(&inj, 12);
        let fired: Vec<usize> = outs
            .iter()
            .enumerate()
            .filter(|(_, o)| **o != Outcome::Proceed)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fired, vec![3, 7, 11]);
    }

    #[test]
    fn predicates_filter_device_op_and_offset() {
        let inj = FaultInjector::new(
            FaultPlan::new(7).rule(
                FaultRule::any(Trigger::Always, FaultKind::Transient)
                    .on_device(DeviceKind::Ssd)
                    .on_op(FaultOp::Read)
                    .in_range(4096, 8192),
            ),
        );
        // Wrong device, wrong op, wrong offset: all proceed.
        assert_eq!(
            inj.decide(DeviceKind::Nvm, FaultOp::Read, 4096, 64),
            Outcome::Proceed
        );
        assert_eq!(
            inj.decide(DeviceKind::Ssd, FaultOp::Write, 4096, 64),
            Outcome::Proceed
        );
        assert_eq!(
            inj.decide(DeviceKind::Ssd, FaultOp::Read, 8192, 64),
            Outcome::Proceed
        );
        assert_eq!(inj.stats().matched, 0);
        // Exact match fails.
        assert!(matches!(
            inj.decide(DeviceKind::Ssd, FaultOp::Read, 4096, 64),
            Outcome::Fail(DeviceError::InjectedTransient { op: "read" })
        ));
    }

    #[test]
    fn torn_write_keeps_whole_media_blocks() {
        let inj = FaultInjector::new(
            FaultPlan::new(99).rule(FaultRule::any(Trigger::Always, FaultKind::TornWrite)),
        );
        for _ in 0..64 {
            match inj.decide(DeviceKind::Ssd, FaultOp::Write, 0, 4096) {
                Outcome::Truncate(keep) => {
                    assert!(keep < 4096);
                    assert_eq!(keep % MEDIA_BLOCK, 0);
                }
                other => panic!("expected Truncate, got {other:?}"),
            }
        }
        assert_eq!(inj.stats().torn, 64);
    }

    #[test]
    fn drop_flush_and_first_matching_rule_wins() {
        let inj = FaultInjector::new(
            FaultPlan::new(5)
                .rule(FaultRule::any(Trigger::Always, FaultKind::DropFlush).on_op(FaultOp::Sfence))
                .rule(FaultRule::any(Trigger::Always, FaultKind::Fatal).on_op(FaultOp::Sfence)),
        );
        assert_eq!(
            inj.decide(DeviceKind::Nvm, FaultOp::Sfence, 0, 0),
            Outcome::Drop
        );
        let s = inj.stats();
        assert_eq!((s.dropped_flush, s.fatal), (1, 0));
    }
}
