//! Wall-clock cost model with bandwidth reservation.
//!
//! Every emulated device charges each access two components:
//!
//! * a **latency** component, paid concurrently by each accessing thread
//!   (idle latencies from Table 1), and
//! * a **transfer** component, `effective_bytes / bandwidth`, serialized
//!   through a per-device reservation clock so that concurrent threads
//!   queue behind one another exactly as they would on a saturated device.
//!
//! The reservation clock is a single atomic holding the timestamp (in
//! emulated nanoseconds since the model was created) at which the device
//! becomes free. A transfer atomically advances the clock by its duration
//! and then the calling thread waits until its reserved slot has passed.
//! This simple M/D/1-style model is what lets the experiments reproduce the
//! paper's saturation effects (e.g. the SSD becoming the bottleneck at 16
//! worker threads in §6.3) without real hardware.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::profile::DeviceProfile;

/// Scale factor applied to every emulated delay.
///
/// `TimeScale::REAL` charges the full modelled duration; `TimeScale::ZERO`
/// disables delays entirely (used by unit tests, which only care about the
/// byte/op counters); intermediate values compress experiment wall-clock
/// time while preserving all performance *ratios*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeScale(pub f64);

impl TimeScale {
    /// No emulated delays; counters only.
    pub const ZERO: TimeScale = TimeScale(0.0);
    /// Full Table 1 delays.
    pub const REAL: TimeScale = TimeScale(1.0);

    /// Whether delays are enabled at all.
    pub fn enabled(self) -> bool {
        self.0 > 0.0
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale::REAL
    }
}

/// Whether an access is sequential or random, for profile lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Access adjacent to the device's recent stream (prefetch-friendly).
    Sequential,
    /// Independent access (the common case for a buffer manager).
    Random,
}

/// Shared per-device cost model. Cloneable handles are not provided; wrap in
/// `Arc` when shared across device facades.
#[derive(Debug)]
pub struct CostModel {
    profile: DeviceProfile,
    /// Bit pattern of the `f64` scale; mutable so harnesses can run load
    /// phases with delays off and measurement phases at full fidelity.
    scale_bits: AtomicU64,
    /// Emulated-nanosecond timestamp at which the device's transfer engine
    /// becomes free, relative to `epoch`.
    busy_until_ns: AtomicU64,
    epoch: Instant,
}

/// Threshold above which we park the thread instead of spinning.
const SPIN_LIMIT: Duration = Duration::from_micros(100);

/// Fixed bookkeeping overhead of one `charge` call (clock reads and the
/// wait loop), measured once and subtracted from every emulated delay so
/// short DRAM-scale latencies stay accurate on slow hosts.
fn charge_overhead_ns() -> u64 {
    static OVERHEAD: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let start = Instant::now();
        let mut sink = 0u64;
        const N: u32 = 4096;
        for _ in 0..N {
            // Two clock reads per charge: one in charge(), one in the wait
            // loop's first iteration.
            sink = sink.wrapping_add(Instant::now().elapsed().as_nanos() as u64);
        }
        std::hint::black_box(sink);
        (start.elapsed().as_nanos() as u64 / N as u64).min(500)
    })
}

impl CostModel {
    /// Create a cost model for `profile` with delays scaled by `scale`.
    pub fn new(profile: DeviceProfile, scale: TimeScale) -> Self {
        CostModel {
            profile,
            scale_bits: AtomicU64::new(scale.0.to_bits()),
            busy_until_ns: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The profile this model charges against.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The current time scale.
    pub fn scale(&self) -> TimeScale {
        // relaxed: the scale is a standalone tuning knob; a stale reading is just the previous scale, which is valid.
        TimeScale(f64::from_bits(self.scale_bits.load(Ordering::Relaxed)))
    }

    /// Change the time scale. Harnesses disable delays (`TimeScale::ZERO`)
    /// during load phases and restore `TimeScale::REAL` for measurement.
    pub fn set_scale(&self, scale: TimeScale) {
        // relaxed: see `scale`.
        self.scale_bits.store(scale.0.to_bits(), Ordering::Relaxed);
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Charge a read of `bytes` logical bytes; returns the effective number
    /// of bytes moved at the media level.
    pub fn charge_read(&self, bytes: usize, pattern: AccessPattern) -> usize {
        let effective = self.profile.effective_transfer(bytes);
        let (lat, bw) = match pattern {
            AccessPattern::Sequential => {
                (self.profile.seq_read_latency_ns, self.profile.seq_read_bw)
            }
            AccessPattern::Random => (self.profile.rand_read_latency_ns, self.profile.rand_read_bw),
        };
        self.charge(lat, effective, bw);
        effective
    }

    /// Charge a write of `bytes` logical bytes; returns the effective number
    /// of bytes moved at the media level.
    pub fn charge_write(&self, bytes: usize, pattern: AccessPattern) -> usize {
        let effective = self.profile.effective_transfer(bytes);
        let (lat, bw) = match pattern {
            AccessPattern::Sequential => (self.profile.write_latency_ns, self.profile.seq_write_bw),
            AccessPattern::Random => (self.profile.write_latency_ns, self.profile.rand_write_bw),
        };
        self.charge(lat, effective, bw);
        effective
    }

    fn charge(&self, latency_ns: u64, bytes: usize, bandwidth: u64) {
        let scale = self.scale();
        if !scale.enabled() {
            return;
        }
        let transfer_ns = if bandwidth == 0 {
            0
        } else {
            (bytes as u128 * 1_000_000_000 / bandwidth as u128) as u64
        };
        let scaled_transfer = (transfer_ns as f64 * scale.0) as u64;
        let scaled_latency = (latency_ns as f64 * scale.0) as u64;

        let now = self.now_ns();
        // Reserve a slot on the transfer engine: advance busy_until by our
        // transfer time, starting from max(now, previous reservation).
        let mut start = now;
        if scaled_transfer > 0 {
            let prev = self
                .busy_until_ns
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |busy| {
                    Some(busy.max(now) + scaled_transfer)
                })
                .expect("fetch_update closure always returns Some");
            start = prev.max(now);
        }
        let finish =
            (start + scaled_transfer + scaled_latency).saturating_sub(charge_overhead_ns());
        self.wait_until(finish);
    }

    fn wait_until(&self, target_ns: u64) {
        loop {
            let now = self.now_ns();
            if now >= target_ns {
                return;
            }
            let remaining = Duration::from_nanos(target_ns - now);
            if remaining > SPIN_LIMIT {
                // Long waits (SSD under saturation): park so other worker
                // threads can run, mirroring a blocking I/O submission.
                std::thread::sleep(remaining - SPIN_LIMIT / 2);
            } else if remaining > Duration::from_micros(3) {
                // Medium waits: let another worker have the core. Vital on
                // machines with fewer cores than worker threads.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;
    use std::sync::Arc;

    #[test]
    fn zero_scale_charges_nothing_but_reports_effective_bytes() {
        let m = CostModel::new(DeviceProfile::optane_pmm(), TimeScale::ZERO);
        let start = Instant::now();
        let eff = m.charge_read(1, AccessPattern::Random);
        assert_eq!(eff, 256);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn real_scale_charges_at_least_latency() {
        let m = CostModel::new(DeviceProfile::optane_ssd(), TimeScale::REAL);
        let start = Instant::now();
        m.charge_read(16 * 1024, AccessPattern::Random);
        // 12 us latency + ~6.8 us transfer.
        assert!(start.elapsed() >= Duration::from_micros(12));
    }

    #[test]
    fn concurrent_transfers_serialize_on_bandwidth() {
        // 8 concurrent 16 KB SSD reads at 2.4 GB/s need >= 8 * 6.8 us of
        // transfer time even though latency overlaps.
        let m = Arc::new(CostModel::new(DeviceProfile::optane_ssd(), TimeScale::REAL));
        let start = Instant::now();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    m.charge_read(16 * 1024, AccessPattern::Random);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let serial_transfer = Duration::from_nanos(8 * 16384 * 1_000_000_000 / 2_400_000_000);
        assert!(
            start.elapsed() >= serial_transfer,
            "elapsed {:?} < serialized transfer {:?}",
            start.elapsed(),
            serial_transfer
        );
    }

    #[test]
    fn sequential_cheaper_than_random_on_nvm() {
        // Comparing two wall-clock measurements is sensitive to scheduler
        // preemption when the whole workspace's test binaries run in
        // parallel, so take the best of a few attempts before failing.
        let n = 64;
        let mut last = (Duration::ZERO, Duration::ZERO);
        for _ in 0..5 {
            let m = CostModel::new(DeviceProfile::optane_pmm(), TimeScale::REAL);
            let start = Instant::now();
            for _ in 0..n {
                m.charge_read(4096, AccessPattern::Sequential);
            }
            let seq = start.elapsed();
            let start = Instant::now();
            for _ in 0..n {
                m.charge_read(4096, AccessPattern::Random);
            }
            let rand = start.elapsed();
            if rand > seq {
                return;
            }
            last = (seq, rand);
        }
        panic!(
            "random {:?} should exceed sequential {:?} in at least one of 5 attempts",
            last.1, last.0
        );
    }
}
