//! Emulated DRAM: a byte-addressable arena with DRAM-speed cost accounting.

use std::cell::UnsafeCell;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cost::{AccessPattern, CostModel, TimeScale};
use crate::error::DeviceError;
use crate::fault::{FaultInjector, FaultOp, Outcome};
use crate::profile::{DeviceKind, DeviceProfile};
use crate::stats::DeviceStats;
use crate::Result;

/// A fixed-capacity byte arena.
///
/// # Safety contract
///
/// The arena intentionally permits concurrent mutation through `&self`
/// because buffer frames are accessed by many threads. Callers (the buffer
/// manager) must guarantee that concurrent accesses to *overlapping* byte
/// ranges are synchronized externally — Spitfire does this with per-page
/// latches (paper §5.2). Bounds are always checked; only range-disjointness
/// is delegated to the caller. A violation is a logic bug in the caller and
/// results in torn bytes, never memory unsafety outside the arena.
///
/// One *sanctioned* overlap exists: shadow-copy migrations deliberately
/// read a page while writers may be mutating it (a validated-discard
/// read). The copy is never used unless the page's pin-word version check
/// proves no write overlapped the copy window; a torn copy is discarded.
/// Such reads are still data races in the C++/Rust memory-model sense —
/// ThreadSanitizer would flag them — but they cannot produce memory
/// unsafety here, and staleness is excluded by the version protocol (see
/// `spitfire_sync::PinWord::shadow_commit` and DESIGN.md "Shadow-copy
/// migrations").
pub(crate) struct Arena {
    data: UnsafeCell<Box<[u8]>>,
    capacity: usize,
}

// SAFETY: all mutation goes through raw-pointer copies on range-checked
// offsets; disjointness of concurrently accessed ranges is part of the
// documented caller contract above.
unsafe impl Sync for Arena {}
unsafe impl Send for Arena {}

impl Arena {
    pub(crate) fn new(capacity: usize) -> Self {
        Arena {
            data: UnsafeCell::new(vec![0u8; capacity].into_boxed_slice()),
            capacity,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    fn check(&self, offset: usize, len: usize) -> Result<()> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.capacity)
        {
            return Err(DeviceError::OutOfBounds {
                offset,
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    pub(crate) fn read(&self, offset: usize, buf: &mut [u8]) -> Result<()> {
        self.check(offset, buf.len())?;
        // SAFETY: range checked above; disjointness per the type contract.
        unsafe {
            let base = (*self.data.get()).as_ptr().add(offset);
            std::ptr::copy_nonoverlapping(base, buf.as_mut_ptr(), buf.len());
        }
        Ok(())
    }

    pub(crate) fn write(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.check(offset, data.len())?;
        // SAFETY: range checked above; disjointness per the type contract.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr().add(offset);
            std::ptr::copy_nonoverlapping(data.as_ptr(), base, data.len());
        }
        Ok(())
    }

    /// Copy `len` bytes within the arena (used by crash simulation).
    #[allow(dead_code)]
    pub(crate) fn copy_within(&self, src: usize, dst: usize, len: usize) -> Result<()> {
        self.check(src, len)?;
        self.check(dst, len)?;
        // SAFETY: ranges checked; `copy` handles overlap.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr();
            std::ptr::copy(base.add(src), base.add(dst), len);
        }
        Ok(())
    }
}

/// Emulated DRAM device: a byte arena fronted by a DRAM [`CostModel`].
///
/// The buffer manager places its DRAM buffer pool frames here. Accesses are
/// range-addressed; the frame layout is owned by the caller.
pub struct DramDevice {
    arena: Arena,
    cost: CostModel,
    stats: Arc<DeviceStats>,
    injector: RwLock<Option<Arc<FaultInjector>>>,
}

impl DramDevice {
    /// A DRAM device of `capacity` bytes with Table 1 characteristics.
    pub fn new(capacity: usize, scale: TimeScale) -> Self {
        Self::with_profile(capacity, DeviceProfile::dram(), scale)
    }

    /// A DRAM device with a custom profile (used by tests and what-if
    /// experiments).
    pub fn with_profile(capacity: usize, profile: DeviceProfile, scale: TimeScale) -> Self {
        DramDevice {
            arena: Arena::new(capacity),
            cost: CostModel::new(profile, scale),
            stats: Arc::new(DeviceStats::new()),
            injector: RwLock::new(None),
        }
    }

    /// Attach (or detach with `None`) a chaos fault injector; every
    /// subsequent read/write consults it first.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        *self.injector.write() = injector;
    }

    fn fault(&self, op: FaultOp, offset: usize, len: usize) -> Outcome {
        match &*self.injector.read() {
            Some(inj) => inj.decide(DeviceKind::Dram, op, offset as u64, len),
            None => Outcome::Proceed,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Shared handle to this device's counters.
    pub fn stats(&self) -> Arc<DeviceStats> {
        Arc::clone(&self.stats)
    }

    /// The device profile in effect.
    pub fn profile(&self) -> &DeviceProfile {
        self.cost.profile()
    }

    /// Change the emulated-delay scale (load phases run at
    /// [`TimeScale::ZERO`], measurement at [`TimeScale::REAL`]).
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.cost.set_scale(scale);
    }

    /// Read `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: usize, buf: &mut [u8], pattern: AccessPattern) -> Result<()> {
        if let Outcome::Fail(e) = self.fault(FaultOp::Read, offset, buf.len()) {
            return Err(e);
        }
        self.arena.read(offset, buf)?;
        let eff = self.cost.charge_read(buf.len(), pattern);
        self.stats.record_read(eff);
        Ok(())
    }

    /// Write `data` starting at `offset`.
    pub fn write(&self, offset: usize, data: &[u8], pattern: AccessPattern) -> Result<()> {
        // DRAM is volatile, so torn-write/drop-flush outcomes degenerate to
        // plain success; only error injection applies.
        if let Outcome::Fail(e) = self.fault(FaultOp::Write, offset, data.len()) {
            return Err(e);
        }
        self.arena.write(offset, data)?;
        let eff = self.cost.charge_write(data.len(), pattern);
        self.stats.record_write(eff);
        Ok(())
    }
}

impl std::fmt::Debug for DramDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramDevice")
            .field("capacity", &self.capacity())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_your_writes() {
        let d = DramDevice::new(4096, TimeScale::ZERO);
        d.write(100, b"hello", AccessPattern::Random).unwrap();
        let mut buf = [0u8; 5];
        d.read(100, &mut buf, AccessPattern::Random).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn bounds_are_enforced() {
        let d = DramDevice::new(64, TimeScale::ZERO);
        let err = d.write(60, b"too long", AccessPattern::Random).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfBounds { .. }));
        let mut buf = [0u8; 1];
        assert!(d.read(64, &mut buf, AccessPattern::Random).is_err());
        // Offset overflow must not panic.
        assert!(d.read(usize::MAX, &mut buf, AccessPattern::Random).is_err());
    }

    #[test]
    fn stats_count_effective_bytes() {
        let d = DramDevice::new(4096, TimeScale::ZERO);
        d.write(0, &[1u8; 10], AccessPattern::Random).unwrap();
        // DRAM granularity is 64 B, so a 10 B write moves 64 B.
        assert_eq!(d.stats().snapshot().bytes_written, 64);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let d = Arc::new(DramDevice::new(64 * 16, TimeScale::ZERO));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let d = Arc::clone(&d);
                std::thread::spawn(move || {
                    let pattern = [i as u8; 64];
                    for _ in 0..100 {
                        d.write(i * 64, &pattern, AccessPattern::Random).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..16usize {
            let mut buf = [0u8; 64];
            d.read(i * 64, &mut buf, AccessPattern::Random).unwrap();
            assert_eq!(buf, [i as u8; 64]);
        }
    }
}
