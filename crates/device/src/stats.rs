//! Per-device operation and byte counters.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Thread-safe counters maintained by every emulated device.
///
/// Counters record *effective* media-level bytes (after rounding up to the
/// device's access granularity), which is what the paper's NVM write-volume
/// experiments (Figures 8 and 13) measure.
#[derive(Debug, Default)]
pub struct DeviceStats {
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    /// Bytes explicitly flushed to the persistence domain (`clwb`).
    bytes_flushed: AtomicU64,
    /// Number of `sfence` barriers issued.
    fences: AtomicU64,
}

impl DeviceStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a read of `bytes` effective bytes.
    pub fn record_read(&self, bytes: usize) {
        // relaxed: device statistics counters publish no other memory; snapshots and resets are advisory.
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a write of `bytes` effective bytes.
    pub fn record_write(&self, bytes: usize) {
        // relaxed: statistics counters, as above.
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a `clwb` of `bytes` bytes.
    pub fn record_flush(&self, bytes: usize) {
        self.bytes_flushed
            // relaxed: statistics counter, as above.
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record an `sfence`.
    pub fn record_fence(&self) {
        // relaxed: statistics counter, as above.
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            // relaxed: advisory snapshot; no cross-counter consistency is claimed.
            read_ops: self.read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (used between experiment phases).
    pub fn reset(&self) {
        // relaxed: racing increments may survive the reset by design.
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.bytes_flushed.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of [`DeviceStats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Effective bytes read at the media level.
    pub bytes_read: u64,
    /// Effective bytes written at the media level.
    pub bytes_written: u64,
    /// Bytes flushed via `clwb`.
    pub bytes_flushed: u64,
    /// `sfence` barriers issued.
    pub fences: u64,
}

impl StatsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            bytes_flushed: self.bytes_flushed - earlier.bytes_flushed,
            fences: self.fences - earlier.fences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = DeviceStats::new();
        s.record_read(100);
        s.record_read(28);
        s.record_write(64);
        s.record_flush(64);
        s.record_fence();
        let snap = s.snapshot();
        assert_eq!(snap.read_ops, 2);
        assert_eq!(snap.bytes_read, 128);
        assert_eq!(snap.write_ops, 1);
        assert_eq!(snap.bytes_written, 64);
        assert_eq!(snap.bytes_flushed, 64);
        assert_eq!(snap.fences, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn delta_subtracts_fields() {
        let s = DeviceStats::new();
        s.record_write(10);
        let a = s.snapshot();
        s.record_write(30);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.write_ops, 1);
        assert_eq!(d.bytes_written, 30);
    }
}
