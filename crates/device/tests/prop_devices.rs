//! Property tests for the device emulation: the NVM persistence model and
//! the SSD page store must match simple reference models for arbitrary
//! operation sequences.

use proptest::prelude::*;
use spitfire_device::{
    AccessPattern, DeviceProfile, NvmDevice, PersistenceTracking, SsdDevice, TimeScale,
};

const CAP: usize = 2048;

#[derive(Debug, Clone)]
enum NvmOp {
    Write { offset: usize, len: usize, byte: u8 },
    Persist { offset: usize, len: usize },
    Crash,
}

fn nvm_op() -> impl Strategy<Value = NvmOp> {
    prop_oneof![
        4 => (0..CAP, 1..256usize, any::<u8>()).prop_map(|(offset, len, byte)| {
            NvmOp::Write { offset, len: len.min(CAP - offset), byte }
        }),
        2 => (0..CAP, 1..512usize).prop_map(|(offset, len)| NvmOp::Persist {
            offset,
            len: len.min(CAP - offset),
        }),
        1 => Just(NvmOp::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The NVM device must equal a model where writes land in a volatile
    /// image, persist copies (cache-line-rounded) ranges to a durable
    /// image, and crash resets the volatile image to the durable one.
    #[test]
    fn nvm_persistence_matches_model(ops in proptest::collection::vec(nvm_op(), 1..80)) {
        let dev = NvmDevice::new(CAP, TimeScale::ZERO, PersistenceTracking::Full);
        let mut volatile = vec![0u8; CAP];
        let mut durable = vec![0u8; CAP];

        for op in &ops {
            match *op {
                NvmOp::Write { offset, len, byte } => {
                    if len == 0 { continue; }
                    dev.write(offset, &vec![byte; len], AccessPattern::Random).unwrap();
                    volatile[offset..offset + len].fill(byte);
                }
                NvmOp::Persist { offset, len } => {
                    if len == 0 { continue; }
                    dev.persist(offset, len).unwrap();
                    let start = offset - offset % 64;
                    let end = ((offset + len).div_ceil(64) * 64).min(CAP);
                    durable[start..end].copy_from_slice(&volatile[start..end]);
                }
                NvmOp::Crash => {
                    dev.simulate_crash();
                    volatile.copy_from_slice(&durable);
                }
            }
            let mut buf = vec![0u8; CAP];
            dev.read(0, &mut buf, AccessPattern::Sequential).unwrap();
            prop_assert_eq!(&buf, &volatile, "device diverged from model after {:?}", op);
        }
    }

    /// The SSD page store must behave like a hash map of page images.
    #[test]
    fn ssd_matches_model(
        ops in proptest::collection::vec((0..16u64, any::<u8>(), any::<bool>()), 1..100)
    ) {
        let ssd = SsdDevice::new(256, TimeScale::ZERO);
        let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        for &(pid, byte, is_write) in &ops {
            if is_write {
                let page = vec![byte; 256];
                ssd.write_page(pid, &page).unwrap();
                model.insert(pid, page);
            } else {
                let mut buf = vec![0u8; 256];
                match model.get(&pid) {
                    Some(want) => {
                        ssd.read_page(pid, &mut buf).unwrap();
                        prop_assert_eq!(&buf, want);
                    }
                    None => prop_assert!(ssd.read_page(pid, &mut buf).is_err()),
                }
            }
        }
        prop_assert_eq!(ssd.page_count(), model.len());
    }

    /// Effective transfers are granularity-rounded and monotone.
    #[test]
    fn effective_transfer_properties(bytes in 0..100_000usize) {
        for profile in [DeviceProfile::dram(), DeviceProfile::optane_pmm(), DeviceProfile::optane_ssd()] {
            let eff = profile.effective_transfer(bytes);
            prop_assert!(eff >= bytes);
            prop_assert_eq!(eff % profile.access_granularity, 0);
            if bytes > 0 {
                prop_assert!(eff < bytes + profile.access_granularity);
            } else {
                prop_assert_eq!(eff, 0);
            }
        }
    }
}
