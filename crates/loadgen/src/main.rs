//! Closed-loop load generator for `spitfire-server`.
//!
//! Two modes:
//!
//! * **External** (`--addr HOST:PORT`): open `--conns` connections split
//!   round-robin across `--tenants`, run a GET/PUT mix for `--secs`, and
//!   print a JSON summary (per-tenant throughput and latency quantiles,
//!   shed/retry counts). Exits non-zero on any protocol error, so CI can
//!   use it as a smoke check. `--shutdown` sends a SHUTDOWN frame at the
//!   end.
//! * **Bench** (`--bench`): runs the multi-tenant fairness experiment
//!   against in-process servers on loopback and writes
//!   `BENCH_server.json`: a solo cold-tenant baseline, then a 10:1
//!   hot/cold connection skew with the hot tenant's quota ON (cold p99
//!   must stay within 2x of solo) and OFF (unbounded, recorded for
//!   contrast). The full run drives ≥1k concurrent connections; set
//!   `SPITFIRE_QUICK=1` for a scaled-down smoke version.
//!
//! Retryable errors (sheds, MVTO conflicts) are retried with a short
//! backoff and counted; they are expected under overload and never fail
//! the run.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spitfire_obs::HistogramSet;
use spitfire_server::{
    decode_reply, encode_request, read_frame, AdmissionConfig, Command, Reply, Request, Server,
    ServerConfig, TenantConfig,
};
use spitfire_wkld::Zipf;

/// Per-tenant aggregate counters, shared across that tenant's client
/// threads.
#[derive(Default)]
struct TenantTotals {
    ops: AtomicU64,
    errors: AtomicU64,
    sheds: AtomicU64,
    retries: AtomicU64,
    protocol_errors: AtomicU64,
}

struct TenantResult {
    tenant: u32,
    conns: usize,
    ops: u64,
    ops_per_sec: f64,
    errors: u64,
    sheds: u64,
    retries: u64,
    protocol_errors: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

struct RunSpec {
    addr: std::net::SocketAddr,
    /// Connections per tenant, e.g. `[(0, 640), (1, 64)]`.
    conns: Vec<(u32, usize)>,
    secs: f64,
    keys: u64,
    theta: f64,
    read_pct: u32,
    value_bytes: usize,
}

/// One closed-loop client connection.
fn client_loop(
    spec: &RunSpec,
    tenant: u32,
    seed: u64,
    stop: &AtomicBool,
    totals: &TenantTotals,
    hist: &HistogramSet,
) {
    // Connect with retry: a thousand simultaneous connects can overflow
    // the listen backlog briefly.
    let mut stream = None;
    for attempt in 0..50 {
        match TcpStream::connect(spec.addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) if attempt + 1 < 50 => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => {
                eprintln!("loadgen: connect failed: {e}");
                // relaxed: load-report statistic.
                totals.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    let mut stream = stream.unwrap();
    let _ = stream.set_nodelay(true);
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(spec.keys, spec.theta);
    let value = vec![0xABu8; spec.value_bytes.min(64)];
    let mut request_id = 0u64;

    // relaxed: the stop flag is a shutdown hint; workers may run one extra iteration.
    while !stop.load(Ordering::Relaxed) {
        let key = zipf.sample(&mut rng);
        let read = rng.gen_range(0..100u32) < spec.read_pct;
        let t0 = Instant::now();
        // Retry retryable rejections (sheds, conflicts) a few times. The
        // backoff is deliberately coarse: a shed client should get off the
        // CPU, not poll the admission layer — with ~1k quota-limited
        // connections, aggressive retry turns into a wakeup storm that
        // starves everyone.
        let mut backoff = Duration::from_millis(25);
        let mut done = false;
        for _attempt in 0..4 {
            let cmd = if read {
                Command::Get { key }
            } else {
                Command::Put {
                    key,
                    value: value.clone(),
                }
            };
            request_id += 1;
            let frame = encode_request(&Request {
                tenant,
                request_id,
                cmd,
            });
            if stream.write_all(&frame).is_err() {
                return;
            }
            let reply = match read_frame(&mut stream) {
                Ok(Some(raw)) => match decode_reply(&raw) {
                    Ok(f) => f.reply,
                    Err(_) => {
                        // relaxed: load-report statistic.
                        totals.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                },
                // Server closed (shutdown) or I/O error: stop quietly.
                Ok(None) | Err(_) => return,
            };
            match reply {
                Reply::Error {
                    retryable: true,
                    code,
                    ..
                } => {
                    // relaxed: load-report statistics; the stop re-check is the same shutdown hint as the loop condition.
                    totals.retries.fetch_add(1, Ordering::Relaxed);
                    if matches!(
                        code,
                        spitfire_server::ErrorCode::Overload
                            | spitfire_server::ErrorCode::RateLimited
                    ) {
                        totals.sheds.fetch_add(1, Ordering::Relaxed);
                    }
                    // relaxed: shutdown hint, as the loop condition.
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(backoff);
                    backoff *= 4;
                }
                Reply::Error { .. } => {
                    // relaxed: load-report statistic.
                    totals.errors.fetch_add(1, Ordering::Relaxed);
                    done = true;
                    break;
                }
                _ => {
                    done = true;
                    break;
                }
            }
        }
        if done {
            // relaxed: load-report statistic.
            totals.ops.fetch_add(1, Ordering::Relaxed);
            hist.record(t0.elapsed().as_nanos() as u64);
        } else {
            // Every retry was shed: the tenant is over quota or the server
            // is overloaded. Surface the error and idle before trying
            // again, like a well-behaved client would.
            std::thread::sleep(Duration::from_millis(500));
        }
    }
}

/// Run one load phase to completion and aggregate per-tenant results.
fn run_phase(spec: &RunSpec) -> Vec<TenantResult> {
    let n_tenants = spec.conns.iter().map(|(t, _)| *t + 1).max().unwrap_or(1) as usize;
    let totals: Vec<Arc<TenantTotals>> = (0..n_tenants)
        .map(|_| Arc::new(TenantTotals::default()))
        .collect();
    let hists: Vec<Arc<HistogramSet>> = (0..n_tenants)
        .map(|_| Arc::new(HistogramSet::new()))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    let mut seed = 0x5EED_0001u64;
    for &(tenant, conns) in &spec.conns {
        for _ in 0..conns {
            seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let spec2 = RunSpec {
                addr: spec.addr,
                conns: Vec::new(),
                ..*spec
            };
            let stop = Arc::clone(&stop);
            let totals = Arc::clone(&totals[tenant as usize]);
            let hist = Arc::clone(&hists[tenant as usize]);
            handles.push(
                std::thread::Builder::new()
                    .stack_size(128 * 1024)
                    .spawn(move || client_loop(&spec2, tenant, seed, &stop, &totals, &hist))
                    .expect("spawn client thread"),
            );
        }
    }
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs_f64(spec.secs));
    // relaxed: shutdown hint (see the worker loop).
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    spec.conns
        .iter()
        .map(|&(tenant, conns)| {
            let t = &totals[tenant as usize];
            let snap = hists[tenant as usize].snapshot();
            // relaxed: final report reads after all workers joined; the join is the synchronization.
            let ops = t.ops.load(Ordering::Relaxed);
            TenantResult {
                tenant,
                conns,
                ops,
                ops_per_sec: ops as f64 / elapsed,
                // relaxed: joined-worker reads, as above.
                errors: t.errors.load(Ordering::Relaxed),
                sheds: t.sheds.load(Ordering::Relaxed),
                retries: t.retries.load(Ordering::Relaxed),
                protocol_errors: t.protocol_errors.load(Ordering::Relaxed),
                p50_ns: snap.quantile(0.5).unwrap_or(0),
                p99_ns: snap.quantile(0.99).unwrap_or(0),
                p999_ns: snap.quantile(0.999).unwrap_or(0),
            }
        })
        .collect()
}

fn tenant_json(r: &TenantResult) -> String {
    format!(
        "{{\"tenant\": {}, \"conns\": {}, \"ops\": {}, \"ops_per_sec\": {:.0}, \
         \"errors\": {}, \"sheds\": {}, \"retries\": {}, \"protocol_errors\": {}, \
         \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
        r.tenant,
        r.conns,
        r.ops,
        r.ops_per_sec,
        r.errors,
        r.sheds,
        r.retries,
        r.protocol_errors,
        r.p50_ns,
        r.p99_ns,
        r.p999_ns
    )
}

fn phase_json(name: &str, results: &[TenantResult], extra: &str) -> String {
    let mut s = format!("    {{\"phase\": \"{name}\", {extra}\"tenants\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&tenant_json(r));
    }
    s.push_str("]}");
    s
}

fn quick() -> bool {
    std::env::var_os("SPITFIRE_QUICK").is_some()
}

/// The embedded fairness benchmark: solo baseline, skewed with quotas,
/// skewed without quotas. Writes `BENCH_server.json`.
fn bench(out: &str) {
    // 10:1 hot/cold connection skew; the full run holds ≥1k connections.
    let (hot_conns, cold_conns, secs) = if quick() {
        (40, 4, 1.0)
    } else {
        (950, 95, 5.0)
    };
    let keys = 2048u64;
    let value_bytes = 64usize;

    let server_config = |tenants: Vec<TenantConfig>| ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        page_size: 4096,
        dram_bytes: 8 << 20,
        nvm_bytes: 32 << 20,
        value_bytes,
        preload_keys: keys,
        tenants,
        admission: AdmissionConfig::default(),
        pressure_poll: Duration::from_millis(5),
        allow_remote_shutdown: false,
    };
    // Hot tenant: weight 1 and (when enabled) a quota well below what its
    // connection count can push, so the bucket sheds for real. Cold
    // tenant: weight 4, no quota.
    let hot = |quota: Option<f64>| TenantConfig {
        weight: 1,
        quota_ops_per_sec: quota,
    };
    let cold = TenantConfig {
        weight: 4,
        quota_ops_per_sec: None,
    };
    // Low enough that the hot tenant's achievable closed-loop rate exceeds
    // it even on small CI machines — the bucket must actually shed.
    let hot_quota = 2_000.0;
    let spec = |addr, conns| RunSpec {
        addr,
        conns,
        secs,
        keys,
        theta: 0.9,
        read_pct: 80,
        value_bytes,
    };

    // Phase 1 — solo: the cold tenant alone, no contention. Tenant id 1
    // in a two-tenant server so the table layout matches later phases.
    eprintln!("loadgen bench: phase solo ({cold_conns} conns, {secs}s)");
    let server = Server::start(server_config(vec![hot(None), cold.clone()])).expect("server");
    let solo = run_phase(&spec(server.local_addr(), vec![(1, cold_conns)]));
    server.shutdown();
    let solo_p99 = solo[0].p99_ns;

    // Phase 2 — skewed, quotas ON.
    eprintln!("loadgen bench: phase quotas-on ({hot_conns}+{cold_conns} conns)");
    let server =
        Server::start(server_config(vec![hot(Some(hot_quota)), cold.clone()])).expect("server");
    let quotas_on = run_phase(&spec(
        server.local_addr(),
        vec![(0, hot_conns), (1, cold_conns)],
    ));
    let server_sheds_on: u64 = server
        .admission()
        .tenants()
        .iter()
        .map(|t| t.shed_total())
        .sum();
    server.shutdown();

    // Phase 3 — skewed, quotas OFF (recorded for contrast; unbounded).
    eprintln!("loadgen bench: phase quotas-off ({hot_conns}+{cold_conns} conns)");
    let server = Server::start(server_config(vec![hot(None), cold])).expect("server");
    let quotas_off = run_phase(&spec(
        server.local_addr(),
        vec![(0, hot_conns), (1, cold_conns)],
    ));
    let server_sheds_off: u64 = server
        .admission()
        .tenants()
        .iter()
        .map(|t| t.shed_total())
        .sum();
    server.shutdown();

    let cold_on = quotas_on.iter().find(|r| r.tenant == 1).unwrap();
    let cold_off = quotas_off.iter().find(|r| r.tenant == 1).unwrap();
    let degr_on = cold_on.p99_ns as f64 / solo_p99.max(1) as f64;
    let degr_off = cold_off.p99_ns as f64 / solo_p99.max(1) as f64;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"hot_conns\": {hot_conns}, \"cold_conns\": {cold_conns}, \
         \"total_conns\": {}, \"secs\": {secs}, \"keys\": {keys}, \"theta\": 0.9, \
         \"read_pct\": 80, \"hot_quota_ops_per_sec\": {hot_quota}, \"quick\": {}}},\n",
        hot_conns + cold_conns,
        quick()
    ));
    json.push_str("  \"phases\": [\n");
    json.push_str(&phase_json("solo_cold_baseline", &solo, ""));
    json.push_str(",\n");
    json.push_str(&phase_json(
        "skewed_quotas_on",
        &quotas_on,
        &format!("\"server_sheds\": {server_sheds_on}, "),
    ));
    json.push_str(",\n");
    json.push_str(&phase_json(
        "skewed_quotas_off",
        &quotas_off,
        &format!("\"server_sheds\": {server_sheds_off}, "),
    ));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"cold_p99_degradation_quotas_on\": {degr_on:.3},\n\
         \"cold_p99_degradation_quotas_off\": {degr_off:.3}\n}}\n"
    ));
    std::fs::write(out, &json).expect("write bench json");
    eprintln!(
        "loadgen bench: cold p99 {:.2}x solo with quotas, {:.2}x without -> {out}",
        degr_on, degr_off
    );
    // The 2x isolation bound is the acceptance gate for the full run; the
    // quick smoke gets slack because its tiny solo baseline is noisy.
    let bound = if quick() { 3.0 } else { 2.0 };
    if degr_on > bound {
        eprintln!(
            "loadgen bench: WARNING cold-tenant p99 degraded more than {bound}x with quotas on"
        );
        std::process::exit(1);
    }
    if server_sheds_on == 0 {
        eprintln!("loadgen bench: WARNING no sheds under overload with quotas on");
        std::process::exit(1);
    }
}

/// External mode against a running server.
#[allow(clippy::too_many_arguments)]
fn external(addr: &str, conns: usize, tenants: usize, secs: f64, shutdown: bool) {
    let addr: std::net::SocketAddr = addr.parse().unwrap_or_else(|_| {
        eprintln!("loadgen: bad --addr {addr}");
        std::process::exit(2);
    });
    // Round-robin the connections across tenants.
    let mut per_tenant = vec![0usize; tenants.max(1)];
    for c in 0..conns {
        per_tenant[c % tenants.max(1)] += 1;
    }
    let spec = RunSpec {
        addr,
        conns: per_tenant
            .iter()
            .enumerate()
            .map(|(t, n)| (t as u32, *n))
            .collect(),
        secs,
        keys: 1024,
        theta: 0.9,
        read_pct: 80,
        value_bytes: 32,
    };
    let results = run_phase(&spec);

    let mut json = String::from("{\"tenants\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&tenant_json(r));
    }
    json.push_str("]}");
    println!("{json}");

    if shutdown {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let frame = encode_request(&Request {
                tenant: 0,
                request_id: u64::MAX,
                cmd: Command::Shutdown,
            });
            let _ = s.write_all(&frame);
            let _ = read_frame(&mut s);
        }
    }

    let total_ops: u64 = results.iter().map(|r| r.ops).sum();
    let proto_errs: u64 = results.iter().map(|r| r.protocol_errors).sum();
    if total_ops == 0 {
        eprintln!("loadgen: no operations completed");
        std::process::exit(1);
    }
    if proto_errs > 0 {
        eprintln!("loadgen: {proto_errs} protocol errors");
        std::process::exit(1);
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut conns = 64usize;
    let mut tenants = 1usize;
    let mut secs = 5.0f64;
    let mut shutdown = false;
    let mut bench_mode = false;
    let mut out = "BENCH_server.json".to_string();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("loadgen: {name} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--addr" => addr = Some(take("--addr")),
            "--conns" => conns = take("--conns").parse().expect("--conns"),
            "--tenants" => tenants = take("--tenants").parse().expect("--tenants"),
            "--secs" => secs = take("--secs").parse().expect("--secs"),
            "--shutdown" => shutdown = true,
            "--bench" => bench_mode = true,
            "--out" => out = take("--out"),
            "--help" | "-h" => {
                println!(
                    "usage: spitfire-loadgen --bench [--out FILE]\n\
                     \x20      spitfire-loadgen --addr HOST:PORT [--conns N] [--tenants N] \
                     [--secs S] [--shutdown]"
                );
                return;
            }
            other => {
                eprintln!("loadgen: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if bench_mode {
        bench(&out);
    } else if let Some(addr) = addr {
        external(&addr, conns, tenants, secs, shutdown);
    } else {
        eprintln!("loadgen: need --bench or --addr (see --help)");
        std::process::exit(2);
    }
}
