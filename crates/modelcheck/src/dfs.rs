//! The exploration driver: depth-first enumeration of every recorded
//! choice (thread schedules and weak-memory value reads), with sleep-set
//! partial-order reduction and optional preemption bounding.

use std::sync::Arc;

use crate::engine::{run_execution, ChoiceKind, ExecOpts, PrefixEntry, DEFAULT_MAX_OPS};
use crate::Mutation;

/// One node on the DFS stack: a choice point, its options (and their
/// sleep flags) as recorded by the engine, and the option index currently
/// being explored. Sleeping options are never explored.
struct Node {
    kind: ChoiceKind,
    options: Vec<usize>,
    asleep: Vec<bool>,
    idx: usize,
}

impl Node {
    /// Next explorable option index after `self.idx`, skipping sleepers.
    fn next_idx(&self) -> Option<usize> {
        ((self.idx + 1)..self.options.len()).find(|&i| !self.asleep[i])
    }
}

/// Summary of a completed (bug-free) exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions actually run, including pruned ones.
    pub executions: usize,
    /// Executions cut short by sleep-set equivalence.
    pub pruned: usize,
    /// Longest operation count seen in one execution.
    pub max_ops: usize,
}

/// A bug the explorer found, with the schedule that exposes it.
#[derive(Debug, Clone)]
pub struct Failure {
    pub message: String,
    /// Executions run before the bug surfaced.
    pub executions: usize,
}

#[derive(Debug, Clone)]
pub enum CheckResult {
    Pass(Report),
    Fail(Failure),
    /// The execution budget ran out before the state space was exhausted.
    /// Neither a pass nor a bug: the check must be re-scoped (fewer
    /// threads/operations) or given a larger budget.
    BoundExceeded {
        executions: usize,
    },
}

impl CheckResult {
    /// Unwrap a completed, bug-free exploration.
    #[track_caller]
    pub fn assert_pass(self) -> Report {
        match self {
            CheckResult::Pass(r) => r,
            CheckResult::Fail(f) => panic!(
                "model check failed after {} executions:\n{}",
                f.executions, f.message
            ),
            CheckResult::BoundExceeded { executions } => panic!(
                "state space not exhausted within {executions} executions; \
                 the check proves nothing — shrink the model or raise the budget"
            ),
        }
    }

    /// Unwrap an expected failure (mutation kill tests).
    #[track_caller]
    pub fn assert_fail(self) -> Failure {
        match self {
            CheckResult::Fail(f) => f,
            CheckResult::Pass(r) => panic!(
                "expected the model checker to find a bug, but {} executions \
                 ({} pruned) all passed — the mutant survived",
                r.executions, r.pruned
            ),
            CheckResult::BoundExceeded { executions } => panic!(
                "state space not exhausted within {executions} executions and \
                 no bug found"
            ),
        }
    }

    pub fn found_bug(&self) -> bool {
        matches!(self, CheckResult::Fail(_))
    }
}

/// Configures and runs an exhaustive interleaving exploration.
///
/// ```
/// use spitfire_modelcheck::{atomic::AtomicU64, atomic::Ordering, thread, Checker};
/// use std::sync::Arc;
///
/// Checker::new()
///     .check(|| {
///         let x = Arc::new(AtomicU64::new(0));
///         let x2 = Arc::clone(&x);
///         let t = thread::spawn(move || x2.fetch_add(1, Ordering::AcqRel));
///         x.fetch_add(1, Ordering::AcqRel);
///         t.join();
///         assert_eq!(x.load(Ordering::Acquire), 2);
///     })
///     .assert_pass();
/// ```
#[derive(Debug, Clone)]
pub struct Checker {
    max_executions: usize,
    max_ops: usize,
    preemption_bound: Option<usize>,
    mutation: Option<Mutation>,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    pub fn new() -> Self {
        Checker {
            // Generous default: the ported protocols explore a few
            // hundred to a few tens of thousands of executions.
            max_executions: 300_000,
            max_ops: DEFAULT_MAX_OPS,
            preemption_bound: None,
            mutation: None,
        }
    }

    /// Cap on executions before giving up with `BoundExceeded`.
    pub fn max_executions(mut self, n: usize) -> Self {
        self.max_executions = n;
        self
    }

    /// Cap on operations within one execution (livelock guard).
    pub fn max_ops(mut self, n: usize) -> Self {
        self.max_ops = n;
        self
    }

    /// CHESS-style preemption bound: once a schedule has forced `n`
    /// preemptions, threads run to their next blocking point. Unbounded
    /// (fully exhaustive) by default.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.preemption_bound = Some(n);
        self
    }

    /// Activate a seeded mutation for this exploration; instrumented code
    /// observes it via [`crate::mutation_active`].
    pub fn mutation(mut self, m: Mutation) -> Self {
        self.mutation = Some(m);
        self
    }

    /// Explore every schedule (and weak-memory read) of `f`.
    ///
    /// `f` runs once per execution on a fresh model main thread; it must
    /// create its shared state inside the closure (or reset it) so
    /// executions are independent.
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> CheckResult {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let opts = ExecOpts {
            max_ops: self.max_ops,
            preemption_bound: self.preemption_bound,
        };
        let mut stack: Vec<Node> = Vec::new();
        let mut executions = 0usize;
        let mut pruned = 0usize;
        let mut max_ops_seen = 0usize;
        loop {
            // Replay prefix: the stack's current picks, with explored
            // sibling threads entering the sleep set at each node.
            let prefix: Vec<PrefixEntry> = stack
                .iter()
                .map(|n| PrefixEntry {
                    picked: n.idx,
                    sleep_add: match n.kind {
                        ChoiceKind::Thread => n.options[..n.idx].to_vec(),
                        ChoiceKind::Value => Vec::new(),
                    },
                })
                .collect();
            let out = run_execution(&f, prefix, opts, self.mutation);
            executions += 1;
            if std::env::var_os("MC_DEBUG").is_some() {
                eprintln!(
                    "exec {executions}: stack={} trace={} pruned={} fail={} ops={}",
                    stack.len(),
                    out.trace.len(),
                    out.pruned,
                    out.failure.is_some(),
                    out.ops
                );
            }
            max_ops_seen = max_ops_seen.max(out.ops);
            if out.pruned {
                pruned += 1;
            }
            if let Some(message) = out.failure {
                return CheckResult::Fail(Failure {
                    message,
                    executions,
                });
            }
            if executions >= self.max_executions {
                return CheckResult::BoundExceeded { executions };
            }
            // The engine must have replayed our prefix faithfully.
            assert!(
                out.trace.len() >= stack.len(),
                "replay diverged: {} recorded choices for a {}-deep prefix \
                 (internal checker bug)",
                out.trace.len(),
                stack.len()
            );
            for (i, node) in stack.iter().enumerate() {
                assert_eq!(
                    out.trace[i].picked, node.idx,
                    "replay diverged at choice {i} (internal checker bug)"
                );
            }
            // Extend the stack with the fresh (default-pick) choices this
            // execution appended past the prefix.
            for c in out.trace.into_iter().skip(stack.len()) {
                stack.push(Node {
                    kind: c.kind,
                    options: c.options,
                    asleep: c.asleep,
                    idx: c.picked,
                });
            }
            // Backtrack: advance the deepest choice with an unexplored,
            // non-sleeping option.
            loop {
                match stack.last_mut() {
                    None => {
                        return CheckResult::Pass(Report {
                            executions,
                            pruned,
                            max_ops: max_ops_seen,
                        })
                    }
                    Some(top) => match top.next_idx() {
                        Some(i) => {
                            top.idx = i;
                            break;
                        }
                        None => {
                            stack.pop();
                        }
                    },
                }
            }
        }
    }
}
