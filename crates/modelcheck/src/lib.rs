//! In-tree loom-style interleaving explorer for Spitfire's lock-free
//! protocols.
//!
//! crates.io is unreachable in this build environment, so — consistent
//! with the `vendor/` stand-in pattern — this crate implements the small
//! slice of a model checker the repo needs:
//!
//! - **Instrumented primitives** ([`atomic`], [`lock`], [`cell`],
//!   [`thread`]) that route every shared-memory operation through a
//!   cooperative scheduler when run under a [`Checker`], and fall through
//!   to the real `std` operations otherwise. `crates/sync` re-exports
//!   them behind its `cfg(spitfire_modelcheck)` facade.
//! - **An operational release/acquire memory model** (vector clocks over
//!   full per-location store histories) strong enough that a store or
//!   load incorrectly downgraded to `Relaxed` produces an observable
//!   stale read or data race in some explored execution.
//! - **A DFS driver** ([`Checker`]) with sleep-set partial-order
//!   reduction and optional CHESS-style preemption bounding, replaying
//!   recorded choice prefixes until the state space is exhausted.
//! - **A mutation registry** ([`Mutation`], [`mutation_active`]): the
//!   protocol crates compile tiny cfg-gated "broken variant" hooks, and
//!   kill tests assert the explorer detects each one — evidence the
//!   checker has teeth, not just green lights.
//!
//! See DESIGN.md §7 for the protocol porting guide and the model's
//! documented strengthenings.

mod clock;
mod dfs;
mod engine;

pub mod atomic;
pub mod cell;
pub mod lock;
pub mod thread;

pub use dfs::{CheckResult, Checker, Failure, Report};
pub use engine::{current_thread_index, mutation_active};

/// Seeded protocol mutations for checker kill tests. Each variant names a
/// deliberately broken build of one protocol (a weakened ordering or a
/// removed check) compiled behind `cfg(spitfire_modelcheck)` in the
/// protocol crate and switched on at runtime per-[`Checker`], so one test
/// binary hosts every mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Mutation {
    /// `PinWord::open`'s publishing CAS downgraded `Release` → `Relaxed`:
    /// a pinning reader can observe the OPEN bit without the payload
    /// store that precedes it.
    PinOpenRelaxed,
    /// `PinWord::close`'s CAS downgraded `AcqRel` → `Relaxed`: the closer
    /// no longer synchronizes with the last unpin, so frame reuse races
    /// with the final reader.
    PinCloseRelaxed,
    /// `PinWord::unpin`'s CAS downgraded `Release` → `Relaxed`: the
    /// reader's critical section can leak past the unpin.
    PinUnpinRelaxed,
    /// `PinWord::try_pin` check-then-increment instead of a full-word
    /// CAS: a pin can land after `close` claimed quiescence.
    PinBlindPin,
    /// `AtomicBitmap::set` as load-then-store instead of `fetch_or`:
    /// concurrent reference-bit touches lose updates.
    BitmapSetSplit,
    /// `StripedCounter::add` as load-then-store instead of `fetch_add`:
    /// same-stripe increments lose updates.
    CounterAddSplit,
    /// `ConcurrentMap::get_or_insert_with` skips the re-check under the
    /// write lock: two racing missers insert distinct values and observe
    /// different descriptors for the same page.
    MapUpgradeNoRecheck,
    /// `PinWord::shadow_commit` skips the version re-check after closing
    /// the word: a shadow copy that raced a writer commits anyway and the
    /// write is lost when the stale copy is installed.
    ShadowSkipVersionCheck,
}
