//! Instrumented drop-in replacements for `std::sync::atomic` types.
//!
//! Inside a model execution (i.e. on a thread spawned by the
//! [`Checker`](crate::Checker)), every operation routes through the
//! engine's scheduler and memory model. Outside one — normal unit tests,
//! or a `--cfg spitfire_modelcheck` build of a crate whose other tests
//! don't use the checker — operations fall through to the real atomic, so
//! instrumented code keeps working unmodeled.
//!
//! Each instrumented atomic lazily registers itself with the current
//! execution's engine on first use and caches the assigned location id
//! keyed by execution id, so statics and long-lived objects re-register
//! cleanly across the thousands of executions one exploration runs.

use std::sync::atomic::AtomicU64 as RawCache;
pub use std::sync::atomic::Ordering;

use crate::engine::{with_ctx, Ctx};

/// Bits reserved for the location id inside the per-atomic cache word;
/// the execution id occupies the rest.
const LOC_BITS: u32 = 20;
const LOC_MASK: u64 = (1 << LOC_BITS) - 1;

trait Scalar: Copy {
    fn to_bits(self) -> u64;
    fn from_bits(bits: u64) -> Self;
}

macro_rules! int_scalar {
    ($ty:ty) => {
        impl Scalar for $ty {
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $ty
            }
        }
    };
}

int_scalar!(u8);
int_scalar!(u32);
int_scalar!(u64);
int_scalar!(usize);
int_scalar!(i64);

impl Scalar for bool {
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits != 0
    }
}

macro_rules! instrumented_atomic {
    ($name:ident, $ty:ty, $raw:ty) => {
        /// Instrumented counterpart of the std atomic of the same name.
        pub struct $name {
            real: $raw,
            /// Packed `exec_id << LOC_BITS | loc`; 0 = unregistered.
            loc: RawCache,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self {
                    real: <$raw>::new(v),
                    loc: RawCache::new(0),
                }
            }

            /// Location id within the current execution, registering on
            /// first touch.
            fn loc(&self, ctx: &Ctx) -> usize {
                // relaxed: the loc cache is write-once per (execution, atomic); a racing re-registration is idempotent and the engine hands out the id under its own lock.
                let packed = self.loc.load(Ordering::Relaxed);
                let eid = ctx.engine.exec_id();
                if packed >> LOC_BITS == eid {
                    return (packed & LOC_MASK) as usize;
                }
                // relaxed: reading our own initial value for registration; modeled accesses never go through `real` directly.
                let init = self.real.load(Ordering::Relaxed).to_bits();
                let id = ctx.engine.register_atomic(init);
                debug_assert!((id as u64) < (1 << LOC_BITS));
                self.loc
                    // relaxed: idempotent cache publish, as above.
                    .store((eid << LOC_BITS) | id as u64, Ordering::Relaxed);
                id
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                match with_ctx(|c| c.engine.atomic_load(c.tid, self.loc(c), ord)) {
                    Some(bits) => Scalar::from_bits(bits),
                    None => self.real.load(ord),
                }
            }

            pub fn store(&self, val: $ty, ord: Ordering) {
                match with_ctx(|c| {
                    c.engine
                        .atomic_store(c.tid, self.loc(c), val.to_bits(), ord)
                }) {
                    Some(()) => {}
                    None => self.real.store(val, ord),
                }
            }

            pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                match with_ctx(|c| {
                    c.engine
                        .atomic_rmw(c.tid, self.loc(c), ord, ord, "swap", |_| {
                            Some(val.to_bits())
                        })
                        .0
                }) {
                    Some(bits) => Scalar::from_bits(bits),
                    None => self.real.swap(val, ord),
                }
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                match with_ctx(|c| {
                    c.engine
                        .atomic_rmw(c.tid, self.loc(c), success, failure, "cas", |old| {
                            (old == current.to_bits()).then_some(new.to_bits())
                        })
                }) {
                    Some((old, true)) => Ok(Scalar::from_bits(old)),
                    Some((old, false)) => Err(Scalar::from_bits(old)),
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            /// Strengthening: the model's weak CAS never fails spuriously,
            /// so loops relying on eventual success terminate and the
            /// explored state space stays finite.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Scalar::from_bits(0))
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Reading engine state here would need the baton; show the
                // un-modeled value, which is exact outside a model run.
                f.debug_tuple(stringify!($name))
                    // relaxed: Debug output is advisory.
                    .field(&self.real.load(Ordering::Relaxed))
                    .finish()
            }
        }
    };
}

macro_rules! instrumented_fetch_ops {
    ($name:ident, $ty:ty, $raw:ty) => {
        impl $name {
            pub fn fetch_add(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(
                    ord,
                    "fetch_add",
                    |v| v.wrapping_add(n),
                    |r| r.fetch_add(n, ord),
                )
            }

            pub fn fetch_sub(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(
                    ord,
                    "fetch_sub",
                    |v| v.wrapping_sub(n),
                    |r| r.fetch_sub(n, ord),
                )
            }

            pub fn fetch_and(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(ord, "fetch_and", |v| v & n, |r| r.fetch_and(n, ord))
            }

            pub fn fetch_or(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(ord, "fetch_or", |v| v | n, |r| r.fetch_or(n, ord))
            }

            pub fn fetch_xor(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(ord, "fetch_xor", |v| v ^ n, |r| r.fetch_xor(n, ord))
            }

            pub fn fetch_max(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(ord, "fetch_max", |v| v.max(n), |r| r.fetch_max(n, ord))
            }

            pub fn fetch_min(&self, n: $ty, ord: Ordering) -> $ty {
                self.rmw_typed(ord, "fetch_min", |v| v.min(n), |r| r.fetch_min(n, ord))
            }

            fn rmw_typed(
                &self,
                ord: Ordering,
                name: &'static str,
                f: impl Fn($ty) -> $ty,
                fallback: impl FnOnce(&$raw) -> $ty,
            ) -> $ty {
                match with_ctx(|c| {
                    c.engine
                        .atomic_rmw(c.tid, self.loc(c), ord, ord, name, |old| {
                            Some(f(Scalar::from_bits(old)).to_bits())
                        })
                        .0
                }) {
                    Some(bits) => Scalar::from_bits(bits),
                    None => fallback(&self.real),
                }
            }
        }
    };
}

instrumented_atomic!(AtomicU8, u8, std::sync::atomic::AtomicU8);
instrumented_atomic!(AtomicU32, u32, std::sync::atomic::AtomicU32);
instrumented_atomic!(AtomicU64, u64, std::sync::atomic::AtomicU64);
instrumented_atomic!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
instrumented_atomic!(AtomicI64, i64, std::sync::atomic::AtomicI64);
instrumented_atomic!(AtomicBool, bool, std::sync::atomic::AtomicBool);

instrumented_fetch_ops!(AtomicU8, u8, std::sync::atomic::AtomicU8);
instrumented_fetch_ops!(AtomicU32, u32, std::sync::atomic::AtomicU32);
instrumented_fetch_ops!(AtomicU64, u64, std::sync::atomic::AtomicU64);
instrumented_fetch_ops!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
instrumented_fetch_ops!(AtomicI64, i64, std::sync::atomic::AtomicI64);

impl AtomicBool {
    pub fn fetch_or(&self, n: bool, ord: Ordering) -> bool {
        match with_ctx(|c| {
            c.engine
                .atomic_rmw(c.tid, self.loc(c), ord, ord, "fetch_or", |old| {
                    Some((Scalar::from_bits(old) || n).to_bits())
                })
                .0
        }) {
            Some(bits) => Scalar::from_bits(bits),
            None => self.real.fetch_or(n, ord),
        }
    }

    pub fn fetch_and(&self, n: bool, ord: Ordering) -> bool {
        match with_ctx(|c| {
            c.engine
                .atomic_rmw(c.tid, self.loc(c), ord, ord, "fetch_and", |old| {
                    Some((Scalar::from_bits(old) && n).to_bits())
                })
                .0
        }) {
            Some(bits) => Scalar::from_bits(bits),
            None => self.real.fetch_and(n, ord),
        }
    }
}

/// Memory fence. Modeled as a `SeqCst` fence regardless of `ord`
/// (strengthening — see the engine docs).
pub fn fence(ord: Ordering) {
    if with_ctx(|c| c.engine.fence(c.tid, ord)).is_none() {
        std::sync::atomic::fence(ord);
    }
}

/// Compiler fence: no cross-thread effect, so the model ignores it.
pub fn compiler_fence(ord: Ordering) {
    if with_ctx(|_| ()).is_none() {
        std::sync::atomic::compiler_fence(ord);
    }
}
