//! Model-thread spawn/join, mirroring the `std::thread` subset protocol
//! tests need. Only usable from inside a model execution; ported library
//! code never spawns threads, so no fallback path is provided.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::engine::{self, Engine};

pub struct JoinHandle<T> {
    engine: Arc<Engine>,
    tid: usize,
    _result: PhantomData<T>,
}

impl<T: 'static> JoinHandle<T> {
    pub(crate) fn new(engine: Arc<Engine>, tid: usize) -> Self {
        Self {
            engine,
            tid,
            _result: PhantomData,
        }
    }

    /// Block (in model time) until the thread finishes and return its
    /// result. A panicking target aborts the whole execution with its
    /// message, so unlike `std` there is no `Err` case to surface here.
    pub fn join(self) -> T {
        let me = engine::current_thread_index().expect("join outside a model run");
        *self
            .engine
            .join_thread(me, self.tid)
            .downcast::<T>()
            .expect("join result type")
    }
}

/// Spawn a model thread. The closure runs under the scheduler: each of
/// its instrumented operations becomes a schedule point.
pub fn spawn<T: Send + 'static>(body: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    engine::spawn_model_thread(body)
}

/// Model-scheduler hint; a no-op (the scheduler already owns all
/// interleaving decisions, so there is nothing to yield to).
pub fn yield_now() {}
