//! Model-aware `Mutex` / `RwLock` with the (non-poisoning) parking_lot
//! surface the repo uses.
//!
//! The data lives under a real `std::sync` lock so the fallback path is
//! sound; inside a model execution the engine's lock state decides who
//! may acquire (making blocking, contention, and deadlock explorable) and
//! carries the happens-before clocks. The real lock is then uncontended
//! by construction, so the inner `try_lock` never fails.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicU64 as RawCache;
use std::sync::atomic::Ordering;

use crate::engine::{with_ctx, Ctx};

const LOC_BITS: u32 = 20;
const LOC_MASK: u64 = (1 << LOC_BITS) - 1;

fn register(cache: &RawCache, ctx: &Ctx) -> usize {
    // relaxed: write-once lock-id cache; racing registrations are idempotent (see `atomic.rs`).
    let packed = cache.load(Ordering::Relaxed);
    let eid = ctx.engine.exec_id();
    if packed >> LOC_BITS == eid {
        return (packed & LOC_MASK) as usize;
    }
    let id = ctx.engine.register_lock();
    debug_assert!((id as u64) < (1 << LOC_BITS));
    // relaxed: idempotent cache publish, as above.
    cache.store((eid << LOC_BITS) | id as u64, Ordering::Relaxed);
    id
}

/// Mutual exclusion with model-checked blocking and happens-before.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    loc: RawCache,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
            loc: RawCache::new(0),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let modeled = with_ctx(|c| {
            c.engine.lock_acquire(c.tid, register(&self.loc, c), true);
        })
        .is_some();
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard {
            lock: self,
            inner: Some(inner),
            modeled,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    modeled: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard alive")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard alive")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model lock, so by the time
        // another model thread is granted the model lock the real one is
        // free.
        drop(self.inner.take());
        // During a panic unwind the execution is aborting anyway, and a
        // nested model call would panic inside a destructor (an abort).
        if self.modeled && !std::thread::panicking() {
            with_ctx(|c| {
                c.engine
                    .lock_release(c.tid, register(&self.lock.loc, c), true)
            });
        }
    }
}

/// Reader-writer lock with model-checked blocking and happens-before.
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
    loc: RawCache,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
            loc: RawCache::new(0),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let modeled = with_ctx(|c| {
            c.engine.lock_acquire(c.tid, register(&self.loc, c), false);
        })
        .is_some();
        let inner = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RwLockReadGuard {
            lock: self,
            inner: Some(inner),
            modeled,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let modeled = with_ctx(|c| {
            c.engine.lock_acquire(c.tid, register(&self.loc, c), true);
        })
        .is_some();
        let inner = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
            modeled,
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    modeled: bool,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard alive")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        // During a panic unwind the execution is aborting anyway, and a
        // nested model call would panic inside a destructor (an abort).
        if self.modeled && !std::thread::panicking() {
            with_ctx(|c| {
                c.engine
                    .lock_release(c.tid, register(&self.lock.loc, c), false)
            });
        }
    }
}

pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: bool,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard alive")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard alive")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        // During a panic unwind the execution is aborting anyway, and a
        // nested model call would panic inside a destructor (an abort).
        if self.modeled && !std::thread::panicking() {
            with_ctx(|c| {
                c.engine
                    .lock_release(c.tid, register(&self.lock.loc, c), true)
            });
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex(..)")
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}
