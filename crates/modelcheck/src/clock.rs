//! Vector clocks over the (small, fixed) set of model threads.

/// Maximum number of model threads one exploration may create, including
/// the model main thread. Interleaving exploration is exponential in
/// thread count; protocols are checked with 2–3 threads (plus main), so a
/// small fixed bound keeps clocks copyable and comparisons branch-free.
pub const MAX_THREADS: usize = 5;

/// A fixed-width vector clock: `clock[t]` is the number of operations of
/// model thread `t` that happen-before the owner's current point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VClock {
    lamport: [u32; MAX_THREADS],
}

impl VClock {
    /// The zero clock (happens-before everything's start).
    pub const fn new() -> Self {
        VClock {
            lamport: [0; MAX_THREADS],
        }
    }

    /// Advance the owner's own component (one more local operation).
    #[inline]
    pub fn bump(&mut self, t: usize) -> u32 {
        self.lamport[t] += 1;
        self.lamport[t]
    }

    /// Pointwise maximum: after `self.join(o)`, everything ordered before
    /// `o` is ordered before the owner too.
    #[inline]
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.lamport.iter_mut().zip(other.lamport.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Whether an event stamped (`thread`, `stamp`) happens-before a point
    /// with this clock.
    #[inline]
    pub fn covers(&self, thread: usize, stamp: u32) -> bool {
        self.lamport[thread] >= stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        a.bump(0);
        a.bump(0);
        b.bump(1);
        a.join(&b);
        assert!(a.covers(0, 2) && !a.covers(0, 3));
        assert!(a.covers(1, 1));
        assert!(!a.covers(1, 2));
    }
}
