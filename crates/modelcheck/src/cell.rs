//! A data-race-detecting cell for non-atomic shared state.
//!
//! [`RaceCell`] holds plain data that the surrounding protocol claims is
//! protected by happens-before (a lock, or publish/acquire on an atomic).
//! Inside a model execution every access is checked with vector clocks:
//! two accesses, at least one a write, with no happens-before between
//! them, fail the execution as a data race — in *any* schedule, without
//! needing the racing operations to physically interleave. This is the
//! detector that catches a `Release` store downgraded to `Relaxed` even
//! when the racy value read happens to look benign.

use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64 as RawCache;
use std::sync::atomic::Ordering;

use crate::engine::{with_ctx, Ctx};

const LOC_BITS: u32 = 20;
const LOC_MASK: u64 = (1 << LOC_BITS) - 1;

/// Plain shared data with model-checked race detection. Outside a model
/// run accesses are unchecked and unsynchronized — this is a test-harness
/// type, not a general-purpose cell.
pub struct RaceCell<T> {
    value: UnsafeCell<T>,
    loc: RawCache,
}

// SAFETY: inside a model run the engine serializes all access (one thread
// holds the baton at a time) and flags unsynchronized access pairs as
// failures; outside one, RaceCell is only used single-threaded by tests.
unsafe impl<T: Send> Sync for RaceCell<T> {}

impl<T: Copy> RaceCell<T> {
    pub const fn new(value: T) -> Self {
        Self {
            value: UnsafeCell::new(value),
            loc: RawCache::new(0),
        }
    }

    fn loc(&self, ctx: &Ctx) -> usize {
        // relaxed: write-once loc cache; racing registrations are idempotent (see `atomic.rs`).
        let packed = self.loc.load(Ordering::Relaxed);
        let eid = ctx.engine.exec_id();
        if packed >> LOC_BITS == eid {
            return (packed & LOC_MASK) as usize;
        }
        let id = ctx.engine.register_cell();
        debug_assert!((id as u64) < (1 << LOC_BITS));
        self.loc
            // relaxed: idempotent cache publish, as above.
            .store((eid << LOC_BITS) | id as u64, Ordering::Relaxed);
        id
    }

    /// Read the value, failing the execution on a read/write race.
    pub fn get(&self) -> T {
        with_ctx(|c| c.engine.cell_read(c.tid, self.loc(c)));
        // SAFETY: in a model run we hold the scheduler baton (cell_read
        // returned), so no other model thread executes concurrently;
        // outside one the cell is single-threaded by contract.
        unsafe { *self.value.get() }
    }

    /// Write the value, failing the execution on a write/any race.
    pub fn set(&self, value: T) {
        with_ctx(|c| c.engine.cell_write(c.tid, self.loc(c)));
        // SAFETY: as in `get`; the baton serializes the actual access.
        unsafe { *self.value.get() = value }
    }

    /// Read-modify-write as one unchecked step (still a write access for
    /// race detection purposes).
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        with_ctx(|c| c.engine.cell_write(c.tid, self.loc(c)));
        // SAFETY: as in `get`; the baton serializes the actual access.
        unsafe { *self.value.get() = f(*self.value.get()) }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RaceCell(..)")
    }
}
