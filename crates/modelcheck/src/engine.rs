//! The execution engine: runs one controlled interleaving of a model
//! program, with every shared-memory operation passing through a
//! cooperative scheduler and an operational release/acquire memory model.
//!
//! # How one execution works
//!
//! Model threads are real OS threads, but exactly one runs at a time: each
//! instrumented operation first *announces* itself and parks at a schedule
//! point; a controller (the thread that called [`run_execution`]) picks
//! which parked thread proceeds. Picking is a recorded *choice*; so is the
//! selection of which store a weakly-ordered load observes. The DFS driver
//! in `dfs.rs` replays prefixes of recorded choices to enumerate every
//! interleaving.
//!
//! # Memory model
//!
//! Each atomic location keeps its full modification order as a list of
//! stores, each stamped with the writer's vector clock. A load may observe
//! any store that is not hidden by coherence (per-thread floors) or by
//! happens-before (a load must not observe a store older than the newest
//! one that happens-before it). `Acquire` loads joining a `Release` store's
//! clock is the *only* way cross-thread happens-before is created by
//! atomics — so a store or load incorrectly downgraded to `Relaxed` yields
//! executions where another thread reads stale values or races, which the
//! assertions and the [`RaceCell`](crate::cell::RaceCell) detector turn
//! into reported bugs.
//!
//! Deliberate strengthenings (all reduce the set of explored behaviors on
//! paths the repo's protocols do not rely on; documented in DESIGN.md §7):
//! `SeqCst` loads read only the latest store; a failed `compare_exchange`
//! reads the latest store; `compare_exchange_weak` never fails spuriously;
//! fences are treated as `SeqCst` fences.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::{VClock, MAX_THREADS};
use crate::Mutation;

/// Sentinel "thread id" meaning the controller holds the baton.
const CONTROLLER: usize = usize::MAX;

/// Cap on operations per execution; exceeding it means a schedule-dependent
/// livelock (or a model program far too big to explore) and is reported as
/// a failure rather than hanging the test.
pub(crate) const DEFAULT_MAX_OPS: usize = 20_000;

/// What a shared-memory operation touches, for dependence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LocRef {
    /// An instrumented atomic location.
    Atomic(usize),
    /// A [`RaceCell`](crate::cell::RaceCell) location.
    Cell(usize),
    /// A model mutex / rwlock.
    Lock(usize),
    /// A model thread (join / exit).
    Thread(usize),
}

/// One announced operation: where it acts and whether it can write.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpDesc {
    pub loc: LocRef,
    pub write: bool,
    pub name: &'static str,
}

/// Two operations are dependent when reordering them can change the
/// outcome: same location, at least one side writing. Lock and thread
/// operations are announced as writes, so they are dependent with every
/// operation on the same object.
fn dependent(a: &OpDesc, b: &OpDesc) -> bool {
    a.loc == b.loc && (a.write || b.write)
}

/// Why a thread cannot run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockReason {
    Join(usize),
    Lock { id: usize, write: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing user code (holds the baton, or is starting up).
    Running,
    /// Parked at a schedule point with an announced operation.
    Parked,
    /// Waiting for a lock or a join target.
    Blocked(BlockReason),
    Finished,
}

struct ThreadSlot {
    status: Status,
    clock: VClock,
    announced: Option<OpDesc>,
    blocked: Option<BlockReason>,
    /// Result of the thread body, for `JoinHandle::join`.
    result: Option<Box<dyn Any + Send>>,
}

/// One store in a location's modification order.
#[derive(Debug, Clone)]
struct Store {
    val: u64,
    writer: usize,
    stamp: u32,
    /// Clock an acquiring reader synchronizes with; `None` for a store
    /// that heads no release sequence (a `Relaxed` store).
    release: Option<VClock>,
}

struct Location {
    stores: Vec<Store>,
    /// Coherence floor per thread: the index of the oldest store this
    /// thread may still observe (reads never go backwards).
    floor: [usize; MAX_THREADS],
}

#[derive(Default)]
struct LockState {
    writer: Option<usize>,
    readers: u32,
    /// Clock of the last write-unlock; joined by every acquirer.
    write_release: VClock,
    /// Join of all read-unlock clocks since; joined by write acquirers.
    read_release: VClock,
}

#[derive(Default)]
struct CellState {
    writer: Option<(usize, u32)>,
    reads: Vec<(usize, u32)>,
}

/// Kind of a recorded nondeterministic choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChoiceKind {
    /// Which parked thread runs next; options are thread ids.
    Thread,
    /// Which store a load observes; options are store indices.
    Value,
}

/// One recorded choice point with every option that was available.
///
/// For thread choices, `asleep` flags options the sleep set suppresses at
/// this point: the engine never picks them by default and the DFS driver
/// skips exploring them (a sleeping thread's next op commutes with
/// everything executed since a sibling branch explored it). The choice
/// structure itself stays a function of `options` alone, so replaying a
/// prefix never shifts choice positions.
#[derive(Debug, Clone)]
pub(crate) struct Choice {
    pub kind: ChoiceKind,
    pub options: Vec<usize>,
    /// Per-option sleep flags; all-false for value choices.
    pub asleep: Vec<bool>,
    /// Index into `options` that this execution took.
    pub picked: usize,
}

/// A forced pick for replay, plus the sleep-set additions the DFS driver
/// derived from already-explored sibling branches.
#[derive(Debug, Clone)]
pub(crate) struct PrefixEntry {
    pub picked: usize,
    pub sleep_add: Vec<usize>,
}

/// Everything the DFS driver needs from one finished execution.
pub(crate) struct ExecOutcome {
    pub trace: Vec<Choice>,
    pub failure: Option<String>,
    /// The execution was cut short because every runnable thread was in
    /// the sleep set — an interleaving equivalent to one already explored.
    pub pruned: bool,
    pub ops: usize,
}

struct EngineState {
    threads: Vec<ThreadSlot>,
    locations: Vec<Location>,
    locks: Vec<LockState>,
    cells: Vec<CellState>,
    /// Approximate SC order: joined by every `SeqCst` operation.
    sc: VClock,
    trace: Vec<Choice>,
    prefix: Vec<PrefixEntry>,
    /// Baton holder: a thread id, or [`CONTROLLER`].
    active: usize,
    last_thread: usize,
    preemptions: usize,
    sleep: [bool; MAX_THREADS],
    ops: usize,
    oplog: Vec<(usize, OpDesc)>,
    failure: Option<String>,
    pruned: bool,
    abort: bool,
}

/// Panic payload used to unwind model threads when an execution aborts;
/// swallowed by the per-thread `catch_unwind`.
struct AbortToken;

/// Options threaded from [`crate::Checker`] into each execution.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExecOpts {
    pub max_ops: usize,
    pub preemption_bound: Option<usize>,
}

pub(crate) struct Engine {
    state: Mutex<EngineState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    opts: ExecOpts,
    mutation: Option<Mutation>,
    /// Unique per execution; instrumented atomics key their cached
    /// location id on it so stale ids from a previous execution are
    /// re-registered instead of misused.
    exec_id: u64,
}

static NEXT_EXEC_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

#[derive(Clone)]
pub(crate) struct Ctx {
    pub engine: Arc<Engine>,
    pub tid: usize,
}

/// Run `f` with the calling thread's model context, if it is a model
/// thread inside an execution.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// Model-thread index of the calling thread (`None` outside a model run).
pub fn current_thread_index() -> Option<usize> {
    with_ctx(|c| c.tid)
}

/// Whether `m` is the active mutation of the calling thread's execution.
pub fn mutation_active(m: Mutation) -> bool {
    with_ctx(|c| c.engine.mutation == Some(m)).unwrap_or(false)
}

impl Engine {
    fn new(prefix: Vec<PrefixEntry>, opts: ExecOpts, mutation: Option<Mutation>) -> Self {
        Engine {
            state: Mutex::new(EngineState {
                threads: Vec::new(),
                locations: Vec::new(),
                locks: Vec::new(),
                cells: Vec::new(),
                sc: VClock::new(),
                trace: Vec::new(),
                prefix,
                active: CONTROLLER,
                last_thread: 0,
                preemptions: 0,
                sleep: [false; MAX_THREADS],
                ops: 0,
                oplog: Vec::new(),
                failure: None,
                pruned: false,
                abort: false,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            opts,
            mutation,
            // relaxed: execution ids need uniqueness only.
            exec_id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    pub(crate) fn exec_id(&self) -> u64 {
        self.exec_id
    }

    // ---- registration -----------------------------------------------------

    pub(crate) fn register_atomic(&self, init: u64) -> usize {
        let mut st = self.state.lock().unwrap();
        st.locations.push(Location {
            // The initial value acts as a store that happens-before every
            // access (writer 0 at stamp 0 is covered by every clock).
            stores: vec![Store {
                val: init,
                writer: 0,
                stamp: 0,
                release: Some(VClock::new()),
            }],
            floor: [0; MAX_THREADS],
        });
        st.locations.len() - 1
    }

    pub(crate) fn register_lock(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.locks.push(LockState::default());
        st.locks.len() - 1
    }

    pub(crate) fn register_cell(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.cells.push(CellState::default());
        st.cells.len() - 1
    }

    // ---- scheduling core --------------------------------------------------

    /// Park at a schedule point announcing `desc`; returns once the
    /// controller hands this thread the baton.
    fn schedule_point(&self, tid: usize, desc: OpDesc) {
        let mut st = self.state.lock().unwrap();
        st.threads[tid].announced = Some(desc);
        st.threads[tid].status = Status::Parked;
        // Hand the baton back; only the controller can re-grant it.
        st.active = CONTROLLER;
        self.cv.notify_all();
        while !st.abort && st.active != tid {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.threads[tid].status = Status::Running;
    }

    /// Schedule, then begin the operation: bumps the op counter, applies
    /// the sleep-set wake rule, and returns the state lock so the caller
    /// can apply the operation's memory effects atomically.
    fn op_point(&self, tid: usize, desc: OpDesc) -> MutexGuard<'_, EngineState> {
        self.schedule_point(tid, desc);
        let mut st = self.state.lock().unwrap();
        st.ops += 1;
        if st.ops > self.opts.max_ops {
            self.fail(
                st,
                format!(
                    "execution exceeded {} operations (schedule-dependent livelock?)",
                    self.opts.max_ops
                ),
            );
        }
        // Wake rule: a sleeping thread stays asleep only while every
        // executed operation is independent of its announced one.
        for t in 0..st.threads.len() {
            if st.sleep[t] {
                if let Some(a) = st.threads[t].announced {
                    if dependent(&a, &desc) {
                        st.sleep[t] = false;
                    }
                }
            }
        }
        st.oplog.push((tid, desc));
        st
    }

    /// Record a failure, abort the execution, and unwind the caller.
    fn fail(&self, mut st: MutexGuard<'_, EngineState>, msg: String) -> ! {
        if st.failure.is_none() {
            let log = render_oplog(&st.oplog, &st.threads);
            st.failure = Some(format!("{msg}\n{log}"));
        }
        st.abort = true;
        self.cv.notify_all();
        drop(st);
        panic::panic_any(AbortToken);
    }

    /// Consume (or record) one nondeterministic choice among `options`,
    /// returning the chosen element. Fresh (beyond-prefix) choices take
    /// the first non-sleeping option.
    fn consume_choice(
        &self,
        st: &mut EngineState,
        kind: ChoiceKind,
        options: Vec<usize>,
        asleep: Vec<bool>,
    ) -> usize {
        let at = st.trace.len();
        let picked = if at < st.prefix.len() {
            let e = &st.prefix[at];
            for &t in &e.sleep_add {
                st.sleep[t] = true;
            }
            e.picked
        } else {
            asleep.iter().position(|&a| !a).unwrap_or(0)
        };
        debug_assert!(picked < options.len(), "replay diverged from recording");
        let value = options[picked];
        st.trace.push(Choice {
            kind,
            options,
            asleep,
            picked,
        });
        value
    }

    /// The controller: repeatedly waits for every model thread to park,
    /// then decides which one runs next, until the model program finishes,
    /// fails, or is pruned.
    fn controller_loop(&self) {
        loop {
            let mut st = self.state.lock().unwrap();
            while st.threads.iter().any(|t| t.status == Status::Running) && st.failure.is_none() {
                st = self.cv.wait(st).unwrap();
            }
            if st.failure.is_some() || st.abort {
                st.abort = true;
                self.cv.notify_all();
                return;
            }
            // Unblock threads whose resource became available. All
            // eligible waiters become runnable; the schedule choice picks
            // the winner and losers re-block.
            for t in 0..st.threads.len() {
                if let Status::Blocked(reason) = st.threads[t].status {
                    let free = match reason {
                        BlockReason::Join(target) => st.threads[target].status == Status::Finished,
                        BlockReason::Lock { id, write } => {
                            let l = &st.locks[id];
                            if write {
                                l.writer.is_none() && l.readers == 0
                            } else {
                                l.writer.is_none()
                            }
                        }
                    };
                    if free {
                        st.threads[t].status = Status::Parked;
                    }
                }
            }
            let runnable: Vec<usize> = (0..st.threads.len())
                .filter(|&t| st.threads[t].status == Status::Parked)
                .collect();
            if runnable.is_empty() {
                if st.threads.iter().all(|t| t.status == Status::Finished) {
                    st.abort = true;
                    self.cv.notify_all();
                    return; // normal completion
                }
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.status {
                        Status::Blocked(r) => Some(format!("T{i} on {r:?}")),
                        _ => None,
                    })
                    .collect();
                let log = render_oplog(&st.oplog, &st.threads);
                st.failure = Some(format!("deadlock: {}\n{log}", blocked.join(", ")));
                st.abort = true;
                self.cv.notify_all();
                return;
            }
            // Deterministic option order: continuing the last-run thread
            // first keeps the default DFS path context-switch-free.
            let last = st.last_thread;
            let mut options = runnable;
            options.sort_unstable();
            if let Some(pos) = options.iter().position(|&t| t == last) {
                options.remove(pos);
                options.insert(0, last);
            }
            // Preemption bounding (CHESS-style): once the budget is
            // spent, a thread that can continue must continue.
            if let Some(bound) = self.opts.preemption_bound {
                if st.preemptions >= bound && options.contains(&last) {
                    options = vec![last];
                }
            }
            // Sleep-set reduction: a sleeping thread's next op commutes
            // with everything run since a sibling branch explored it, so
            // it is never picked; if every option sleeps, the rest of
            // this interleaving is equivalent to an explored one.
            let asleep: Vec<bool> = options.iter().map(|&t| st.sleep[t]).collect();
            if asleep.iter().all(|&a| a) {
                st.pruned = true;
                st.abort = true;
                self.cv.notify_all();
                return;
            }
            let pick = if options.len() == 1 {
                options[0]
            } else {
                self.consume_choice(&mut st, ChoiceKind::Thread, options, asleep)
            };
            if pick != last
                && st
                    .threads
                    .get(last)
                    .is_some_and(|t| t.status == Status::Parked)
            {
                st.preemptions += 1;
            }
            st.last_thread = pick;
            // The controller makes the status transition itself: if it
            // only set `active` and looped, it would observe the pick
            // still Parked until the OS thread wakes and would record
            // spurious extra choices.
            st.threads[pick].status = Status::Running;
            st.active = pick;
            self.cv.notify_all();
        }
    }

    // ---- atomics ----------------------------------------------------------

    fn acquire_ish(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn release_ish(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    pub(crate) fn atomic_load(&self, tid: usize, loc: usize, ord: Ordering) -> u64 {
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Atomic(loc),
                write: false,
                name: "load",
            },
        );
        let clock = st.threads[tid].clock;
        let n = st.locations[loc].stores.len();
        // Happens-before floor: the newest store this thread is
        // guaranteed to see; anything older is hidden.
        let hb_floor = st.locations[loc]
            .stores
            .iter()
            .rposition(|s| clock.covers(s.writer, s.stamp))
            .expect("initial store is always covered");
        let floor = hb_floor.max(st.locations[loc].floor[tid]);
        let idx = if ord == Ordering::SeqCst {
            // Strengthening: SC loads read the latest store.
            n - 1
        } else {
            // Newest-first so the default DFS path behaves like a
            // sequentially consistent run.
            let candidates: Vec<usize> = (floor..n).rev().collect();
            if candidates.len() == 1 {
                candidates[0]
            } else {
                let flags = vec![false; candidates.len()];
                self.consume_choice(&mut st, ChoiceKind::Value, candidates, flags)
            }
        };
        st.locations[loc].floor[tid] = idx;
        let (val, release) = {
            let s = &st.locations[loc].stores[idx];
            (s.val, s.release)
        };
        if Self::acquire_ish(ord) {
            if let Some(rel) = release {
                st.threads[tid].clock.join(&rel);
            }
            if ord == Ordering::SeqCst {
                let sc = st.sc;
                st.threads[tid].clock.join(&sc);
            }
        }
        val
    }

    pub(crate) fn atomic_store(&self, tid: usize, loc: usize, val: u64, ord: Ordering) {
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Atomic(loc),
                write: true,
                name: "store",
            },
        );
        if ord == Ordering::SeqCst {
            let sc = st.sc;
            st.threads[tid].clock.join(&sc);
        }
        let stamp = st.threads[tid].clock.bump(tid);
        let clock = st.threads[tid].clock;
        if ord == Ordering::SeqCst {
            st.sc.join(&clock);
        }
        let release = Self::release_ish(ord).then_some(clock);
        st.locations[loc].stores.push(Store {
            val,
            writer: tid,
            stamp,
            release,
        });
        let last = st.locations[loc].stores.len() - 1;
        st.locations[loc].floor[tid] = last;
    }

    /// Shared RMW core: reads the latest store (modification-order
    /// atomicity), writes `f(old)` if it returns `Some`, and returns the
    /// old value. Release sequences are preserved: the new store carries
    /// the previous head's release clock even when the RMW is relaxed.
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        loc: usize,
        success: Ordering,
        failure: Ordering,
        name: &'static str,
        f: impl FnOnce(u64) -> Option<u64>,
    ) -> (u64, bool) {
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Atomic(loc),
                write: true,
                name,
            },
        );
        let last_idx = st.locations[loc].stores.len() - 1;
        let (old, prev_release) = {
            let s = &st.locations[loc].stores[last_idx];
            (s.val, s.release)
        };
        st.locations[loc].floor[tid] = last_idx;
        match f(old) {
            Some(new) => {
                if Self::acquire_ish(success) {
                    if let Some(rel) = prev_release {
                        st.threads[tid].clock.join(&rel);
                    }
                }
                if success == Ordering::SeqCst {
                    let sc = st.sc;
                    st.threads[tid].clock.join(&sc);
                }
                let stamp = st.threads[tid].clock.bump(tid);
                let clock = st.threads[tid].clock;
                if success == Ordering::SeqCst {
                    st.sc.join(&clock);
                }
                let release = if Self::release_ish(success) {
                    let mut r = prev_release.unwrap_or_default();
                    r.join(&clock);
                    Some(r)
                } else {
                    prev_release
                };
                st.locations[loc].stores.push(Store {
                    val: new,
                    writer: tid,
                    stamp,
                    release,
                });
                let l = st.locations[loc].stores.len() - 1;
                st.locations[loc].floor[tid] = l;
                (old, true)
            }
            None => {
                // Strengthening: a failed CAS reads the latest store.
                if Self::acquire_ish(failure) {
                    if let Some(rel) = prev_release {
                        st.threads[tid].clock.join(&rel);
                    }
                }
                (old, false)
            }
        }
    }

    /// Fence, approximated as a SeqCst fence regardless of `ord`
    /// (strengthening; the repo's protocols use no standalone fences).
    pub(crate) fn fence(&self, tid: usize, _ord: Ordering) {
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Thread(tid),
                write: false,
                name: "fence",
            },
        );
        let sc = st.sc;
        st.threads[tid].clock.join(&sc);
        st.threads[tid].clock.bump(tid);
        let clock = st.threads[tid].clock;
        st.sc.join(&clock);
    }

    // ---- plain cells (data-race detection) --------------------------------

    pub(crate) fn cell_read(&self, tid: usize, loc: usize) {
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Cell(loc),
                write: false,
                name: "cell.read",
            },
        );
        let clock = st.threads[tid].clock;
        if let Some((w, stamp)) = st.cells[loc].writer {
            if !clock.covers(w, stamp) {
                self.fail(
                    st,
                    format!("data race: T{tid} reads a cell concurrently written by T{w}"),
                );
            }
        }
        let stamp = st.threads[tid].clock.bump(tid);
        st.cells[loc].reads.push((tid, stamp));
    }

    pub(crate) fn cell_write(&self, tid: usize, loc: usize) {
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Cell(loc),
                write: true,
                name: "cell.write",
            },
        );
        let clock = st.threads[tid].clock;
        if let Some((w, stamp)) = st.cells[loc].writer {
            if !clock.covers(w, stamp) {
                self.fail(
                    st,
                    format!("data race: T{tid} writes a cell concurrently written by T{w}"),
                );
            }
        }
        if let Some(&(r, stamp)) = st.cells[loc]
            .reads
            .iter()
            .find(|&&(r, stamp)| !clock.covers(r, stamp))
        {
            let _ = stamp;
            self.fail(
                st,
                format!("data race: T{tid} writes a cell concurrently read by T{r}"),
            );
        }
        let stamp = st.threads[tid].clock.bump(tid);
        st.cells[loc].writer = Some((tid, stamp));
        st.cells[loc].reads.clear();
    }

    // ---- locks ------------------------------------------------------------

    pub(crate) fn lock_acquire(&self, tid: usize, id: usize, write: bool) {
        let name = if write { "lock.write" } else { "lock.read" };
        loop {
            let mut st = self.op_point(
                tid,
                OpDesc {
                    loc: LocRef::Lock(id),
                    write: true,
                    name,
                },
            );
            let available = {
                let l = &st.locks[id];
                if write {
                    l.writer.is_none() && l.readers == 0
                } else {
                    l.writer.is_none()
                }
            };
            if available {
                let (wrel, rrel) = (st.locks[id].write_release, st.locks[id].read_release);
                if write {
                    st.locks[id].writer = Some(tid);
                    st.threads[tid].clock.join(&wrel);
                    st.threads[tid].clock.join(&rrel);
                } else {
                    st.locks[id].readers += 1;
                    st.threads[tid].clock.join(&wrel);
                }
                return;
            }
            // Held: hand the baton back and wait to be rescheduled once
            // the controller sees the resource free.
            st.threads[tid].status = Status::Blocked(BlockReason::Lock { id, write });
            st.active = CONTROLLER;
            self.cv.notify_all();
            while !st.abort && st.active != tid {
                st = self.cv.wait(st).unwrap();
            }
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st.threads[tid].status = Status::Running;
            // Another waiter may have won the re-race; loop and re-check.
        }
    }

    pub(crate) fn lock_release(&self, tid: usize, id: usize, write: bool) {
        let name = if write {
            "lock.write_unlock"
        } else {
            "lock.read_unlock"
        };
        let mut st = self.op_point(
            tid,
            OpDesc {
                loc: LocRef::Lock(id),
                write: true,
                name,
            },
        );
        st.threads[tid].clock.bump(tid);
        let clock = st.threads[tid].clock;
        if write {
            debug_assert_eq!(st.locks[id].writer, Some(tid));
            st.locks[id].writer = None;
            st.locks[id].write_release = clock;
        } else {
            debug_assert!(st.locks[id].readers > 0);
            st.locks[id].readers -= 1;
            st.locks[id].read_release.join(&clock);
        }
    }

    // ---- threads ----------------------------------------------------------

    /// Register a new model thread inheriting the parent's clock; returns
    /// its id. The OS thread is spawned by the caller (`thread::spawn`).
    pub(crate) fn register_thread(&self, parent: Option<usize>) -> usize {
        let mut st = self.state.lock().unwrap();
        let tid = st.threads.len();
        assert!(
            tid < MAX_THREADS,
            "model programs are limited to {MAX_THREADS} threads (exploration is \
             exponential in thread count)"
        );
        let mut clock = match parent {
            Some(p) => {
                st.threads[p].clock.bump(p);
                st.threads[p].clock
            }
            None => VClock::new(),
        };
        clock.bump(tid);
        st.threads.push(ThreadSlot {
            status: Status::Running,
            clock,
            announced: None,
            blocked: None,
            result: None,
        });
        let _ = st.threads[tid].blocked;
        tid
    }

    pub(crate) fn push_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles.lock().unwrap().push(h);
    }

    /// Body wrapper for every model thread (including the root).
    pub(crate) fn run_thread<T: Send + 'static>(
        self: &Arc<Self>,
        tid: usize,
        body: impl FnOnce() -> T,
    ) {
        CTX.with(|c| {
            *c.borrow_mut() = Some(Ctx {
                engine: Arc::clone(self),
                tid,
            })
        });
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            // Park before running any user code: exactly one model thread
            // executes between schedule points, which keeps lazy location
            // registration (and thus replay) deterministic.
            self.schedule_point(
                tid,
                OpDesc {
                    loc: LocRef::Thread(tid),
                    write: false,
                    name: "start",
                },
            );
            body()
        }));
        CTX.with(|c| *c.borrow_mut() = None);
        let mut st = self.state.lock().unwrap();
        match result {
            Ok(v) => {
                st.threads[tid].result = Some(Box::new(v));
            }
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_none() && st.failure.is_none() {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "model thread panicked".to_string());
                    let log = render_oplog(&st.oplog, &st.threads);
                    st.failure = Some(format!("T{tid} panicked: {msg}\n{log}"));
                    st.abort = true;
                }
            }
        }
        // Thread exit is a dependence target for joiners.
        let desc = OpDesc {
            loc: LocRef::Thread(tid),
            write: true,
            name: "exit",
        };
        for t in 0..st.threads.len() {
            if st.sleep[t] {
                if let Some(a) = st.threads[t].announced {
                    if dependent(&a, &desc) {
                        st.sleep[t] = false;
                    }
                }
            }
        }
        st.threads[tid].status = Status::Finished;
        self.cv.notify_all();
    }

    /// Join a model thread: blocks until it finishes, joins its final
    /// clock, and returns its boxed result.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) -> Box<dyn Any + Send> {
        loop {
            let mut st = self.op_point(
                tid,
                OpDesc {
                    loc: LocRef::Thread(target),
                    write: true,
                    name: "join",
                },
            );
            if st.threads[target].status == Status::Finished {
                let clock = st.threads[target].clock;
                st.threads[tid].clock.join(&clock);
                if let Some(r) = st.threads[target].result.take() {
                    return r;
                }
                // Result already taken or thread aborted: unwind quietly.
                drop(st);
                panic::panic_any(AbortToken);
            }
            st.threads[tid].status = Status::Blocked(BlockReason::Join(target));
            st.active = CONTROLLER;
            self.cv.notify_all();
            while !st.abort && st.active != tid {
                st = self.cv.wait(st).unwrap();
            }
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            st.threads[tid].status = Status::Running;
        }
    }
}

fn render_oplog(oplog: &[(usize, OpDesc)], _threads: &[ThreadSlot]) -> String {
    let mut out = String::from("schedule:");
    let shown = oplog.len().min(200);
    for (tid, desc) in &oplog[oplog.len() - shown..] {
        let loc = match desc.loc {
            LocRef::Atomic(i) => format!("a{i}"),
            LocRef::Cell(i) => format!("c{i}"),
            LocRef::Lock(i) => format!("l{i}"),
            LocRef::Thread(i) => format!("t{i}"),
        };
        out.push_str(&format!(" T{tid}:{}@{loc}", desc.name));
    }
    out
}

/// Run one complete execution of `f` under `prefix`, returning the
/// recorded trace and outcome.
pub(crate) fn run_execution(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<PrefixEntry>,
    opts: ExecOpts,
    mutation: Option<Mutation>,
) -> ExecOutcome {
    let engine = Arc::new(Engine::new(prefix, opts, mutation));
    let root = engine.register_thread(None);
    debug_assert_eq!(root, 0);
    {
        let engine2 = Arc::clone(&engine);
        let f2 = Arc::clone(f);
        let h = std::thread::Builder::new()
            .name("model-main".into())
            .spawn(move || engine2.run_thread(root, move || f2()))
            .expect("spawn model main");
        engine.push_handle(h);
    }
    engine.controller_loop();
    // Release every surviving thread and collect the OS handles.
    {
        let mut st = engine.state.lock().unwrap();
        st.abort = true;
        engine.cv.notify_all();
    }
    let handles: Vec<_> = std::mem::take(&mut *engine.handles.lock().unwrap());
    let mut queue: VecDeque<_> = handles.into();
    while let Some(h) = queue.pop_front() {
        let _ = h.join();
        // Joining one thread may have spawned none, but late registration
        // of handles is possible while others unwind.
        let mut more = engine.handles.lock().unwrap();
        queue.extend(more.drain(..));
    }
    let st = engine.state.lock().unwrap();
    ExecOutcome {
        trace: st.trace.clone(),
        failure: st.failure.clone(),
        pruned: st.pruned,
        ops: st.ops,
    }
}

/// Spawn a model thread from inside a model program (used by
/// [`crate::thread::spawn`]).
pub(crate) fn spawn_model_thread<T: Send + 'static>(
    body: impl FnOnce() -> T + Send + 'static,
) -> crate::thread::JoinHandle<T> {
    let ctx = with_ctx(Clone::clone).expect("modelcheck::thread::spawn outside a model run");
    let tid = ctx.engine.register_thread(Some(ctx.tid));
    let engine2 = Arc::clone(&ctx.engine);
    let h = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || engine2.run_thread(tid, body))
        .expect("spawn model thread");
    ctx.engine.push_handle(h);
    crate::thread::JoinHandle::new(ctx.engine, tid)
}
