//! Mutation kill tests: evidence the model checker has teeth.
//!
//! Each test activates one seeded mutation — a deliberately broken
//! variant of a protocol, compiled behind `cfg(spitfire_modelcheck)` in
//! `spitfire-sync` — and asserts the explorer *finds* the bug
//! (`assert_fail`). A checker that passed the protocols but also passed
//! these mutants would be vacuous; CI runs both.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS='--cfg spitfire_modelcheck' cargo test -p spitfire-modelcheck
//! ```

#![cfg(spitfire_modelcheck)]

mod common;

use spitfire_modelcheck::{Checker, Mutation};

#[test]
fn open_without_release_is_killed() {
    let failure = Checker::new()
        .mutation(Mutation::PinOpenRelaxed)
        .check(common::pin_open_payload)
        .assert_fail();
    assert!(
        failure.message.contains("payload store"),
        "{}",
        failure.message
    );
}

#[test]
fn close_without_acquire_is_killed() {
    // The weakened close no longer synchronizes with the draining unpin:
    // the transition's page write races the reader's page read.
    let failure = Checker::new()
        .mutation(Mutation::PinCloseRelaxed)
        .check(common::pin_quiescence)
        .assert_fail();
    assert!(failure.message.contains("data race"), "{}", failure.message);
}

#[test]
fn unpin_without_release_is_killed() {
    let failure = Checker::new()
        .mutation(Mutation::PinUnpinRelaxed)
        .check(common::pin_quiescence)
        .assert_fail();
    assert!(failure.message.contains("data race"), "{}", failure.message);
}

#[test]
fn blind_pin_is_killed() {
    // Check-then-increment lets a pin land after close() observed zero:
    // the reader holds a "pin" on a frame being rewritten.
    Checker::new()
        .mutation(Mutation::PinBlindPin)
        .check(common::pin_eviction_frame_reuse)
        .assert_fail();
}

#[test]
fn blind_pin_breaks_quiescence_too() {
    Checker::new()
        .mutation(Mutation::PinBlindPin)
        .check(common::pin_quiescence)
        .assert_fail();
}

#[test]
fn torn_bitmap_set_is_killed() {
    Checker::new()
        .mutation(Mutation::BitmapSetSplit)
        .check(common::bitmap_touch_sweep)
        .assert_fail();
}

#[test]
fn torn_counter_add_is_killed() {
    let failure = Checker::new()
        .mutation(Mutation::CounterAddSplit)
        .check(common::counter_merge)
        .assert_fail();
    assert!(failure.message.contains("lost"), "{}", failure.message);
}

#[test]
fn shadow_skip_version_check_is_killed() {
    // Without the post-drain version re-check, a writer that stores,
    // bumps, and unpins inside the copy window goes unnoticed and the
    // stale snapshot commits.
    let failure = Checker::new()
        .mutation(Mutation::ShadowSkipVersionCheck)
        .check(common::shadow_copy_no_lost_update)
        .assert_fail();
    assert!(failure.message.contains("stale"), "{}", failure.message);
}

#[test]
fn blind_pin_breaks_shadow_retirement_too() {
    // Check-then-increment lets a reader's pin land after shadow_commit's
    // internal close() claimed quiescence: the source-frame retirement
    // races the reader's page access. (PinCloseRelaxed, by contrast, is
    // NOT killed through this path: the post-drain version re-check's
    // Acquire load recovers the unpin edge via the close RMW's release
    // sequence — shadow_commit is redundantly safe against it.)
    Checker::new()
        .mutation(Mutation::PinBlindPin)
        .check(common::shadow_retire_after_quiescence)
        .assert_fail();
}

#[test]
fn map_upgrade_without_recheck_is_killed() {
    let failure = Checker::new()
        .mutation(Mutation::MapUpgradeNoRecheck)
        .check(common::map_get_or_insert)
        .assert_fail();
    assert!(
        failure.message.contains("descriptor"),
        "{}",
        failure.message
    );
}

/// The mutations are seeded into `spitfire-sync` behind runtime switches;
/// with no mutation active the same bodies must still pass (guards
/// against a hook that accidentally fires unconditionally).
#[test]
fn no_mutation_means_no_bug() {
    Checker::new().check(common::pin_quiescence).assert_pass();
}
