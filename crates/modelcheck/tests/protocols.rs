//! Exhaustive interleaving checks of the lock-free core's protocols.
//!
//! Compiled (and meaningful) only under `--cfg spitfire_modelcheck`,
//! which switches `spitfire-sync`'s primitives onto the instrumented
//! facade; run with:
//!
//! ```text
//! RUSTFLAGS='--cfg spitfire_modelcheck' cargo test -p spitfire-modelcheck
//! ```
//!
//! Every test explores the *entire* (partial-order-reduced) state space
//! of its scenario: `assert_pass` also fails on `BoundExceeded`, so a
//! green test really is a proof over the model, not a sample.

#![cfg(spitfire_modelcheck)]

mod common;

use spitfire_modelcheck::Checker;

#[test]
fn pinword_quiescence_exhaustive() {
    let report = Checker::new().check(common::pin_quiescence).assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn pinword_open_publishes_payload_exhaustive() {
    let report = Checker::new().check(common::pin_open_payload).assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn pinword_eviction_vs_fetch_fast_exhaustive() {
    let report = Checker::new()
        .check(common::pin_eviction_frame_reuse)
        .assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn shadow_copy_no_lost_update_exhaustive() {
    let report = Checker::new()
        .check(common::shadow_copy_no_lost_update)
        .assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn shadow_retire_after_quiescence_exhaustive() {
    let report = Checker::new()
        .check(common::shadow_retire_after_quiescence)
        .assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn concurrent_map_read_lock_upgrade_exhaustive() {
    let report = Checker::new()
        .check(common::map_get_or_insert)
        .assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn striped_counter_merge_exhaustive() {
    let report = Checker::new().check(common::counter_merge).assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}

#[test]
fn bitmap_touch_vs_sweep_exhaustive() {
    let report = Checker::new()
        .check(common::bitmap_touch_sweep)
        .assert_pass();
    assert!(report.executions > 1, "scenario has no concurrency");
}
