//! Self-tests for the model checker: known-good programs must pass
//! exhaustively, and known-bad programs (seeded ordering bugs, races,
//! lost updates, deadlocks) must be detected. These run in normal builds
//! — the instrumented primitives are active whenever code runs under a
//! [`Checker`], no cfg required.

use std::sync::Arc;

use spitfire_modelcheck::atomic::{AtomicU64, Ordering};
use spitfire_modelcheck::cell::RaceCell;
use spitfire_modelcheck::lock::Mutex;
use spitfire_modelcheck::{thread, CheckResult, Checker};

/// Message passing through a Release store / Acquire load must make the
/// relaxed data store visible.
#[test]
fn message_passing_release_acquire_passes() {
    let report = Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                // relaxed: ordered by the Release store on `flag` below.
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                // relaxed: the Acquire load above carries the writer's
                // clock, so 42 is the only visible value.
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join();
        })
        .assert_pass();
    // Both flag outcomes (0 and 1) and at least one interleaving each.
    assert!(report.executions >= 2, "explored {}", report.executions);
}

/// The same program with the flag store downgraded to Relaxed is a bug
/// the explorer must find: the reader can see flag=1 but data=0.
#[test]
fn message_passing_relaxed_bug_found() {
    let failure = Checker::new()
        .check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // bug: no release
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join();
        })
        .assert_fail();
    assert!(failure.message.contains("panicked"), "{}", failure.message);
}

/// Weak-memory value exploration: a Relaxed reader racing a Relaxed
/// writer must observe BOTH the old and the new value across executions.
#[test]
fn relaxed_load_explores_both_values() {
    // Raw statics are invisible to the engine, so they can record
    // observations across executions.
    static SEEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    SEEN.store(0, std::sync::atomic::Ordering::SeqCst);
    Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
            let v = x.load(Ordering::Relaxed);
            t.join();
            SEEN.fetch_or(1 << v, std::sync::atomic::Ordering::SeqCst);
        })
        .assert_pass();
    assert_eq!(SEEN.load(std::sync::atomic::Ordering::SeqCst), 0b11);
}

/// Unsynchronized plain accesses are a data race even if no assertion
/// ever fires — the vector-clock detector must catch it.
#[test]
fn unsynchronized_cell_race_found() {
    let failure = Checker::new()
        .check(|| {
            let c = Arc::new(RaceCell::new(0u64));
            let c2 = Arc::clone(&c);
            let t = thread::spawn(move || c2.set(1));
            let _ = c.get();
            t.join();
        })
        .assert_fail();
    assert!(failure.message.contains("data race"), "{}", failure.message);
}

/// The same cell protected by a mutex is race-free (lock release/acquire
/// carries happens-before), and no increment is lost.
#[test]
fn mutex_protected_cell_passes() {
    Checker::new()
        .check(|| {
            let m = Arc::new(Mutex::new(()));
            let c = Arc::new(RaceCell::new(0u64));
            let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
            let t = thread::spawn(move || {
                let _g = m2.lock();
                c2.update(|v| v + 1);
            });
            {
                let _g = m.lock();
                c.update(|v| v + 1);
            }
            t.join();
            let _g = m.lock();
            assert_eq!(c.get(), 2);
        })
        .assert_pass();
}

/// A split (load-then-store) increment loses updates under some schedule;
/// the fetch_add version never does.
#[test]
fn lost_update_found_and_rmw_passes() {
    let failure = Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || {
                let v = x2.load(Ordering::SeqCst);
                x2.store(v + 1, Ordering::SeqCst);
            });
            let v = x.load(Ordering::SeqCst);
            x.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(x.load(Ordering::SeqCst), 2);
        })
        .assert_fail();
    assert!(failure.message.contains("panicked"), "{}", failure.message);

    Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || x2.fetch_add(1, Ordering::AcqRel));
            x.fetch_add(1, Ordering::AcqRel);
            t.join();
            assert_eq!(x.load(Ordering::Acquire), 2);
        })
        .assert_pass();
}

/// Classic AB-BA lock ordering deadlock must be reported as such, not
/// hang the test binary.
#[test]
fn abba_deadlock_found() {
    let failure = Checker::new()
        .check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_gb, _ga));
            t.join();
        })
        .assert_fail();
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// Preemption bounding: with a budget of 0, a thread only loses the CPU
/// when it blocks or exits, so the split-increment bug above becomes
/// unreachable — and the explorer must report a (vacuous) pass. This
/// pins the bound's semantics; protocol checks run unbounded.
#[test]
fn preemption_bound_zero_hides_interleavings() {
    let result = Checker::new().preemption_bound(0).check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            let v = x2.load(Ordering::SeqCst);
            x2.store(v + 1, Ordering::SeqCst);
        });
        let v = x.load(Ordering::SeqCst);
        x.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(x.load(Ordering::SeqCst), 2);
    });
    assert!(!result.found_bug());
}

/// Exploration terminates and the budget machinery works: an over-tight
/// budget yields BoundExceeded rather than a false pass.
#[test]
fn bound_exceeded_is_not_a_pass() {
    let result = Checker::new().max_executions(2).check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, Ordering::AcqRel);
            x2.fetch_add(1, Ordering::AcqRel);
        });
        x.fetch_add(1, Ordering::AcqRel);
        x.fetch_add(1, Ordering::AcqRel);
        t.join();
    });
    assert!(matches!(result, CheckResult::BoundExceeded { .. }));
}

/// Three threads, all interleavings of dependent RMWs: the explored
/// execution count must be finite and the invariant hold throughout.
#[test]
fn three_thread_rmw_exhaustive() {
    let report = Checker::new()
        .check(|| {
            let x = Arc::new(AtomicU64::new(0));
            let ts: Vec<_> = (0..2)
                .map(|_| {
                    let x = Arc::clone(&x);
                    thread::spawn(move || x.fetch_add(1, Ordering::AcqRel))
                })
                .collect();
            x.fetch_add(1, Ordering::AcqRel);
            for t in ts {
                t.join();
            }
            assert_eq!(x.load(Ordering::Acquire), 3);
        })
        .assert_pass();
    assert!(report.executions >= 3, "explored {}", report.executions);
}
