//! Model-checked protocol bodies shared by the exhaustive protocol tests
//! (`protocols.rs`, which assert they pass) and the mutation kill tests
//! (`mutants.rs`, which assert the checker finds the seeded bug).
//!
//! Each body is one closed scenario over 2–3 model threads: it builds its
//! shared state fresh, races the protocol's fast path against its slow
//! path, and asserts the protocol's invariant. Invariants are expressed
//! either as plain assertions or as [`RaceCell`] accesses — the latter
//! lets the checker's vector-clock race detector prove the *absence* of
//! required happens-before edges, which a value assertion alone can miss.

use std::hash::{BuildHasherDefault, DefaultHasher};
use std::sync::Arc;

use spitfire_modelcheck::cell::RaceCell;
use spitfire_modelcheck::thread;
use spitfire_sync::atomic::{AtomicU64, Ordering};
use spitfire_sync::{
    AtomicBitmap, ConcurrentMap, PinAttempt, PinWord, ShadowOutcome, StripedCounter,
};

/// PinWord quiescence: a transition may only proceed after `close()`
/// returns zero, and the last reader's page access must happen-before the
/// transition's page write.
///
/// Kills `PinCloseRelaxed` (closer stops acquiring the draining unpin),
/// `PinUnpinRelaxed` (reader stops releasing its page read), and
/// `PinBlindPin` (a pin lands after quiescence was claimed): all three
/// surface as a data race on `page`.
pub fn pin_quiescence() {
    let word = Arc::new(PinWord::new());
    let page = Arc::new(RaceCell::new(0u64));
    word.open(1);

    let w = Arc::clone(&word);
    let p = Arc::clone(&page);
    let reader = thread::spawn(move || {
        if let PinAttempt::Pinned(frame) = w.try_pin() {
            assert_eq!(frame, 1, "pinned against a frame that was never open");
            // The protected read: must be ordered before any transition
            // that observed a zero pin count.
            let _ = p.get();
            w.unpin();
        }
    });

    if word.close() == 0 {
        // Quiescent: no optimistic pin exists and none can be taken.
        page.set(42);
    } else {
        // Reader still draining; abort the transition.
        word.open(1);
    }
    reader.join();
}

/// PinWord open/pin publication: a pinner that wins its CAS must observe
/// the payload written by the `open` it pinned against, never a stale
/// frame id.
///
/// Kills `PinOpenRelaxed`: without the release on `open`'s CAS the reader
/// can see the OPEN bit but read the pre-open payload.
pub fn pin_open_payload() {
    let word = Arc::new(PinWord::new());
    let w = Arc::clone(&word);
    let reader = thread::spawn(move || {
        if let PinAttempt::Pinned(frame) = w.try_pin() {
            assert_eq!(frame, 7, "pin observed OPEN without the payload store");
            w.unpin();
        }
    });
    word.open(7);
    reader.join();
}

/// Eviction racing the fetch fast path: after `close()` proves
/// quiescence the frame is reused for another page and the word reopens
/// with the new frame id. A racing pinner must either restart
/// (`Raced`/`Closed`) or land a pin whose frame id matches the bytes in
/// the frame — never read page B's bytes under a page A pin.
///
/// Kills `PinBlindPin`: the check-then-increment pin slips in around the
/// close/reopen and pairs frame id 1 with page B's contents (or races
/// the rewrite itself).
pub fn pin_eviction_frame_reuse() {
    let word = Arc::new(PinWord::new());
    let frame = Arc::new(RaceCell::new(100u64));
    word.open(1);

    let w = Arc::clone(&word);
    let f = Arc::clone(&frame);
    let reader = thread::spawn(move || match w.try_pin() {
        PinAttempt::Pinned(1) => {
            assert_eq!(f.get(), 100, "page A pin read page B bytes");
            w.unpin();
        }
        PinAttempt::Pinned(2) => {
            assert_eq!(f.get(), 200, "page B pin read stale page A bytes");
            w.unpin();
        }
        PinAttempt::Pinned(other) => panic!("pinned unknown frame {other}"),
        PinAttempt::Raced | PinAttempt::Closed => {}
    });

    if word.close() == 0 {
        // Evict page A, reuse the frame for page B.
        frame.set(200);
        word.open(2);
    } else {
        word.open(1);
    }
    reader.join();
}

/// Shadow-copy migration vs an optimistic writer: the migrator snapshots
/// the page while the word stays open, then `shadow_commit` may install
/// the snapshot only if no write overlapped the copy window. A writer
/// publishes its write with `bump_version()` *before* unpinning, so a
/// commit that observed zero pins has also observed every bump — a stale
/// snapshot must never be installed (lost update).
///
/// Page content is an instrumented atomic rather than a [`RaceCell`]
/// because the migrator's snapshot read *legitimately* races the writer's
/// store: the protocol's job is to detect the race via the version and
/// discard the snapshot, not to prevent the access. A vector-clock race
/// on the bytes is therefore expected; staleness of a *committed* copy is
/// the bug.
///
/// Kills `ShadowSkipVersionCheck`: without the version re-check after the
/// drain, an interleaving where the writer stores + bumps + unpins during
/// the copy window commits the pre-write snapshot.
pub fn shadow_copy_no_lost_update() {
    let word = Arc::new(PinWord::new());
    let content = Arc::new(AtomicU64::new(10));
    word.open(1);

    let w = Arc::clone(&word);
    let c = Arc::clone(&content);
    let writer = thread::spawn(move || {
        if let PinAttempt::Pinned(_) = w.try_pin() {
            // relaxed: the write is published by bump_version's AcqRel RMW
            // on the pin word, which the committer's zero-pin observation
            // orders after; content itself needs no stronger ordering.
            c.store(20, Ordering::Relaxed);
            w.bump_version();
            w.unpin();
        }
    });

    let token = word.shadow_begin().expect("source word is open");
    // The copy window: snapshot the page while readers/writers stay live.
    // relaxed: staleness is detected via the version check, not via this
    // load's ordering.
    let snapshot = content.load(Ordering::Relaxed);
    match word.shadow_commit(&token, 2) {
        ShadowOutcome::Committed => {
            // relaxed: writer (if any) is fully drained and version-checked.
            assert_eq!(
                snapshot,
                content.load(Ordering::Relaxed),
                "stale shadow copy committed: concurrent write lost"
            );
            // Retire the source mapping; reopen against the destination.
            word.open(2);
        }
        ShadowOutcome::RacedWrite | ShadowOutcome::Draining => {
            // Abort: discard the snapshot, the source stays authoritative.
            word.open(1);
        }
    }
    writer.join();
}

/// Shadow-copy retirement vs an optimistic reader: after `shadow_commit`
/// returns `Committed` the old copy is quiescent — no optimistic pin is
/// live and none can land — so retiring (scrubbing/reusing) the source
/// frame must not race any reader's page access.
///
/// Kills `PinBlindPin` through the shadow path: a check-then-increment
/// pin lands after `shadow_commit`'s internal `close()` claimed
/// quiescence, so the retirement write races the late reader's read.
pub fn shadow_retire_after_quiescence() {
    let word = Arc::new(PinWord::new());
    let src = Arc::new(RaceCell::new(11u64));
    word.open(1);

    let w = Arc::clone(&word);
    let s = Arc::clone(&src);
    let reader = thread::spawn(move || match w.try_pin() {
        PinAttempt::Pinned(1) => {
            // Optimistic read of the source copy: must be ordered before
            // any retirement that observed a zero pin count.
            let _ = s.get();
            w.unpin();
        }
        PinAttempt::Pinned(2) => {
            // Landed on the destination copy after the migration
            // committed; the source is retired and must not be touched.
            w.unpin();
        }
        PinAttempt::Pinned(other) => panic!("pinned unknown frame {other}"),
        PinAttempt::Raced | PinAttempt::Closed => {}
    });

    let token = word.shadow_begin().expect("source word is open");
    match word.shadow_commit(&token, 2) {
        ShadowOutcome::Committed => {
            // Quiescent and unchanged: retire the source copy. A live
            // reader pin here would be a race on `src`.
            src.set(999);
            word.open(2);
        }
        ShadowOutcome::RacedWrite | ShadowOutcome::Draining => word.open(1),
    }
    reader.join();
}

/// ConcurrentMap read-lock upgrade: two threads missing on the same key
/// concurrently must agree on one stored value (the re-probe under the
/// write lock discards the loser's speculative value).
///
/// Kills `MapUpgradeNoRecheck`: without the re-probe both missers
/// install their own value and return descriptors that are not the same
/// allocation.
///
/// The map is built with a deterministic hasher: the default
/// `RandomState` would vary shard choice across executions and break the
/// checker's schedule replay.
pub fn map_get_or_insert() {
    type Hasher = BuildHasherDefault<DefaultHasher>;
    let map: Arc<ConcurrentMap<u64, Arc<u64>, Hasher>> =
        Arc::new(ConcurrentMap::with_hasher(Hasher::default()));
    let m = Arc::clone(&map);
    let t = thread::spawn(move || m.get_or_insert_with(7, || Arc::new(1)));
    let mine = map.get_or_insert_with(7, || Arc::new(2));
    let theirs = t.join();
    assert!(
        Arc::ptr_eq(&mine, &theirs),
        "racing missers observed different descriptors for one page"
    );
    let stored = map.get(&7).expect("key present after insert");
    assert!(
        Arc::ptr_eq(&mine, &stored),
        "returned value is not the stored one"
    );
}

/// StripedCounter merge: increments from every stripe — including two
/// threads folded onto the *same* stripe — survive into `sum()`.
///
/// Kills `CounterAddSplit`: the torn load-then-store loses one of the
/// same-stripe increments. Under the model checker, stripes derive from
/// the model thread index mod 2, so the main thread (index 0) and the
/// second spawned thread (index 2) deliberately collide.
pub fn counter_merge() {
    let counter = Arc::new(StripedCounter::new());
    let c1 = Arc::clone(&counter);
    let t1 = thread::spawn(move || c1.add(1));
    let c2 = Arc::clone(&counter);
    let t2 = thread::spawn(move || c2.add(1));
    counter.add(1);
    t1.join();
    t2.join();
    assert_eq!(counter.sum(), 3, "a striped increment was lost");
}

/// AtomicBitmap touch vs sweep: a reference-bit touch racing the clock
/// hand's clear and a frame acquisition on the same word must all
/// survive — single-word RMWs never lose each other's updates.
///
/// Kills `BitmapSetSplit`: the torn set either erases the concurrent
/// clear (bit 1 resurrected) or is itself erased (bit 3 lost).
pub fn bitmap_touch_sweep() {
    let bits = Arc::new(AtomicBitmap::new(64));
    bits.set(1);
    let b = Arc::clone(&bits);
    let toucher = thread::spawn(move || {
        b.set(3);
    });
    // The sweep: clear a cold page's reference bit, then claim a frame.
    bits.clear(1);
    assert!(bits.try_acquire(5), "frame 5 was free");
    toucher.join();
    assert!(bits.get(3), "reference-bit touch was lost");
    assert!(!bits.get(1), "cleared bit resurrected by a racing touch");
    assert!(bits.get(5), "acquired frame bit was lost");
    assert_eq!(bits.count_ones(), 2);
}
