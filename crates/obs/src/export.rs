//! The unified report: capture + Prometheus-text and JSON exporters.

use crate::hist::HistogramSnapshot;
use crate::op::Op;
use crate::sampler::SeriesPoint;

/// Tracked quantiles: `(q, prometheus label, short name)`.
pub const QUANTILES: [(f64, &str, &str); 4] = [
    (0.5, "0.5", "p50"),
    (0.9, "0.9", "p90"),
    (0.99, "0.99", "p99"),
    (0.999, "0.999", "p999"),
];

/// One exported histogram.
#[derive(Debug, Clone)]
pub struct HistEntry {
    /// Metric label (the [`Op`] name).
    pub name: &'static str,
    /// Merged snapshot.
    pub snapshot: HistogramSnapshot,
}

/// A unified, machine-readable observability report: per-operation latency
/// histograms, flat counters (buffer metrics, device stats, …), gauges, and
/// the sampled time series.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Latency histograms for every operation that recorded at least once.
    pub histograms: Vec<HistEntry>,
    /// Dynamically-labeled histograms (e.g. per-tenant request latency),
    /// `(label, snapshot)`, sorted by label. See [`crate::labels`].
    pub labeled: Vec<(String, HistogramSnapshot)>,
    /// Monotonic counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, `(name, value)`.
    pub gauges: Vec<(String, f64)>,
    /// Sampler time series (empty unless the sampler ran).
    pub series: Vec<SeriesPoint>,
}

impl Report {
    /// Capture histograms, gauges, and the sampler series from the global
    /// registry. Counters from other subsystems (buffer manager, database)
    /// are added by their `fill_obs_report` methods.
    pub fn capture() -> Report {
        let mut histograms = Vec::new();
        for op in Op::ALL {
            let snapshot = crate::registry().histogram(op).snapshot();
            if snapshot.count > 0 {
                histograms.push(HistEntry {
                    name: op.name(),
                    snapshot,
                });
            }
        }
        Report {
            histograms,
            labeled: crate::labels::labeled_snapshots(),
            counters: Vec::new(),
            gauges: crate::sampler::gauge_values(),
            series: crate::sampler::series_snapshot(),
        }
    }

    /// Append a monotonic counter.
    pub fn add_counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Append a gauge.
    pub fn add_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.push((name.into(), value));
    }

    /// Render in the Prometheus text exposition format. Histogram quantiles
    /// are exported as a `summary` in seconds.
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        if !self.histograms.is_empty() {
            s.push_str("# HELP spitfire_op_latency_seconds Per-operation latency quantiles.\n");
            s.push_str("# TYPE spitfire_op_latency_seconds summary\n");
            for h in &self.histograms {
                for (q, label, _) in QUANTILES {
                    if let Some(ns) = h.snapshot.quantile(q) {
                        s.push_str(&format!(
                            "spitfire_op_latency_seconds{{op=\"{}\",quantile=\"{}\"}} {}\n",
                            h.name,
                            label,
                            fmt_f64(ns as f64 / 1e9)
                        ));
                    }
                }
                s.push_str(&format!(
                    "spitfire_op_latency_seconds_sum{{op=\"{}\"}} {}\n",
                    h.name,
                    fmt_f64(h.snapshot.sum as f64 / 1e9)
                ));
                s.push_str(&format!(
                    "spitfire_op_latency_seconds_count{{op=\"{}\"}} {}\n",
                    h.name, h.snapshot.count
                ));
            }
        }
        if !self.labeled.is_empty() {
            s.push_str("# HELP spitfire_labeled_latency_seconds Labeled latency quantiles.\n");
            s.push_str("# TYPE spitfire_labeled_latency_seconds summary\n");
            for (label, snap) in &self.labeled {
                for (q, ql, _) in QUANTILES {
                    if let Some(ns) = snap.quantile(q) {
                        s.push_str(&format!(
                            "spitfire_labeled_latency_seconds{{label=\"{}\",quantile=\"{}\"}} {}\n",
                            escape(label),
                            ql,
                            fmt_f64(ns as f64 / 1e9)
                        ));
                    }
                }
                s.push_str(&format!(
                    "spitfire_labeled_latency_seconds_count{{label=\"{}\"}} {}\n",
                    escape(label),
                    snap.count
                ));
            }
        }
        for (name, value) in &self.counters {
            let metric = sanitize(name);
            s.push_str(&format!("# TYPE spitfire_{metric} counter\n"));
            s.push_str(&format!("spitfire_{metric} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let metric = sanitize(name);
            s.push_str(&format!("# TYPE spitfire_{metric} gauge\n"));
            s.push_str(&format!("spitfire_{metric} {}\n", fmt_f64(*value)));
        }
        s
    }

    /// Render as a single JSON object (hand-rolled; no serde dependency).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {{", h.name));
            s.push_str(&snapshot_fields(&h.snapshot));
            s.push('}');
        }
        s.push_str("\n  },\n  \"labeled\": {");
        for (i, (label, snap)) in self.labeled.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {{", escape(label)));
            s.push_str(&snapshot_fields(snap));
            s.push('}');
        }
        s.push_str("\n  },\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape(name), value));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    \"{}\": {}", escape(name), fmt_f64(*value)));
        }
        s.push_str("\n  },\n  \"series\": [");
        for (i, point) in self.series.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {{\"t_ms\": {}, \"values\": {{", point.t_ms));
            for (j, (name, value)) in point.values.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {}", escape(name), fmt_f64(*value)));
            }
            s.push_str("}}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// The inner `"count": …, …, "p999_ns": …` fields of one exported
/// histogram (shared by the per-op and labeled sections).
fn snapshot_fields(snap: &HistogramSnapshot) -> String {
    let mut s = String::new();
    s.push_str(&format!("\"count\": {}, ", snap.count));
    s.push_str(&format!("\"sum_ns\": {}, ", snap.sum));
    s.push_str(&format!(
        "\"min_ns\": {}, ",
        if snap.count == 0 { 0 } else { snap.min }
    ));
    s.push_str(&format!("\"max_ns\": {}, ", snap.max));
    s.push_str(&format!(
        "\"mean_ns\": {}, ",
        fmt_f64(snap.mean().unwrap_or(0.0))
    ));
    for (q, _, short) in QUANTILES {
        s.push_str(&format!(
            "\"{}_ns\": {}, ",
            short,
            snap.quantile(q).unwrap_or(0)
        ));
    }
    // Trim the trailing ", ".
    s.truncate(s.len() - 2);
    s
}

/// Format an f64 for JSON/Prometheus (finite; no NaN/inf in the output).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Lowercase and replace non-`[a-z0-9_]` with `_` (Prometheus metric names).
fn sanitize(name: &str) -> String {
    name.to_lowercase()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Minimal JSON string escaping.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_report() -> Report {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let mut r = Report {
            histograms: vec![HistEntry {
                name: "fetch_dram_hit",
                snapshot: h.snapshot(),
            }],
            ..Report::default()
        };
        r.add_counter("dram_hits", 123);
        r.add_gauge("dram_occupied_frames", 64.0);
        r.series.push(crate::sampler::SeriesPoint {
            t_ms: 10,
            values: vec![("g".into(), 1.0)],
        });
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("# TYPE spitfire_op_latency_seconds summary"));
        assert!(
            text.contains("spitfire_op_latency_seconds{op=\"fetch_dram_hit\",quantile=\"0.99\"}")
        );
        assert!(text.contains("spitfire_op_latency_seconds_count{op=\"fetch_dram_hit\"} 1000"));
        assert!(text.contains("# TYPE spitfire_dram_hits counter"));
        assert!(text.contains("spitfire_dram_hits 123"));
        assert!(text.contains("spitfire_dram_occupied_frames 64"));
        // Every line is either a comment or `name{labels} value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split_whitespace().count() == 2,
                "bad line: {line}"
            );
        }
    }

    #[test]
    fn json_is_balanced_and_contains_quantiles() {
        let json = sample_report().to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"p50_ns\""));
        assert!(json.contains("\"p999_ns\""));
        assert!(json.contains("\"dram_hits\": 123"));
        assert!(json.contains("\"t_ms\": 10"));
    }

    #[test]
    fn escape_and_sanitize() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(sanitize("Device/NVM bytes"), "device_nvm_bytes");
    }

    #[test]
    fn quantile_label_mapping() {
        let labels: Vec<&str> = QUANTILES.iter().map(|(_, _, s)| *s).collect();
        assert_eq!(labels, ["p50", "p90", "p99", "p999"]);
    }
}
