//! Lock-free observability for the Spitfire buffer manager.
//!
//! This crate is the measurement foundation for the whole stack:
//!
//! * **Latency histograms** ([`hist`]) — HDR-style log-bucketed atomic
//!   histograms keyed by [`Op`] (fetch hit classes, the five migration
//!   paths, WAL append, commit, eviction), sharded per thread and merged on
//!   snapshot. Quantile error ≤ 3.1%.
//! * **Event tracing** ([`events`]) — bounded per-thread rings of structured
//!   trace events (op, page, tier, duration), drainable to CSV and
//!   chrome-trace JSON.
//! * **Gauge sampling** ([`sampler`]) — named gauges (tier occupancy, dirty
//!   pages, admission-queue length, policy vector, SA temperature, device
//!   byte counters) snapshotted by a background thread into a bounded
//!   in-memory time series.
//! * **Export** ([`export`]) — one unified [`Report`] rendered as
//!   Prometheus text or JSON.
//!
//! The hot-path contract (see [`recorder`]): when recording is disabled
//! (default), every instrumented site costs exactly one relaxed atomic
//! load. When enabled, [`op_start`] samples one call in
//! [`DEFAULT_SAMPLE_INTERVAL`] per thread (configurable via
//! [`set_sample_interval`]), amortizing the clock reads; the microbench
//! asserts the enabled overhead on the DRAM-hit fetch path stays under 5%.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod events;
pub mod export;
pub mod hist;
pub mod labels;
pub mod op;
pub mod recorder;
pub mod sampler;

pub use export::{HistEntry, Report};
pub use hist::{Histogram, HistogramSet, HistogramSnapshot};
pub use labels::{labeled_histogram, labeled_snapshots, record_labeled, reset_labeled};
pub use op::{Op, OP_COUNT};
pub use recorder::{
    enabled, op_start, record_duration, record_op, record_since, sample_interval, set_enabled,
    set_sample_interval, set_tracing, tracing_enabled, DEFAULT_SAMPLE_INTERVAL,
};
pub use sampler::{
    gauge_values, register_gauge, sample_now, series_snapshot, set_gauge, start_sampler,
    stop_sampler, SeriesPoint,
};

use std::sync::OnceLock;

/// The global histogram registry: one sharded histogram per [`Op`].
pub struct Registry {
    hists: Vec<HistogramSet>,
}

impl Registry {
    /// The histogram for `op`.
    #[inline]
    pub fn histogram(&self, op: Op) -> &HistogramSet {
        &self.hists[op.index()]
    }

    /// Zero every histogram (counters and buckets).
    pub fn reset_histograms(&self) {
        for h in &self.hists {
            h.reset();
        }
    }
}

/// The process-wide registry (created on first use).
pub fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        hists: (0..OP_COUNT).map(|_| HistogramSet::new()).collect(),
    })
}

#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
    M.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registry_histograms_are_per_op() {
        let _g = test_guard();
        registry().reset_histograms();
        record_duration(Op::WalAppend, Duration::from_nanos(500));
        record_duration(Op::WalAppend, Duration::from_nanos(700));
        record_duration(Op::TxnCommit, Duration::from_micros(3));
        assert_eq!(registry().histogram(Op::WalAppend).snapshot().count, 2);
        assert_eq!(registry().histogram(Op::TxnCommit).snapshot().count, 1);
        assert_eq!(registry().histogram(Op::FetchDramHit).snapshot().count, 0);
        registry().reset_histograms();
        assert_eq!(registry().histogram(Op::WalAppend).snapshot().count, 0);
    }

    #[test]
    fn report_capture_includes_recorded_ops() {
        let _g = test_guard();
        registry().reset_histograms();
        set_enabled(true);
        set_sample_interval(1);
        let t = op_start();
        std::thread::sleep(Duration::from_millis(1));
        record_since(Op::FetchSsdMiss, t);
        set_enabled(false);
        set_sample_interval(DEFAULT_SAMPLE_INTERVAL);
        let report = Report::capture();
        let entry = report
            .histograms
            .iter()
            .find(|h| h.name == "fetch_ssd_miss")
            .expect("fetch_ssd_miss histogram present");
        assert_eq!(entry.snapshot.count, 1);
        assert!(entry.snapshot.quantile(0.5).unwrap() >= 1_000_000);
        let json = report.to_json();
        assert!(json.contains("fetch_ssd_miss"));
        let prom = report.to_prometheus();
        assert!(prom.contains("op=\"fetch_ssd_miss\""));
        registry().reset_histograms();
    }
}
