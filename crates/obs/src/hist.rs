//! Lock-free, mergeable log-bucketed latency histograms.
//!
//! Values (nanoseconds) are assigned to HDR-style log-linear buckets: exact
//! buckets below 32 ns, then 32 sub-buckets per power-of-two octave, which
//! bounds the relative quantile error at `1/32 ≈ 3.1%`. Recording is one
//! relaxed `fetch_add` on an atomic bucket plus counter updates — no locks,
//! no allocation. A [`HistogramSet`] shards recording across a small fixed
//! set of histograms by thread id so concurrent writers do not contend on
//! the same cache lines; snapshots merge the shards.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32 → ≤ 3.1% relative error).
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 32 exact + 59 octaves × 32 sub-buckets.
pub const NUM_BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize - 1) * SUB as usize;

/// Shards per histogram set (power of two).
const NUM_SHARDS: usize = 8;

#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BITS;
    let sub = ((v >> octave) - SUB) as usize;
    SUB as usize + (octave as usize) * SUB as usize + sub
}

/// Midpoint of the value range covered by bucket `idx` (inverse of
/// [`bucket_index`], used to reconstruct quantiles).
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let rel = idx - SUB as usize;
    let octave = (rel / SUB as usize) as u32;
    let sub = (rel % SUB as usize) as u64;
    let lo = (SUB + sub) << octave;
    lo + (1u64 << octave) / 2
}

/// A single lock-free histogram (one writer cache-line set).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (nanoseconds). Lock-free; relaxed atomics only.
    #[inline]
    pub fn record(&self, v: u64) {
        // relaxed: histogram cells are independent statistics; recordings publish no other memory.
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy (merge-compatible with other snapshots).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                // relaxed: advisory snapshot; buckets may tear against count/sum, which percentile reporting tolerates.
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            // relaxed: racing recordings may survive the reset by design.
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A sharded histogram: writers spread across `NUM_SHARDS` (8) inner
/// histograms keyed by thread id; readers merge.
pub struct HistogramSet {
    shards: Vec<Histogram>,
}

impl Default for HistogramSet {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramSet {
    /// Fresh empty set.
    pub fn new() -> Self {
        HistogramSet {
            shards: (0..NUM_SHARDS).map(|_| Histogram::new()).collect(),
        }
    }

    /// Record one value from the calling thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.shards[thread_shard() & (NUM_SHARDS - 1)].record(v);
    }

    /// Merged snapshot across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = self.shards[0].snapshot();
        for shard in &self.shards[1..] {
            merged.merge(&shard.snapshot());
        }
        merged
    }

    /// Zero every shard.
    pub fn reset(&self) {
        for s in &self.shards {
            s.reset();
        }
    }
}

/// Stable per-thread shard id (assigned on first use per thread).
fn thread_shard() -> usize {
    use std::cell::Cell;
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut id = s.get();
        if id == usize::MAX {
            // relaxed: thread-id allocation needs uniqueness only.
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            s.set(id);
        }
        id
    })
}

/// Immutable, mergeable copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (ns).
    pub sum: u64,
    /// Smallest recorded value (ns); `u64::MAX` when empty.
    pub min: u64,
    /// Largest recorded value (ns).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Counters accumulated since `earlier` (same histogram, taken later).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            // min/max are high-water marks, not rates; keep the later ones.
            min: self.min,
            max: self.max,
        }
    }

    /// Estimated quantile in nanoseconds (`q` in `[0, 1]`); `None` if empty.
    ///
    /// Relative error is bounded by the bucket resolution (≤ 3.1%).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based; q=0 → first value.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp the bucket estimate to the observed min/max so tiny
                // histograms report exact values.
                return Some(bucket_mid(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Mean in nanoseconds; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_bounded() {
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + v / 3] {
                let mid = bucket_mid(bucket_index(probe));
                let err = (mid as f64 - probe as f64).abs() / probe as f64;
                assert!(
                    err <= 1.0 / SUB as f64 / 2.0 + 1e-9,
                    "v={probe} mid={mid} err={err}"
                );
            }
            v = v.wrapping_mul(3) / 2 + 1;
        }
        // Exact range.
        for v in 0..SUB {
            assert_eq!(bucket_mid(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_match_sorted_data_within_bound() {
        let h = Histogram::new();
        let values: Vec<u64> = (1..=10_000u64).map(|i| i * 37 % 1_000_000 + 1).collect();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let est = snap.quantile(q).unwrap() as f64;
            let err = (est - exact).abs() / exact;
            assert!(err <= 0.035, "q={q} exact={exact} est={est} err={err}");
        }
        assert_eq!(snap.min, *sorted.first().unwrap());
        assert_eq!(snap.max, *sorted.last().unwrap());
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..5000u64 {
            let v = (i * i) % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn delta_subtracts_counts() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let early = h.snapshot();
        h.record(30);
        let late = h.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.count, 1);
        assert_eq!(d.sum, 30);
        assert_eq!(d.quantile(0.5), Some(30));
    }

    #[test]
    fn sharded_set_merges_across_threads() {
        use std::sync::Arc;
        let set = Arc::new(HistogramSet::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        set.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = set.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.min, 0);
    }

    #[test]
    fn empty_quantile_is_none() {
        assert_eq!(HistogramSnapshot::empty().quantile(0.5), None);
        assert_eq!(HistogramSnapshot::empty().mean(), None);
    }
}
