//! The instrumented operation vocabulary.

/// Every operation the observability layer tracks, used as a dense index
/// into the histogram registry.
///
/// The three `Fetch*` variants classify `BufferManager::fetch` calls by
/// where the page was found; the `Mig*` variants mirror the paper's five
/// migration paths (§3: NVM→DRAM ①, SSD→DRAM ②, SSD→NVM ③, DRAM→NVM ④,
/// DRAM→SSD / NVM→SSD eviction write-backs); the rest cover the logging,
/// commit, eviction, and end-to-end workload paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// `fetch` served directly from a DRAM-resident page.
    FetchDramHit,
    /// `fetch` served from an NVM-resident page (with or without promotion).
    FetchNvmHit,
    /// `fetch` that had to load the page from SSD.
    FetchSsdMiss,
    /// Migration ①: promotion NVM → DRAM.
    MigNvmToDram,
    /// Migration ②: SSD load admitted straight to DRAM.
    MigSsdToDram,
    /// Migration ③: SSD load admitted to NVM.
    MigSsdToNvm,
    /// Migration ④: DRAM eviction admitted to NVM.
    MigDramToNvm,
    /// Migration ⑤a: DRAM eviction written back to SSD.
    MigDramToSsd,
    /// Migration ⑤b: NVM eviction written back to SSD.
    MigNvmToSsd,
    /// One DRAM eviction decision + execution.
    EvictDram,
    /// One NVM eviction decision + execution.
    EvictNvm,
    /// One WAL record appended to the NVM log buffer.
    WalAppend,
    /// Transaction commit (validation + log + install).
    TxnCommit,
    /// Transaction abort (rollback).
    TxnAbort,
    /// One end-to-end workload operation (YCSB op / TPC-C transaction).
    WorkloadOp,
    /// A fault injected by the chaos plane (`spitfire-chaos`).
    FaultInjected,
    /// One retry of a device operation after a transient I/O error.
    IoRetry,
    /// An optimistic pin attempt that raced a page transition and
    /// restarted into the descriptor-mutex slow path.
    PinRestart,
    /// One database checkpoint (legacy flush or snapshot generation).
    Checkpoint,
    /// Time a shadow-copy migration commit spent draining optimistic
    /// readers (the `shadow_commit` spin), successful or aborted.
    MigrationStall,
    /// Time a fetch spent blocked on the descriptor condvar waiting for a
    /// copy in a transitional state — the reader-visible stall that
    /// shadow-copy migrations are designed to eliminate.
    ReaderStall,
}

/// Number of [`Op`] variants (size of the histogram registry).
pub const OP_COUNT: usize = 21;

impl Op {
    /// All variants, in index order.
    pub const ALL: [Op; OP_COUNT] = [
        Op::FetchDramHit,
        Op::FetchNvmHit,
        Op::FetchSsdMiss,
        Op::MigNvmToDram,
        Op::MigSsdToDram,
        Op::MigSsdToNvm,
        Op::MigDramToNvm,
        Op::MigDramToSsd,
        Op::MigNvmToSsd,
        Op::EvictDram,
        Op::EvictNvm,
        Op::WalAppend,
        Op::TxnCommit,
        Op::TxnAbort,
        Op::WorkloadOp,
        Op::FaultInjected,
        Op::IoRetry,
        Op::PinRestart,
        Op::Checkpoint,
        Op::MigrationStall,
        Op::ReaderStall,
    ];

    /// Dense index of this variant.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used as the metric label.
    pub const fn name(self) -> &'static str {
        match self {
            Op::FetchDramHit => "fetch_dram_hit",
            Op::FetchNvmHit => "fetch_nvm_hit",
            Op::FetchSsdMiss => "fetch_ssd_miss",
            Op::MigNvmToDram => "migration_nvm_to_dram",
            Op::MigSsdToDram => "migration_ssd_to_dram",
            Op::MigSsdToNvm => "migration_ssd_to_nvm",
            Op::MigDramToNvm => "migration_dram_to_nvm",
            Op::MigDramToSsd => "migration_dram_to_ssd",
            Op::MigNvmToSsd => "migration_nvm_to_ssd",
            Op::EvictDram => "evict_dram",
            Op::EvictNvm => "evict_nvm",
            Op::WalAppend => "wal_append",
            Op::TxnCommit => "txn_commit",
            Op::TxnAbort => "txn_abort",
            Op::WorkloadOp => "workload_op",
            Op::FaultInjected => "fault_injected",
            Op::IoRetry => "io_retry",
            Op::PinRestart => "pin_restart",
            Op::Checkpoint => "checkpoint",
            Op::MigrationStall => "migration_stall",
            Op::ReaderStall => "reader_stall",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(names.insert(op.name()));
        }
        assert_eq!(names.len(), OP_COUNT);
    }
}
