//! Bounded per-thread trace-event rings with CSV and chrome-trace export.
//!
//! When tracing is enabled (see [`crate::set_tracing`]), instrumented code
//! pushes structured [`TraceEvent`]s into a ring owned by the recording
//! thread (capacity [`RING_CAPACITY`]; oldest events are overwritten).
//! [`drain`] collects and clears every ring; the result can be formatted
//! with [`to_csv`] or [`to_chrome_trace`] (loadable in `chrome://tracing`
//! / Perfetto).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use crate::op::Op;

/// Maximum events retained per thread before the oldest are overwritten.
pub const RING_CAPACITY: usize = 8192;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time in nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Operation kind.
    pub op: Op,
    /// Page id the operation touched (`u64::MAX` when not applicable).
    pub page: u64,
    /// Tier label (`"dram"`, `"nvm"`, `"ssd"`, or `""`).
    pub tier: &'static str,
    /// Dense id of the recording thread.
    pub thread: u32,
}

struct Ring {
    thread: u32,
    buf: Mutex<RingBuf>,
}

struct RingBuf {
    events: Vec<TraceEvent>,
    /// Next write position once `events` has reached capacity.
    head: usize,
}

struct Registry {
    rings: Mutex<Vec<Weak<Ring>>>,
    next_thread: AtomicU32,
    epoch: Instant,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        rings: Mutex::new(Vec::new()),
        next_thread: AtomicU32::new(0),
        epoch: Instant::now(),
    })
}

thread_local! {
    static LOCAL_RING: Arc<Ring> = {
        let reg = registry();
        let ring = Arc::new(Ring {
            // relaxed: thread-slot allocation needs uniqueness only.
            thread: reg.next_thread.fetch_add(1, Ordering::Relaxed),
            buf: Mutex::new(RingBuf { events: Vec::new(), head: 0 }),
        });
        reg.rings.lock().unwrap().push(Arc::downgrade(&ring));
        ring
    };
}

/// Nanoseconds since the process trace epoch.
pub(crate) fn now_ns() -> u64 {
    registry().epoch.elapsed().as_nanos() as u64
}

/// Push one event into the calling thread's ring.
pub(crate) fn push(mut ev: TraceEvent) {
    LOCAL_RING.with(|ring| {
        ev.thread = ring.thread;
        let mut buf = ring.buf.lock().unwrap();
        if buf.events.len() < RING_CAPACITY {
            buf.events.push(ev);
        } else {
            let head = buf.head;
            buf.events[head] = ev;
            buf.head = (head + 1) % RING_CAPACITY;
        }
    });
}

/// Collect and clear all per-thread rings, ordered by start time.
pub fn drain() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let mut rings = registry().rings.lock().unwrap();
    rings.retain(|weak| {
        let Some(ring) = weak.upgrade() else {
            return false;
        };
        let mut buf = ring.buf.lock().unwrap();
        // Restore chronological order for wrapped rings.
        let head = buf.head;
        out.extend(buf.events[head..].iter().cloned());
        out.extend(buf.events[..head].iter().cloned());
        buf.events.clear();
        buf.head = 0;
        true
    });
    out.sort_by_key(|e| e.ts_ns);
    out
}

/// Render events as CSV (`ts_ns,dur_ns,op,page,tier,thread`).
pub fn to_csv(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 48 + 64);
    s.push_str("ts_ns,dur_ns,op,page,tier,thread\n");
    for e in events {
        s.push_str(&format!(
            "{},{},{},{},{},{}\n",
            e.ts_ns,
            e.dur_ns,
            e.op.name(),
            e.page,
            e.tier,
            e.thread
        ));
    }
    s
}

/// Render events in the chrome-trace "X" (complete-event) JSON format.
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(events.len() * 120 + 32);
    s.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        // chrome-trace timestamps are microseconds (floats allowed).
        s.push_str(&format!(
            concat!(
                "{{\"name\":\"{}\",\"cat\":\"spitfire\",\"ph\":\"X\",",
                "\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},",
                "\"args\":{{\"page\":{},\"tier\":\"{}\"}}}}"
            ),
            e.op.name(),
            e.ts_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            e.thread,
            e.page,
            e.tier
        ));
    }
    s.push_str("\n]\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            dur_ns: 5,
            op: Op::FetchDramHit,
            page: 7,
            tier: "dram",
            thread: 0,
        }
    }

    #[test]
    fn push_drain_roundtrip_and_bounded() {
        let _g = crate::test_guard();
        // Drain anything left over from other tests first.
        let _ = drain();
        for i in 0..(RING_CAPACITY + 10) as u64 {
            push(ev(i));
        }
        let drained = drain();
        assert_eq!(drained.len(), RING_CAPACITY);
        // Oldest 10 were overwritten; order is chronological.
        assert_eq!(drained.first().unwrap().ts_ns, 10);
        assert!(drained.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(drain().is_empty());
    }

    #[test]
    fn csv_and_chrome_trace_render() {
        let events = vec![ev(1000), ev(2000)];
        let csv = to_csv(&events);
        assert!(csv.starts_with("ts_ns,dur_ns,op,page,tier,thread\n"));
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("fetch_dram_hit"));
        let json = to_chrome_trace(&events);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.000"));
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }
}
