//! Labeled latency histograms: string-keyed histogram sets for dimensions
//! that are not known at compile time.
//!
//! The [`Op`](crate::Op)-keyed registry covers the fixed vocabulary of
//! buffer-manager operations; a multi-tenant front end additionally needs
//! one histogram *per tenant* (and per request class), where the label set
//! is configuration. Labeled histograms live in a global string-keyed
//! registry, are created on first use, and are folded into
//! [`Report::capture`](crate::Report::capture) alongside the per-op
//! histograms.
//!
//! Hot-path cost: [`labeled_histogram`] takes a read lock and clones an
//! `Arc` — callers that record per request should look the handle up once
//! and keep it.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

use crate::hist::{HistogramSet, HistogramSnapshot};

fn registry() -> &'static RwLock<HashMap<String, Arc<HistogramSet>>> {
    static REG: OnceLock<RwLock<HashMap<String, Arc<HistogramSet>>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(HashMap::new()))
}

fn lock_read(
    reg: &'static RwLock<HashMap<String, Arc<HistogramSet>>>,
) -> std::sync::RwLockReadGuard<'static, HashMap<String, Arc<HistogramSet>>> {
    reg.read().unwrap_or_else(|p| p.into_inner())
}

/// The histogram registered under `label`, created empty on first use.
///
/// Cache the returned `Arc` when recording per-request: the lookup takes
/// the registry read lock.
pub fn labeled_histogram(label: &str) -> Arc<HistogramSet> {
    let reg = registry();
    if let Some(h) = lock_read(reg).get(label) {
        return Arc::clone(h);
    }
    let mut map = reg.write().unwrap_or_else(|p| p.into_inner());
    Arc::clone(
        map.entry(label.to_string())
            .or_insert_with(|| Arc::new(HistogramSet::new())),
    )
}

/// Record one duration under `label` (lookup included — prefer caching
/// [`labeled_histogram`] on hot paths).
pub fn record_labeled(label: &str, d: Duration) {
    labeled_histogram(label).record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
}

/// Snapshots of every labeled histogram holding at least one sample,
/// sorted by label.
pub fn labeled_snapshots() -> Vec<(String, HistogramSnapshot)> {
    let mut out: Vec<(String, HistogramSnapshot)> = lock_read(registry())
        .iter()
        .filter_map(|(label, h)| {
            let snap = h.snapshot();
            (snap.count > 0).then(|| (label.clone(), snap))
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Drop every labeled histogram (between experiment phases). Handles
/// cached by callers keep recording into detached sets that no longer
/// appear in reports.
pub fn reset_labeled() {
    registry()
        .write()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_histograms_round_trip() {
        let _g = crate::test_guard();
        reset_labeled();
        record_labeled("tenant0/get", Duration::from_micros(5));
        record_labeled("tenant0/get", Duration::from_micros(7));
        record_labeled("tenant1/get", Duration::from_micros(9));
        labeled_histogram("tenant2/idle"); // never records; filtered out
        let snaps = labeled_snapshots();
        let labels: Vec<&str> = snaps.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["tenant0/get", "tenant1/get"]);
        assert_eq!(snaps[0].1.count, 2);
        assert_eq!(snaps[1].1.count, 1);
        reset_labeled();
        assert!(labeled_snapshots().is_empty());
    }

    #[test]
    fn same_label_shares_one_histogram() {
        let _g = crate::test_guard();
        reset_labeled();
        let a = labeled_histogram("shared");
        let b = labeled_histogram("shared");
        a.record(100);
        assert_eq!(b.snapshot().count, 1);
        reset_labeled();
    }
}
