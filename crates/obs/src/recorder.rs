//! The hot-path recording API.
//!
//! Instrumented code calls [`op_start`] at the top of an operation and one
//! of the `record_*` functions at each exit point. When recording is
//! disabled (the default) the entire path is **one relaxed atomic load** —
//! no `Instant::now()`, no histogram touch — so benchmarks are unaffected.
//!
//! When recording is enabled, `op_start` *samples*: only every Nth call per
//! thread takes a timestamp (N = [`sample_interval`], default
//! [`DEFAULT_SAMPLE_INTERVAL`]). A clock read costs ~50 ns on commodity
//! hardware — two of them per op would be a large fraction of a DRAM-hit
//! fetch — so sampling is what keeps the enabled recorder inside the < 5%
//! overhead budget while leaving quantile estimates unbiased. The interval
//! is prime so the sampled position rotates through workload loops instead
//! of phase-locking onto one op type. Set the interval to 1 to time every
//! operation (tests and offline analysis).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use crate::events::TraceEvent;
use crate::op::Op;

/// Default `op_start` sampling interval: time one in every 31 calls.
pub const DEFAULT_SAMPLE_INTERVAL: u32 = 31;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACING: AtomicBool = AtomicBool::new(false);
static SAMPLE_INTERVAL: AtomicU32 = AtomicU32::new(DEFAULT_SAMPLE_INTERVAL);

thread_local! {
    /// Calls remaining on this thread until the next sampled timestamp.
    static COUNTDOWN: Cell<u32> = const { Cell::new(0) };
}

/// Is latency recording enabled? Single relaxed load; safe on hot paths.
#[inline(always)]
pub fn enabled() -> bool {
    // relaxed: enable flag is a hint; a stale reading records or skips one extra event.
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable latency recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Is structured event tracing enabled (implies recording work per event)?
#[inline(always)]
pub fn tracing_enabled() -> bool {
    // relaxed: see `enabled`.
    TRACING.load(Ordering::Relaxed)
}

/// Globally enable or disable trace-event capture.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::SeqCst);
}

/// How many `op_start` calls share one timestamp (1 = time every call).
#[inline]
pub fn sample_interval() -> u32 {
    // relaxed: sampling knob; any recent value is acceptable.
    SAMPLE_INTERVAL.load(Ordering::Relaxed)
}

/// Set the `op_start` sampling interval. Clamped to at least 1. Use 1 to
/// time every operation; larger values trade histogram sample count for
/// lower hot-path overhead.
pub fn set_sample_interval(n: u32) {
    SAMPLE_INTERVAL.store(n.max(1), Ordering::SeqCst);
}

/// Start timing an operation: `Some(now)` when recording is enabled *and*
/// this call is sampled, `None` (free) otherwise. Pass the result to a
/// `record_*` function — they no-op on `None`.
#[inline(always)]
pub fn op_start() -> Option<Instant> {
    if !enabled() {
        return None;
    }
    // relaxed: sampling knob, as `sample_interval`.
    let n = SAMPLE_INTERVAL.load(Ordering::Relaxed);
    if n <= 1 {
        return Some(Instant::now());
    }
    COUNTDOWN.with(|c| {
        let left = c.get();
        if left == 0 {
            c.set(n - 1);
            Some(Instant::now())
        } else {
            c.set(left - 1);
            None
        }
    })
}

/// Record a finished duration into `op`'s histogram.
#[inline]
pub fn record_duration(op: Op, d: Duration) {
    crate::registry().histogram(op).record(d.as_nanos() as u64);
}

/// Record an operation begun at `start` (no-op when `start` is `None`).
#[inline]
pub fn record_since(op: Op, start: Option<Instant>) {
    if let Some(t) = start {
        record_duration(op, t.elapsed());
    }
}

/// Record an operation begun at `start` and, when tracing is on, emit a
/// structured trace event carrying the touched page and tier.
#[inline]
pub fn record_op(op: Op, start: Option<Instant>, page: u64, tier: &'static str) {
    let Some(t) = start else { return };
    let d = t.elapsed();
    record_duration(op, d);
    if tracing_enabled() {
        let dur_ns = d.as_nanos() as u64;
        crate::events::push(TraceEvent {
            ts_ns: crate::events::now_ns().saturating_sub(dur_ns),
            dur_ns,
            op,
            page,
            tier,
            thread: 0, // assigned by the ring
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = crate::test_guard();
        set_enabled(false);
        assert!(op_start().is_none());
        let before = crate::registry().histogram(Op::TxnAbort).snapshot().count;
        record_since(Op::TxnAbort, op_start());
        record_op(Op::TxnAbort, op_start(), 1, "dram");
        let after = crate::registry().histogram(Op::TxnAbort).snapshot().count;
        assert_eq!(before, after);
    }

    #[test]
    fn enabled_recorder_fills_histogram_and_events() {
        let _g = crate::test_guard();
        set_enabled(true);
        set_tracing(true);
        set_sample_interval(1);
        let before = crate::registry()
            .histogram(Op::MigNvmToSsd)
            .snapshot()
            .count;
        let start = op_start();
        assert!(start.is_some());
        record_op(Op::MigNvmToSsd, start, 99, "nvm");
        let after = crate::registry()
            .histogram(Op::MigNvmToSsd)
            .snapshot()
            .count;
        assert_eq!(after, before + 1);
        let events = crate::events::drain();
        assert!(events
            .iter()
            .any(|e| e.op == Op::MigNvmToSsd && e.page == 99 && e.tier == "nvm"));
        set_tracing(false);
        set_enabled(false);
        set_sample_interval(DEFAULT_SAMPLE_INTERVAL);
    }

    #[test]
    fn sampling_times_one_in_n_calls() {
        let _g = crate::test_guard();
        set_enabled(true);
        set_sample_interval(8);
        // Drain any residual countdown left by earlier tests on this thread,
        // then check the steady-state cadence: exactly one Some per 8 calls.
        while op_start().is_none() {}
        for _ in 0..3 {
            for _ in 0..7 {
                assert!(op_start().is_none());
            }
            assert!(op_start().is_some());
        }
        set_enabled(false);
        set_sample_interval(DEFAULT_SAMPLE_INTERVAL);
    }
}
