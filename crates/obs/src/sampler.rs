//! Gauge registry and the background sampler thread.
//!
//! Subsystems register named gauges as closures (typically capturing a
//! [`std::sync::Weak`] to the owning object and returning `None` once it is
//! gone — such gauges are pruned). Manual gauges (e.g. the annealing
//! temperature) are pushed with [`set_gauge`]. The sampler thread, started
//! with [`start_sampler`], snapshots every gauge on a fixed tick into a
//! bounded in-memory time series readable via [`series_snapshot`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Maximum retained ticks in the in-memory time series.
pub const SERIES_CAPACITY: usize = 4096;

type GaugeFn = Box<dyn Fn() -> Option<f64> + Send + Sync>;

struct GaugeRegistry {
    callbacks: Mutex<Vec<(String, GaugeFn)>>,
    /// Manual gauges: name → f64 bits.
    manual: Mutex<BTreeMap<String, AtomicU64>>,
    series: Mutex<SeriesBuf>,
    sampler_running: AtomicBool,
    sampler_stop: AtomicBool,
}

struct SeriesBuf {
    points: Vec<SeriesPoint>,
    head: usize,
}

/// One sampler tick: timestamp plus every gauge value at that instant.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Milliseconds since the process trace epoch.
    pub t_ms: u64,
    /// Gauge values, sorted by name.
    pub values: Vec<(String, f64)>,
}

fn registry() -> &'static GaugeRegistry {
    static REG: OnceLock<GaugeRegistry> = OnceLock::new();
    REG.get_or_init(|| GaugeRegistry {
        callbacks: Mutex::new(Vec::new()),
        manual: Mutex::new(BTreeMap::new()),
        series: Mutex::new(SeriesBuf {
            points: Vec::new(),
            head: 0,
        }),
        sampler_running: AtomicBool::new(false),
        sampler_stop: AtomicBool::new(false),
    })
}

/// Register a named gauge callback. Return `None` from the callback when the
/// underlying object is gone; the gauge is then dropped from the registry.
pub fn register_gauge(
    name: impl Into<String>,
    f: impl Fn() -> Option<f64> + Send + Sync + 'static,
) {
    registry()
        .callbacks
        .lock()
        .unwrap()
        .push((name.into(), Box::new(f)));
}

/// Set a manual gauge value (creates the gauge on first use).
pub fn set_gauge(name: &str, value: f64) {
    let reg = registry();
    {
        let manual = reg.manual.lock().unwrap();
        if let Some(cell) = manual.get(name) {
            // relaxed: the cell holds a self-contained f64 gauge; readers accept any published value.
            cell.store(value.to_bits(), Ordering::Relaxed);
            return;
        }
    }
    reg.manual
        .lock()
        .unwrap()
        .entry(name.to_string())
        .or_insert_with(|| AtomicU64::new(0))
        // relaxed: self-contained gauge cell, as above.
        .store(value.to_bits(), Ordering::Relaxed);
}

/// Evaluate every live gauge right now, sorted by name. Dead callback gauges
/// (returning `None`) are pruned.
pub fn gauge_values() -> Vec<(String, f64)> {
    let reg = registry();
    let mut out: Vec<(String, f64)> = Vec::new();
    {
        let mut callbacks = reg.callbacks.lock().unwrap();
        callbacks.retain(|(name, f)| match f() {
            Some(v) => {
                out.push((name.clone(), v));
                true
            }
            None => false,
        });
    }
    {
        let manual = reg.manual.lock().unwrap();
        for (name, bits) in manual.iter() {
            // relaxed: advisory gauge read.
            out.push((name.clone(), f64::from_bits(bits.load(Ordering::Relaxed))));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn push_point(point: SeriesPoint) {
    let mut series = registry().series.lock().unwrap();
    if series.points.len() < SERIES_CAPACITY {
        series.points.push(point);
    } else {
        let head = series.head;
        series.points[head] = point;
        series.head = (head + 1) % SERIES_CAPACITY;
    }
}

/// Chronological copy of the recorded time series.
pub fn series_snapshot() -> Vec<SeriesPoint> {
    let series = registry().series.lock().unwrap();
    let mut out = Vec::with_capacity(series.points.len());
    out.extend(series.points[series.head..].iter().cloned());
    out.extend(series.points[..series.head].iter().cloned());
    out
}

/// Discard the recorded time series.
pub fn clear_series() {
    let mut series = registry().series.lock().unwrap();
    series.points.clear();
    series.head = 0;
}

/// Record one tick synchronously (also used by the sampler thread).
pub fn sample_now() {
    push_point(SeriesPoint {
        t_ms: crate::events::now_ns() / 1_000_000,
        values: gauge_values(),
    });
}

/// Start the global background sampler at `interval` (idempotent). The
/// thread is detached and parks itself when [`stop_sampler`] is called.
pub fn start_sampler(interval: Duration) {
    let reg = registry();
    if reg.sampler_running.swap(true, Ordering::SeqCst) {
        return;
    }
    reg.sampler_stop.store(false, Ordering::SeqCst);
    std::thread::Builder::new()
        .name("spitfire-obs-sampler".into())
        .spawn(move || {
            let reg = registry();
            while !reg.sampler_stop.load(Ordering::SeqCst) {
                sample_now();
                std::thread::sleep(interval);
            }
            reg.sampler_running.store(false, Ordering::SeqCst);
        })
        .expect("spawn sampler thread");
}

/// Ask the background sampler to exit after its current tick.
pub fn stop_sampler() {
    registry().sampler_stop.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn manual_and_callback_gauges_report_and_prune() {
        set_gauge("test_manual_gauge", 1.5);
        let obj = Arc::new(42u64);
        let weak = Arc::downgrade(&obj);
        register_gauge("test_weak_gauge", move || weak.upgrade().map(|v| *v as f64));

        let values = gauge_values();
        let get = |name: &str| values.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("test_manual_gauge"), Some(1.5));
        assert_eq!(get("test_weak_gauge"), Some(42.0));

        set_gauge("test_manual_gauge", 2.5);
        drop(obj);
        let values = gauge_values();
        let get = |name: &str| values.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(get("test_manual_gauge"), Some(2.5));
        assert_eq!(get("test_weak_gauge"), None);
    }

    #[test]
    fn series_records_ticks_in_order() {
        clear_series();
        set_gauge("test_series_gauge", 7.0);
        sample_now();
        sample_now();
        let series = series_snapshot();
        assert!(series.len() >= 2);
        assert!(series.windows(2).all(|w| w[0].t_ms <= w[1].t_ms));
        assert!(series
            .last()
            .unwrap()
            .values
            .iter()
            .any(|(n, v)| n == "test_series_gauge" && *v == 7.0));
    }

    #[test]
    fn background_sampler_ticks_and_stops() {
        clear_series();
        start_sampler(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(40));
        stop_sampler();
        let n = series_snapshot().len();
        assert!(n >= 2, "expected several ticks, got {n}");
        // Give the thread a moment to observe the stop flag and exit.
        std::thread::sleep(Duration::from_millis(30));
    }
}
