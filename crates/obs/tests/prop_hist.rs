//! Property test: N threads recording concurrently into a sharded histogram
//! must agree with a serial model — identical merged counters, and every
//! tracked quantile within the documented bucket-resolution error bound.

use std::sync::Arc;

use proptest::prelude::*;
use spitfire_obs::{Histogram, HistogramSet};

/// Documented bound: 32 sub-buckets per octave → ≤ 3.1% relative error,
/// plus a little slack for the bucket-midpoint estimate.
const QUANTILE_REL_ERR: f64 = 0.035;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Concurrent sharded recording == serial recording, exactly.
    #[test]
    fn concurrent_merge_matches_serial_model(
        values in proptest::collection::vec(1..50_000_000u64, 1..400),
        threads in 2..5usize,
    ) {
        let set = Arc::new(HistogramSet::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let set = Arc::clone(&set);
                let mine: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                std::thread::spawn(move || {
                    for v in mine {
                        set.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let serial = Histogram::new();
        for &v in &values {
            serial.record(v);
        }

        // The merged concurrent snapshot must equal the serial one exactly:
        // same buckets, count, sum, min, max.
        prop_assert_eq!(set.snapshot(), serial.snapshot());
    }

    /// Histogram quantiles stay within the documented error bound of the
    /// exact (sorted-data) quantiles, including after a concurrent run.
    #[test]
    fn quantiles_within_error_bound(
        values in proptest::collection::vec(1..50_000_000u64, 10..400),
    ) {
        let set = Arc::new(HistogramSet::new());
        let handles: Vec<_> = (0..3usize)
            .map(|t| {
                let set = Arc::clone(&set);
                let mine: Vec<u64> =
                    values.iter().copied().skip(t).step_by(3).collect();
                std::thread::spawn(move || {
                    for v in mine {
                        set.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = set.snapshot();

        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, sorted.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let est = snap.quantile(q).unwrap() as f64;
            let err = (est - exact).abs() / exact;
            prop_assert!(
                err <= QUANTILE_REL_ERR,
                "q={} exact={} est={} err={}",
                q,
                exact,
                est,
                err
            );
        }
    }
}
