//! End-to-end server tests over real TCP connections: basic command
//! coverage, overload shedding, disconnect-mid-transaction cleanup, and
//! multi-tenant fairness under a flood.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spitfire_server::{
    decode_reply, encode_request, read_frame, AdmissionConfig, Command, ErrorCode, Reply,
    ReplyFrame, Request, Server, ServerConfig, TenantConfig,
};

/// A blocking test client: one request on the wire at a time.
struct Client {
    stream: TcpStream,
    tenant: u32,
    next_id: u64,
}

impl Client {
    fn connect(server: &Server, tenant: u32) -> Client {
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).unwrap();
        Client {
            stream,
            tenant,
            next_id: 0,
        }
    }

    fn send(&mut self, cmd: Command) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let frame = encode_request(&Request {
            tenant: self.tenant,
            request_id: id,
            cmd,
        });
        self.stream.write_all(&frame).expect("send");
        id
    }

    fn recv(&mut self) -> ReplyFrame {
        let frame = read_frame(&mut self.stream)
            .expect("read reply")
            .expect("server closed connection");
        decode_reply(&frame).expect("decode reply")
    }

    fn call(&mut self, cmd: Command) -> Reply {
        let id = self.send(cmd);
        let reply = self.recv();
        assert_eq!(reply.request_id, id, "replies arrive in order");
        reply.reply
    }
}

fn small_config(tenants: Vec<TenantConfig>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        page_size: 4096,
        dram_bytes: 2 << 20,
        nvm_bytes: 8 << 20,
        value_bytes: 32,
        preload_keys: 256,
        tenants,
        admission: AdmissionConfig::default(),
        pressure_poll: Duration::from_millis(5),
        allow_remote_shutdown: false,
    }
}

#[test]
fn commands_round_trip_over_tcp() {
    let server = Server::start(small_config(vec![TenantConfig::default()])).unwrap();
    let mut c = Client::connect(&server, 0);

    // Preloaded key: readable, empty value.
    assert_eq!(c.call(Command::Get { key: 3 }), Reply::Value(vec![]));
    assert_eq!(
        c.call(Command::Put {
            key: 3,
            value: b"abc".to_vec()
        }),
        Reply::Ok
    );
    assert_eq!(
        c.call(Command::Get { key: 3 }),
        Reply::Value(b"abc".to_vec())
    );

    // Delete hides the key; a second delete reports NotFound.
    assert_eq!(c.call(Command::Delete { key: 3 }), Reply::Ok);
    assert!(matches!(
        c.call(Command::Get { key: 3 }),
        Reply::Error {
            code: ErrorCode::NotFound,
            ..
        }
    ));
    assert!(matches!(
        c.call(Command::Delete { key: 3 }),
        Reply::Error {
            code: ErrorCode::NotFound,
            ..
        }
    ));

    // Scan skips the tombstone.
    match c.call(Command::Scan { start: 0, limit: 8 }) {
        Reply::Rows(rows) => {
            assert!(!rows.is_empty());
            assert!(rows.iter().all(|(k, _)| *k != 3));
        }
        other => panic!("expected rows, got {other:?}"),
    }

    // Explicit transaction: begin, write, commit, then read it back.
    let txn_id = match c.call(Command::Begin) {
        Reply::TxnId(id) => id,
        other => panic!("expected txn id, got {other:?}"),
    };
    assert!(txn_id > 0);
    assert!(matches!(
        c.call(Command::Begin),
        Reply::Error {
            code: ErrorCode::TxnState,
            ..
        }
    ));
    assert_eq!(
        c.call(Command::Put {
            key: 7,
            value: b"txn".to_vec()
        }),
        Reply::Ok
    );
    assert_eq!(c.call(Command::Commit), Reply::Ok);
    assert_eq!(
        c.call(Command::Get { key: 7 }),
        Reply::Value(b"txn".to_vec())
    );
    assert!(matches!(
        c.call(Command::Commit),
        Reply::Error {
            code: ErrorCode::TxnState,
            ..
        }
    ));

    // Oversized value is a protocol error, not a crash.
    assert!(matches!(
        c.call(Command::Put {
            key: 1,
            value: vec![0u8; 64]
        }),
        Reply::Error {
            code: ErrorCode::Protocol,
            retryable: false,
            ..
        }
    ));

    // Stats returns JSON mentioning the tenant counters.
    match c.call(Command::Stats) {
        Reply::Stats(json) => {
            assert!(json.contains("\"tenants\""), "stats json: {json}");
            assert!(json.contains("\"ok_ops\""));
            assert!(json.contains("\"wal_bytes\""), "stats json: {json}");
            // No snapshot engine is attached in this config, so the
            // gauges report the zero placeholders.
            assert!(json.contains("\"snapshot_generation\": 0"));
            assert!(json.contains("\"last_checkpoint_pages\": 0"));
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Remote shutdown is disabled in this config.
    assert!(matches!(
        c.call(Command::Shutdown),
        Reply::Error {
            code: ErrorCode::Protocol,
            ..
        }
    ));

    assert_eq!(server.protocol_errors(), 0);
    server.shutdown();
}

#[test]
fn disconnect_mid_txn_aborts_and_releases() {
    let server = Server::start(small_config(vec![TenantConfig::default()])).unwrap();
    let (commits_before, aborts_before) = server.database().txn_stats();

    let mut c = Client::connect(&server, 0);
    assert!(matches!(c.call(Command::Begin), Reply::TxnId(_)));
    assert_eq!(
        c.call(Command::Put {
            key: 11,
            value: b"doomed".to_vec()
        }),
        Reply::Ok
    );
    // Drop the connection with the transaction still open.
    c.stream.shutdown(Shutdown::Both).unwrap();
    drop(c);

    // The reader must notice, abort the session's transaction, and release
    // its pins.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, aborts) = server.database().txn_stats();
        if aborts > aborts_before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect never aborted the txn"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let (commits_after, _) = server.database().txn_stats();
    assert_eq!(
        commits_after - commits_before,
        0,
        "nothing should have committed via the dead session"
    );

    // The key is untouched and writable by a fresh connection — no stale
    // uncommitted version, no stuck lock.
    let mut c2 = Client::connect(&server, 0);
    assert_eq!(c2.call(Command::Get { key: 11 }), Reply::Value(vec![]));
    assert_eq!(
        c2.call(Command::Put {
            key: 11,
            value: b"alive".to_vec()
        }),
        Reply::Ok
    );
    assert_eq!(
        c2.call(Command::Get { key: 11 }),
        Reply::Value(b"alive".to_vec())
    );
    server.shutdown();
}

#[test]
fn overload_sheds_with_retryable_errors() {
    let mut config = small_config(vec![TenantConfig::default()]);
    config.admission = AdmissionConfig {
        per_conn_queue: 2,
        global_inflight: 8,
        pressure_shedding: false,
    };
    let server = Server::start(config).unwrap();

    // Pipeline far more requests than the queue bound allows.
    let mut c = Client::connect(&server, 0);
    const PIPELINED: usize = 256;
    for i in 0..PIPELINED {
        c.send(Command::Get { key: i as u64 % 16 });
    }
    let mut ok = 0u64;
    let mut shed = 0u64;
    for _ in 0..PIPELINED {
        match c.recv().reply {
            Reply::Value(_) => ok += 1,
            Reply::Error {
                code: ErrorCode::Overload,
                retryable,
                ..
            } => {
                assert!(retryable, "overload sheds must be retryable");
                shed += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert!(ok > 0, "some requests must be served");
    assert!(shed > 0, "queue bound must shed under pipelined overload");
    assert_eq!(server.admission().tenant(0).shed_total(), shed);

    // The server remains healthy afterwards.
    assert_eq!(c.call(Command::Get { key: 0 }), Reply::Value(vec![]));
    assert_eq!(server.protocol_errors(), 0);
    server.shutdown();
}

/// Flood tenant 0 (quota-limited, weight 1) from several connections while
/// tenant 1 (unlimited, weight 4) issues sparse point reads. The quiet
/// tenant's latency and DRAM residency must stay bounded, and the hot
/// tenant must see quota sheds.
#[test]
fn flooding_tenant_cannot_starve_quiet_tenant() {
    let mut config = small_config(vec![
        // Low quota so it binds even at debug-build throughput: the burst
        // bucket holds one second's quota, so the flood exceeds it fast.
        TenantConfig {
            weight: 1,
            quota_ops_per_sec: Some(200.0),
        },
        TenantConfig {
            weight: 4,
            quota_ops_per_sec: None,
        },
    ]);
    config.workers = 2;
    let server = Server::start(config).unwrap();
    let stop = Arc::new(AtomicU64::new(0));
    let hot_ops = Arc::new(AtomicU64::new(0));

    // Hot tenant: 4 connections hammering PUT/GET as fast as sheds allow.
    let mut floods = Vec::new();
    for f in 0..4u64 {
        let addr = server.local_addr();
        let stop = Arc::clone(&stop);
        let hot_ops = Arc::clone(&hot_ops);
        floods.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            stream.set_nodelay(true).unwrap();
            let mut c = Client {
                stream,
                tenant: 0,
                next_id: 0,
            };
            let mut k = f * 64;
            while stop.load(Ordering::Relaxed) == 0 {
                let cmd = if k % 2 == 0 {
                    Command::Put {
                        key: k % 256,
                        value: b"hot".to_vec(),
                    }
                } else {
                    Command::Get { key: k % 256 }
                };
                let _ = c.call(cmd);
                hot_ops.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        }));
    }

    // Quiet tenant: sparse reads over a small working set, latencies
    // sampled client-side.
    let mut quiet_lat_us: Vec<u64> = Vec::new();
    let mut quiet = Client::connect(&server, 1);
    for i in 0..200u64 {
        let t0 = Instant::now();
        let reply = quiet.call(Command::Get { key: i % 32 });
        quiet_lat_us.push(t0.elapsed().as_micros() as u64);
        assert!(
            matches!(reply, Reply::Value(_)),
            "quiet tenant read failed: {reply:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(1, Ordering::Relaxed);
    for t in floods {
        t.join().unwrap();
    }

    // Quiet tenant p99 stays bounded even under the flood (generous bound
    // for shared CI machines; unfair scheduling shows up as seconds, not
    // milliseconds, once the hot tenant pipelines thousands of ops).
    quiet_lat_us.sort_unstable();
    let p99 = quiet_lat_us[quiet_lat_us.len() * 99 / 100 - 1];
    assert!(p99 < 250_000, "quiet tenant p99 {p99}us exceeds 250ms");

    // The flood ran and the quota shed it.
    assert!(hot_ops.load(Ordering::Relaxed) > 500, "flood too small");
    assert!(
        server.admission().tenant(0).shed_total() > 0,
        "hot tenant never shed"
    );
    assert_eq!(server.admission().tenant(1).shed_total(), 0);

    // The quiet tenant's recently-touched pages keep DRAM residency: the
    // hot tenant cannot evict the whole working set.
    let quiet_pages = server.database().table_data_pages(1).unwrap();
    let resident = quiet_pages
        .iter()
        .filter(|p| server.buffer_manager().is_dram_resident(**p))
        .count();
    assert!(
        resident >= 1,
        "quiet tenant lost all {} pages from DRAM",
        quiet_pages.len()
    );
    server.shutdown();
}
