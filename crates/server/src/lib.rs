//! TCP front end for the Spitfire database.
//!
//! This crate wires [`spitfire_txn::Database`] to the network for
//! thousands of concurrent clients:
//!
//! * [`protocol`] — a versioned, length-prefixed binary wire protocol
//!   (GET / PUT / DELETE / SCAN / BEGIN / COMMIT / ABORT / STATS /
//!   SHUTDOWN) with a per-frame CRC32 reusing the WAL's checksum.
//! * [`admission`] — bounded per-connection queues, a global in-flight
//!   cap, buffer-memory-pressure shedding driven by
//!   [`spitfire_core::BufferManager::pressure`], and per-tenant
//!   token-bucket quotas. Shed requests get typed, retryable errors.
//! * [`scheduler`] — deficit round-robin over per-tenant rings so a
//!   flooding tenant cannot starve a quiet one.
//! * [`server`] — the listener, per-connection reader threads, the
//!   worker pool executing against per-connection [`spitfire_txn::Session`]s,
//!   and the pressure monitor.
//!
//! ```no_run
//! use spitfire_server::{Server, ServerConfig, TenantConfig};
//!
//! let mut config = ServerConfig::default();
//! config.tenants = vec![
//!     TenantConfig { weight: 4, quota_ops_per_sec: None },
//!     TenantConfig { weight: 1, quota_ops_per_sec: Some(10_000.0) },
//! ];
//! let server = Server::start(config).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use admission::{Admission, AdmissionConfig, TenantConfig, Verdict};
pub use protocol::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, Command, ErrorCode,
    FrameError, Opcode, Reply, ReplyFrame, Request,
};
pub use scheduler::{Schedulable, Scheduler};
pub use server::{decode_value, encode_value, tombstone, Server, ServerConfig};
