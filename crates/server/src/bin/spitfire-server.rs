//! Standalone Spitfire server.
//!
//! ```text
//! spitfire-server --addr 127.0.0.1:7878 --tenants 2 --workers 4 \
//!     --quota 1:5000 --weight 0:4 --allow-remote-shutdown --max-secs 60
//! ```
//!
//! `--quota T:OPS` caps tenant `T` at `OPS` admitted ops/s; `--weight T:W`
//! sets its fair-share weight. Both repeat. The process exits when a
//! SHUTDOWN frame arrives (with `--allow-remote-shutdown`) or after
//! `--max-secs`.

use std::time::{Duration, Instant};

use spitfire_server::{Server, ServerConfig, TenantConfig};

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut n_tenants = 1usize;
    let mut quotas: Vec<(usize, f64)> = Vec::new();
    let mut weights: Vec<(usize, u32)> = Vec::new();
    let mut max_secs: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take = |name: &str| -> String {
            i += 1;
            args.get(i)
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
                .clone()
        };
        match flag.as_str() {
            "--addr" => config.addr = take("--addr"),
            "--tenants" => n_tenants = parse(&take("--tenants"), "--tenants"),
            "--workers" => config.workers = parse(&take("--workers"), "--workers"),
            "--value-bytes" => config.value_bytes = parse(&take("--value-bytes"), "--value-bytes"),
            "--preload-keys" => {
                config.preload_keys = parse(&take("--preload-keys"), "--preload-keys")
            }
            "--dram-mb" => {
                config.dram_bytes = parse::<usize>(&take("--dram-mb"), "--dram-mb") << 20
            }
            "--nvm-mb" => config.nvm_bytes = parse::<usize>(&take("--nvm-mb"), "--nvm-mb") << 20,
            "--conn-queue" => {
                config.admission.per_conn_queue = parse(&take("--conn-queue"), "--conn-queue")
            }
            "--global-inflight" => {
                config.admission.global_inflight =
                    parse(&take("--global-inflight"), "--global-inflight")
            }
            "--no-pressure-shedding" => config.admission.pressure_shedding = false,
            "--quota" => quotas.push(parse_pair(&take("--quota"), "--quota")),
            "--weight" => weights.push(parse_pair(&take("--weight"), "--weight")),
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--max-secs" => max_secs = Some(parse(&take("--max-secs"), "--max-secs")),
            "--help" | "-h" => {
                println!(
                    "usage: spitfire-server [--addr A] [--tenants N] [--workers N]\n\
                     [--value-bytes N] [--preload-keys N] [--dram-mb N] [--nvm-mb N]\n\
                     [--conn-queue N] [--global-inflight N] [--no-pressure-shedding]\n\
                     [--quota T:OPS]... [--weight T:W]... [--allow-remote-shutdown]\n\
                     [--max-secs N]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    config.tenants = vec![TenantConfig::default(); n_tenants.max(1)];
    for (t, w) in weights {
        if t >= config.tenants.len() {
            die(&format!("--weight tenant {t} out of range"));
        }
        config.tenants[t].weight = w;
    }
    for (t, q) in quotas {
        if t >= config.tenants.len() {
            die(&format!("--quota tenant {t} out of range"));
        }
        config.tenants[t].quota_ops_per_sec = Some(q);
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => die(&format!("failed to start: {e}")),
    };
    println!("spitfire-server listening on {}", server.local_addr());

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if server.stop_requested() {
            println!("shutdown requested");
            break;
        }
        if let Some(secs) = max_secs {
            if started.elapsed() >= Duration::from_secs(secs) {
                println!("max run time reached");
                break;
            }
        }
    }
    server.shutdown();
    println!("spitfire-server exited cleanly");
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("bad value for {flag}: {s}")))
}

fn parse_pair<T: std::str::FromStr>(s: &str, flag: &str) -> (usize, T) {
    let (a, b) = s
        .split_once(':')
        .unwrap_or_else(|| die(&format!("{flag} wants T:VALUE, got {s}")));
    (parse(a, flag), parse(b, flag))
}

fn die(msg: &str) -> ! {
    eprintln!("spitfire-server: {msg}");
    std::process::exit(2);
}
