//! The server proper: listener, per-connection readers, worker pool, and
//! the memory-pressure monitor.
//!
//! # Threading model
//!
//! * **Acceptor** — one thread polling a non-blocking listener; spawns a
//!   small-stack reader thread per connection.
//! * **Readers** — one per connection; block in [`read_frame`], decode,
//!   run [`Admission::admit`], and either write a shed reply inline or
//!   push the request onto the connection's bounded queue and mark the
//!   connection ready in the [`Scheduler`]. Readers never touch the
//!   buffer manager, so a flood of connections cannot monopolise it.
//! * **Workers** — a small pool (one per-thread descriptor cache each, as
//!   everywhere else in the tree); each pulls a *connection* from the
//!   weighted-fair scheduler, executes a batch of its requests against
//!   the connection's [`Session`], and writes replies.
//! * **Pressure monitor** — samples [`BufferManager::pressure`] and
//!   raises the admission shed signal while free frames sit below the
//!   maintenance low watermark or miss-path backpressure fallbacks climb.
//!
//! A connection is pinned to the tenant of its first request; frames that
//! later name a different tenant are protocol errors. Disconnects abort
//! any open transaction (the [`Session`] drop / explicit abort) and
//! release every queued request's admission charge.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use spitfire_core::{BufferManager, BufferManagerConfig, Maintenance};
use spitfire_obs::HistogramSet;
use spitfire_txn::{Database, DbConfig, Session, TxnError};

use crate::admission::{Admission, AdmissionConfig, TenantConfig, Verdict};
use crate::protocol::{
    encode_reply, read_frame, Command, ErrorCode, Opcode, Reply, Request, MAX_FRAME,
};
use crate::scheduler::{Schedulable, Scheduler};

/// Tenant id of a connection before its first request arrives.
const TENANT_UNSET: u32 = u32::MAX;

/// Requests a worker executes per scheduler dispatch before re-queueing
/// the connection (bounds head-of-line blocking by one busy connection).
const WORKER_BATCH: usize = 8;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `"127.0.0.1:0"` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads executing database operations.
    pub workers: usize,
    /// Buffer-manager page size in bytes.
    pub page_size: usize,
    /// DRAM tier capacity in bytes.
    pub dram_bytes: usize,
    /// NVM tier capacity in bytes.
    pub nvm_bytes: usize,
    /// Maximum value payload per key; tuple size is `2 + value_bytes`.
    pub value_bytes: usize,
    /// Keys preloaded per tenant table at startup (keys `0..preload`).
    pub preload_keys: u64,
    /// One entry per tenant: scheduler weight and optional quota.
    pub tenants: Vec<TenantConfig>,
    /// Queue bounds and pressure shedding.
    pub admission: AdmissionConfig,
    /// Pressure-monitor sampling interval.
    pub pressure_poll: Duration,
    /// Whether a SHUTDOWN frame may stop the server (CI smoke uses this).
    pub allow_remote_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            page_size: 4096,
            dram_bytes: 4 << 20,
            nvm_bytes: 16 << 20,
            value_bytes: 64,
            preload_keys: 1024,
            tenants: vec![TenantConfig::default()],
            admission: AdmissionConfig::default(),
            pressure_poll: Duration::from_millis(5),
            allow_remote_shutdown: false,
        }
    }
}

/// One request sitting in a connection's queue.
struct Queued {
    req: Request,
    enqueued: Instant,
}

/// Per-connection state shared between its reader and the workers.
pub struct Conn {
    id: u64,
    /// Reader-side stream; also shut down by the server to unblock the
    /// reader at stop time.
    stream: TcpStream,
    /// Writer half (a `try_clone`), serialised across workers + reader.
    write: Mutex<TcpStream>,
    /// Tenant pinned by the first request (`TENANT_UNSET` before that).
    tenant: AtomicU32,
    queue: Mutex<Vec<Queued>>,
    /// True while the connection sits in (or is claimed from) the
    /// scheduler; guards against double-enqueue.
    scheduled: AtomicBool,
    closed: AtomicBool,
    session: Mutex<Session>,
}

impl Schedulable for Conn {
    fn tenant(&self) -> u32 {
        // relaxed: the tenant pin is written once by the connection's own handler; cross-thread readers accept any snapshot.
        self.tenant.load(Ordering::Relaxed)
    }
}

impl Conn {
    fn send(&self, opcode: Opcode, request_id: u64, reply: &Reply) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        // relaxed: see `tenant` — write-once pin, advisory readers.
        let tenant = self.tenant.load(Ordering::Relaxed);
        let frame = encode_reply(opcode, tenant, request_id, reply);
        let mut w = self.write.lock();
        if w.write_all(&frame).is_err() {
            self.closed.store(true, Ordering::Release);
        }
    }
}

/// State shared by every server thread.
struct Shared {
    config: ServerConfig,
    bm: Arc<BufferManager>,
    db: Arc<Database>,
    admission: Admission,
    sched: Scheduler<Conn>,
    stop: AtomicBool,
    conns: Mutex<HashMap<u64, Arc<Conn>>>,
    next_conn: AtomicU64,
    accepted: AtomicU64,
    protocol_errors: AtomicU64,
    /// Server-side request latency (admission → reply), one per tenant.
    tenant_hists: Vec<Arc<HistogramSet>>,
}

/// A running server; dropping it stops and joins everything.
pub struct Server {
    shared: Arc<Shared>,
    maintenance: Maintenance,
    addr: std::net::SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Build the storage stack, preload tables, bind, and spin up the
    /// acceptor, worker pool, and pressure monitor.
    pub fn start(config: ServerConfig) -> Result<Server, Box<dyn std::error::Error>> {
        assert!(!config.tenants.is_empty(), "need at least one tenant");
        assert!(
            config.value_bytes + 2 <= MAX_FRAME / 2,
            "value_bytes too large for the frame limit"
        );
        let bm_config = BufferManagerConfig::builder()
            .page_size(config.page_size)
            .dram_capacity(config.dram_bytes)
            .nvm_capacity(config.nvm_bytes)
            .build()?;
        let bm = Arc::new(BufferManager::new(bm_config)?);
        let maintenance = bm.maintenance();
        let db = Arc::new(Database::create(
            Arc::clone(&bm),
            DbConfig {
                log_page_size: config.page_size,
                ..DbConfig::default()
            },
        )?);
        let tuple_size = 2 + config.value_bytes;
        for t in 0..config.tenants.len() as u32 {
            db.create_table(t, tuple_size)?;
            preload(&db, t, config.preload_keys, tuple_size)?;
        }
        // Start background maintenance only after the bulk preload, so the
        // load phase doesn't race the watermark evictor.
        maintenance.start();

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let weights: Vec<u32> = config.tenants.iter().map(|t| t.weight).collect();
        let tenant_hists = (0..config.tenants.len())
            .map(|t| spitfire_obs::labeled_histogram(&format!("srv_tenant{t}")))
            .collect();
        let shared = Arc::new(Shared {
            admission: Admission::new(config.admission.clone(), &config.tenants),
            sched: Scheduler::new(weights),
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            tenant_hists,
            config,
            bm,
            db,
        });

        let mut threads = Vec::new();
        for w in 0..shared.config.workers.max(1) {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("spitfire-worker-{w}"))
                    .spawn(move || worker_loop(&s))?,
            );
        }
        {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("spitfire-pressure".to_string())
                    .spawn(move || pressure_loop(&s))?,
            );
        }
        {
            let s = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("spitfire-accept".to_string())
                    .spawn(move || accept_loop(&s, listener))?,
            );
        }
        Ok(Server {
            shared,
            maintenance,
            addr,
            threads,
        })
    }

    /// The bound address (use with `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The underlying database (tests inspect residency and txn stats).
    pub fn database(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// The underlying buffer manager.
    pub fn buffer_manager(&self) -> &Arc<BufferManager> {
        &self.shared.bm
    }

    /// Per-tenant admission state (tests assert shed counts).
    pub fn admission(&self) -> &Admission {
        &self.shared.admission
    }

    /// Total protocol errors observed (malformed / corrupt frames).
    pub fn protocol_errors(&self) -> u64 {
        // relaxed: advisory statistic.
        self.shared.protocol_errors.load(Ordering::Relaxed)
    }

    /// Whether a stop has been requested (locally or via SHUTDOWN frame).
    pub fn stop_requested(&self) -> bool {
        // relaxed: shutdown flag; a late observer just loops once more before noticing.
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Request a stop: wake workers, unblock readers, stop maintenance.
    pub fn stop(&self) {
        self.shared.begin_stop();
        self.maintenance.stop();
    }

    /// Stop and join all threads, consuming the server.
    pub fn shutdown(mut self) {
        self.stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Shared {
    fn begin_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.sched.stop();
        for conn in self.conns.lock().values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Build the STATS reply payload (hand-rolled JSON, like `obs`).
    fn stats_json(&self) -> String {
        let p = self.bm.pressure();
        let m = self.bm.metrics();
        let (commits, aborts) = self.db.txn_stats();
        // Snapshot/WAL health: generation 0 and zeroed checkpoint fields
        // mean no snapshot engine is attached (or none has completed).
        let (snapshot_generation, last_checkpoint_ms, last_checkpoint_pages) =
            match self.db.snapshot_engine() {
                Some(engine) => (
                    engine.generation(),
                    engine.last_checkpoint_micros() as f64 / 1000.0,
                    engine.last_checkpoint_pages(),
                ),
                None => (0, 0.0, 0),
            };
        let mut s = format!(
            "{{\"conns\": {}, \"accepted\": {}, \"inflight\": {}, \
             \"under_pressure\": {}, \"protocol_errors\": {}, \
             \"commits\": {}, \"aborts\": {}, \
             \"dram_free\": {}, \"dram_low\": {}, \
             \"nvm_free\": {}, \"nvm_low\": {}, \
             \"wal_bytes\": {}, \"snapshot_generation\": {}, \
             \"last_checkpoint_ms\": {}, \"last_checkpoint_pages\": {}, \
             \"migrations_aborted\": {}, \
             \"tenants\": [",
            self.conns.lock().len(),
            // relaxed: stats-frame snapshot; all fields are advisory counters with no cross-field consistency claim.
            self.accepted.load(Ordering::Relaxed),
            self.admission.inflight(),
            self.admission.under_pressure(),
            self.protocol_errors.load(Ordering::Relaxed),
            commits,
            aborts,
            p.dram_free,
            p.dram_low,
            p.nvm_free,
            p.nvm_low,
            self.db.wal().log_bytes(),
            snapshot_generation,
            last_checkpoint_ms,
            last_checkpoint_pages,
            m.migrations_aborted,
        );
        for (i, t) in self.admission.tenants().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"tenant\": {}, \"weight\": {}, \"admitted\": {}, \
                 \"shed_queue\": {}, \"shed_pressure\": {}, \"shed_quota\": {}, \
                 \"ok_ops\": {}, \"err_ops\": {}}}",
                i,
                t.weight,
                // relaxed: advisory per-tenant statistics, as above.
                t.admitted.load(Ordering::Relaxed),
                t.shed_queue.load(Ordering::Relaxed),
                t.shed_pressure.load(Ordering::Relaxed),
                t.shed_quota.load(Ordering::Relaxed),
                t.ok_ops.load(Ordering::Relaxed),
                t.err_ops.load(Ordering::Relaxed),
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Seed a tenant table with `keys` tuples in chunked transactions.
fn preload(db: &Arc<Database>, table: u32, keys: u64, tuple_size: usize) -> Result<(), TxnError> {
    let payload = encode_value(&[0u8; 0], tuple_size);
    let mut key = 0;
    while key < keys {
        let mut txn = db.begin();
        let end = (key + 256).min(keys);
        while key < end {
            db.insert(&mut txn, table, key, &payload)?;
            key += 1;
        }
        db.commit(&mut txn)?;
    }
    Ok(())
}

/// Encode a value into a fixed-size tuple: `[len u16 LE][payload][pad]`.
/// Length `0xFFFF` marks a tombstone (deleted key).
pub fn encode_value(value: &[u8], tuple_size: usize) -> Vec<u8> {
    debug_assert!(value.len() <= tuple_size - 2 && value.len() < 0xFFFF);
    let mut tuple = vec![0u8; tuple_size];
    tuple[..2].copy_from_slice(&(value.len() as u16).to_le_bytes());
    tuple[2..2 + value.len()].copy_from_slice(value);
    tuple
}

/// Tombstone tuple of the given size.
pub fn tombstone(tuple_size: usize) -> Vec<u8> {
    let mut tuple = vec![0u8; tuple_size];
    tuple[..2].copy_from_slice(&0xFFFFu16.to_le_bytes());
    tuple
}

/// Decode a tuple back into its value; `None` for tombstones.
pub fn decode_value(tuple: &[u8]) -> Option<&[u8]> {
    let len = u16::from_le_bytes([tuple[0], tuple[1]]);
    if len == 0xFFFF {
        return None;
    }
    Some(&tuple[2..2 + len as usize])
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // relaxed: the accept counter is a statistic and the conn id needs only the uniqueness the RMW provides.
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let write = match stream.try_clone() {
                    Ok(w) => w,
                    Err(_) => continue,
                };
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn = Arc::new(Conn {
                    id,
                    stream,
                    write: Mutex::new(write),
                    tenant: AtomicU32::new(TENANT_UNSET),
                    queue: Mutex::new(Vec::new()),
                    scheduled: AtomicBool::new(false),
                    closed: AtomicBool::new(false),
                    session: Mutex::new(Session::new(Arc::clone(&shared.db))),
                });
                shared.conns.lock().insert(id, Arc::clone(&conn));
                let s = Arc::clone(shared);
                // Small stacks: readers only frame/decode, and there may
                // be thousands of them.
                let spawned = std::thread::Builder::new()
                    .name(format!("spitfire-conn-{id}"))
                    .stack_size(128 * 1024)
                    .spawn(move || reader_loop(&s, &conn));
                if spawned.is_err() {
                    shared.conns.lock().remove(&id);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn reader_loop(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    let mut reader = &conn.stream;
    while let Ok(Some(frame)) = read_frame(&mut reader) {
        let req = match crate::protocol::decode_request(&frame) {
            Ok(req) => req,
            Err(_) => {
                // Framing may be lost after a bad frame; reply and close.
                // relaxed: protocol-error statistic.
                shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                conn.send(
                    Opcode::Stats,
                    0,
                    &Reply::Error {
                        code: ErrorCode::Protocol,
                        retryable: false,
                        message: "malformed frame".to_string(),
                    },
                );
                break;
            }
        };
        if !handle_request(shared, conn, req) {
            break;
        }
    }
    disconnect(shared, conn);
}

/// Validate, admit, and queue (or shed) one decoded request. Returns
/// `false` when the connection should close.
fn handle_request(shared: &Arc<Shared>, conn: &Arc<Conn>, req: Request) -> bool {
    let opcode = req.cmd.opcode();
    if req.tenant as usize >= shared.admission.tenant_count() {
        // relaxed: protocol-error statistic.
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        conn.send(
            opcode,
            req.request_id,
            &Reply::Error {
                code: ErrorCode::Protocol,
                retryable: false,
                message: format!("unknown tenant {}", req.tenant),
            },
        );
        return true;
    }
    // Pin the connection's tenant on first use.
    // relaxed: the tenant pin is only written by this connection's handler thread (the atomic serves cross-thread advisory reads); the error counter is a statistic.
    let pinned = conn.tenant.load(Ordering::Relaxed);
    if pinned == TENANT_UNSET {
        conn.tenant.store(req.tenant, Ordering::Relaxed);
    } else if pinned != req.tenant {
        shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
        conn.send(
            opcode,
            req.request_id,
            &Reply::Error {
                code: ErrorCode::Protocol,
                retryable: false,
                message: format!("connection is pinned to tenant {pinned}"),
            },
        );
        return true;
    }
    let depth = conn.queue.lock().len();
    match shared
        .admission
        .admit(req.tenant, req.cmd.is_finishing(), depth)
    {
        Verdict::Shed(code, reason) => {
            conn.send(opcode, req.request_id, &Reply::shed(code, reason));
            true
        }
        Verdict::Admit => {
            conn.queue.lock().push(Queued {
                req,
                enqueued: Instant::now(),
            });
            if !conn.scheduled.swap(true, Ordering::AcqRel) {
                shared.sched.enqueue(Arc::clone(conn));
            }
            true
        }
    }
}

/// Tear down a connection: drop it from the registry, refund queued
/// admissions, and abort any open transaction so its pins release.
fn disconnect(shared: &Arc<Shared>, conn: &Arc<Conn>) {
    conn.closed.store(true, Ordering::Release);
    shared.conns.lock().remove(&conn.id);
    let drained = {
        let mut q = conn.queue.lock();
        let n = q.len();
        q.clear();
        n
    };
    for _ in 0..drained {
        shared.admission.release();
    }
    // Blocks until any worker currently executing on this session is done,
    // then aborts deterministically (rather than waiting for the last Arc).
    let _ = conn.session.lock().abort();
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(conn) = shared.sched.next() {
        // Claim a batch; the queue may already be empty (e.g. drained by a
        // disconnect after we were scheduled).
        let batch: Vec<Queued> = {
            let mut q = conn.queue.lock();
            let n = q.len().min(WORKER_BATCH);
            q.drain(..n).collect()
        };
        let dead = conn.closed.load(Ordering::Acquire);
        for item in batch {
            if dead {
                shared.admission.release();
                continue;
            }
            execute(shared, &conn, item);
        }
        // Re-arm: clear the claim, then re-enqueue if more arrived. The
        // second swap keeps exactly one scheduler entry per connection.
        conn.scheduled.store(false, Ordering::Release);
        if !conn.queue.lock().is_empty()
            && !conn.closed.load(Ordering::Acquire)
            && !conn.scheduled.swap(true, Ordering::AcqRel)
        {
            shared.sched.enqueue(conn);
        }
    }
}

/// Run one admitted request on the connection's session and reply.
fn execute(shared: &Arc<Shared>, conn: &Arc<Conn>, item: Queued) {
    let Queued { req, enqueued } = item;
    let opcode = req.cmd.opcode();
    let table = req.tenant;
    let tuple_size = 2 + shared.config.value_bytes;
    let mut session = conn.session.lock();
    let reply = match req.cmd {
        Command::Get { key } => match session.get(table, key) {
            Ok(tuple) => match decode_value(&tuple) {
                Some(v) => Reply::Value(v.to_vec()),
                None => Reply::from_txn_error(&TxnError::NotFound),
            },
            Err(e) => Reply::from_txn_error(&e),
        },
        Command::Put { key, ref value } => {
            if value.len() > shared.config.value_bytes {
                Reply::Error {
                    code: ErrorCode::Protocol,
                    retryable: false,
                    message: format!(
                        "value of {} bytes exceeds limit {}",
                        value.len(),
                        shared.config.value_bytes
                    ),
                }
            } else {
                match session.put(table, key, &encode_value(value, tuple_size)) {
                    Ok(()) => Reply::Ok,
                    Err(e) => Reply::from_txn_error(&e),
                }
            }
        }
        Command::Delete { key } => match delete_key(&mut session, table, key, tuple_size) {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::from_txn_error(&e),
        },
        Command::Scan { start, limit } => {
            match session.scan(table, start, (limit as usize).min(1024)) {
                Ok(rows) => Reply::Rows(
                    rows.into_iter()
                        .filter_map(|(k, tuple)| decode_value(&tuple).map(|v| (k, v.to_vec())))
                        .collect(),
                ),
                Err(e) => Reply::from_txn_error(&e),
            }
        }
        Command::Begin => match session.begin() {
            Ok(ts) => Reply::TxnId(ts),
            Err(e) => Reply::from_txn_error(&e),
        },
        Command::Commit => match session.commit() {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::from_txn_error(&e),
        },
        Command::Abort => match session.abort() {
            Ok(()) => Reply::Ok,
            Err(e) => Reply::from_txn_error(&e),
        },
        Command::Stats => Reply::Stats(shared.stats_json()),
        Command::Shutdown => {
            if shared.config.allow_remote_shutdown {
                Reply::Ok
            } else {
                Reply::Error {
                    code: ErrorCode::Protocol,
                    retryable: false,
                    message: "remote shutdown disabled".to_string(),
                }
            }
        }
    };
    drop(session);
    let tenant = shared.admission.tenant(req.tenant);
    if matches!(reply, Reply::Error { .. }) {
        // relaxed: per-tenant op statistics.
        tenant.err_ops.fetch_add(1, Ordering::Relaxed);
    } else {
        tenant.ok_ops.fetch_add(1, Ordering::Relaxed);
    }
    shared.tenant_hists[req.tenant as usize].record(enqueued.elapsed().as_nanos() as u64);
    conn.send(opcode, req.request_id, &reply);
    shared.admission.release();
    if opcode == Opcode::Shutdown && shared.config.allow_remote_shutdown {
        shared.begin_stop();
    }
}

/// DELETE = read-check-tombstone, wrapped in a transaction when the
/// session doesn't already have one (a bare autocommit pair would race).
fn delete_key(
    session: &mut Session,
    table: u32,
    key: u64,
    tuple_size: usize,
) -> Result<(), TxnError> {
    let implicit = !session.in_txn();
    if implicit {
        session.begin()?;
    }
    let run = (|| {
        let tuple = session.get(table, key)?;
        if decode_value(&tuple).is_none() {
            return Err(TxnError::NotFound);
        }
        session.put(table, key, &tombstone(tuple_size))
    })();
    if implicit {
        match run {
            Ok(()) => session.commit()?,
            Err(_) => session.abort()?,
        }
    }
    run
}

fn pressure_loop(shared: &Arc<Shared>) {
    let mut last_fallbacks = shared.bm.pressure().backpressure_fallbacks;
    while !shared.stop.load(Ordering::Acquire) {
        std::thread::sleep(shared.config.pressure_poll);
        let p = shared.bm.pressure();
        let fallbacks_climbing = p.backpressure_fallbacks > last_fallbacks;
        last_fallbacks = p.backpressure_fallbacks;
        shared
            .admission
            .set_pressure(p.below_low_watermark() || fallbacks_climbing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_encoding_round_trips() {
        let t = encode_value(b"hello", 16);
        assert_eq!(t.len(), 16);
        assert_eq!(decode_value(&t), Some(&b"hello"[..]));
        assert_eq!(decode_value(&encode_value(b"", 16)), Some(&b""[..]));
        assert_eq!(decode_value(&tombstone(16)), None);
    }
}
