//! Weighted fair dispatch: deficit round-robin over per-tenant rings of
//! ready connections.
//!
//! Workers pull connections (not individual requests) from the scheduler;
//! a connection is *ready* when its queue went empty→non-empty and it is
//! not already claimed by a worker. Tenants take turns in deficit
//! round-robin: each pass a tenant may dispatch up to `deficit` ready
//! connections; deficits refill in proportion to the tenant's weight once
//! every tenant's deficit (or ring) is exhausted. A tenant flooding the
//! server with ready connections therefore cannot starve a light tenant —
//! the light tenant's ring is visited every cycle.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A schedulable item: anything that knows its tenant.
pub trait Schedulable {
    /// Owning tenant id (index into the scheduler's rings).
    fn tenant(&self) -> u32;
}

struct Rings<T> {
    /// One FIFO of ready items per tenant.
    rings: Vec<VecDeque<Arc<T>>>,
    /// Remaining dispatch credit per tenant in the current cycle.
    deficit: Vec<u32>,
    /// Next tenant to inspect (rotates for fairness).
    cursor: usize,
    /// Total ready items across all rings.
    ready: usize,
    shutdown: bool,
}

/// Deficit round-robin scheduler; `next()` blocks until an item or
/// shutdown.
pub struct Scheduler<T> {
    inner: Mutex<Rings<T>>,
    available: Condvar,
    weights: Vec<u32>,
    /// Dispatch credit granted per weight unit per refill.
    quantum: u32,
}

impl<T: Schedulable> Scheduler<T> {
    /// Scheduler for `weights.len()` tenants.
    pub fn new(weights: Vec<u32>) -> Self {
        let n = weights.len();
        let weights: Vec<u32> = weights.into_iter().map(|w| w.max(1)).collect();
        Scheduler {
            inner: Mutex::new(Rings {
                rings: (0..n).map(|_| VecDeque::new()).collect(),
                deficit: weights.clone(),
                cursor: 0,
                ready: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            weights,
            quantum: 1,
        }
    }

    /// Mark `item` ready. The caller must ensure each item is enqueued at
    /// most once at a time (the connection's `scheduled` flag).
    pub fn enqueue(&self, item: Arc<T>) {
        let mut g = self.inner.lock();
        if g.shutdown {
            return;
        }
        let t = item.tenant() as usize;
        g.rings[t].push_back(item);
        g.ready += 1;
        drop(g);
        self.available.notify_one();
    }

    /// Dequeue the next item in weighted-fair order; blocks until one is
    /// ready. Returns `None` after [`Scheduler::stop`].
    pub fn next(&self) -> Option<Arc<T>> {
        let mut g = self.inner.lock();
        loop {
            if g.shutdown {
                return None;
            }
            if g.ready > 0 {
                return Some(self.pick(&mut g));
            }
            self.available.wait(&mut g);
        }
    }

    /// Like [`Scheduler::next`] with a timeout; `None` on timeout or
    /// shutdown (check [`Scheduler::is_stopped`] to distinguish).
    pub fn next_timeout(&self, timeout: Duration) -> Option<Arc<T>> {
        let mut g = self.inner.lock();
        loop {
            if g.shutdown {
                return None;
            }
            if g.ready > 0 {
                return Some(self.pick(&mut g));
            }
            if self.available.wait_for(&mut g, timeout).timed_out() {
                return None;
            }
        }
    }

    /// DRR scan. Invariant: `g.ready > 0`, so some ring is non-empty and
    /// the scan terminates after at most two passes (one to exhaust stale
    /// deficits, one after the refill).
    fn pick(&self, g: &mut Rings<T>) -> Arc<T> {
        let n = g.rings.len();
        loop {
            let mut visited = 0;
            while visited < n {
                let t = g.cursor;
                if !g.rings[t].is_empty() && g.deficit[t] > 0 {
                    g.deficit[t] -= 1;
                    let item = g.rings[t].pop_front().expect("non-empty ring");
                    g.ready -= 1;
                    // Stay on this tenant while it has credit; move on
                    // once its deficit or ring drains.
                    if g.deficit[t] == 0 || g.rings[t].is_empty() {
                        g.cursor = (t + 1) % n;
                    }
                    return item;
                }
                g.cursor = (t + 1) % n;
                visited += 1;
            }
            // Full pass with no spendable deficit: refill by weight.
            for (d, w) in g.deficit.iter_mut().zip(&self.weights) {
                *d = w * self.quantum;
            }
        }
    }

    /// Wake all waiters and make subsequent `next()` calls return `None`.
    pub fn stop(&self) {
        let mut g = self.inner.lock();
        g.shutdown = true;
        for ring in &mut g.rings {
            ring.clear();
        }
        g.ready = 0;
        drop(g);
        self.available.notify_all();
    }

    /// Whether [`Scheduler::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.inner.lock().shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Item(u32);
    impl Schedulable for Item {
        fn tenant(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn drr_respects_weights() {
        // Tenant 0 weight 3, tenant 1 weight 1; both rings saturated.
        let s = Scheduler::new(vec![3, 1]);
        for _ in 0..40 {
            s.enqueue(Arc::new(Item(0)));
        }
        for _ in 0..40 {
            s.enqueue(Arc::new(Item(1)));
        }
        let mut counts = [0u32; 2];
        for _ in 0..40 {
            let item = s.next().expect("ready");
            counts[item.tenant() as usize] += 1;
        }
        // 3:1 split within rounding of one quantum cycle.
        assert!(
            (28..=32).contains(&counts[0]),
            "weighted split off: {counts:?}"
        );
        assert_eq!(counts[0] + counts[1], 40);
    }

    #[test]
    fn light_tenant_not_starved_by_flood() {
        // Equal weights; tenant 0 floods, tenant 1 sends one item.
        let s = Scheduler::new(vec![1, 1]);
        for _ in 0..100 {
            s.enqueue(Arc::new(Item(0)));
        }
        s.enqueue(Arc::new(Item(1)));
        // The lone tenant-1 item must appear within one cycle (2 pulls).
        let mut seen_at = None;
        for i in 0..101 {
            if s.next().expect("ready").tenant() == 1 {
                seen_at = Some(i);
                break;
            }
        }
        assert!(seen_at.expect("tenant 1 dispatched") <= 2);
    }

    #[test]
    fn stop_wakes_blocked_workers() {
        let s = Arc::new(Scheduler::<Item>::new(vec![1]));
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || s2.next());
        std::thread::sleep(Duration::from_millis(20));
        s.stop();
        assert!(h.join().unwrap().is_none());
        assert!(s.is_stopped());
        // Enqueue after stop is a no-op.
        s.enqueue(Arc::new(Item(0)));
        assert!(s.next_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn next_timeout_times_out_when_idle() {
        let s = Scheduler::<Item>::new(vec![1]);
        assert!(s.next_timeout(Duration::from_millis(10)).is_none());
        assert!(!s.is_stopped());
    }
}
