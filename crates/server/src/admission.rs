//! Admission control: bounded queues, memory-pressure shedding, and
//! per-tenant token-bucket quotas.
//!
//! Every request passes [`Admission::admit`] *before* it is queued, on the
//! connection's reader thread. The checks, in order:
//!
//! 1. **Per-connection queue bound** — a slow or flooding connection may
//!    buffer at most `per_conn_queue` requests; beyond that it is shed
//!    with [`ErrorCode::Overload`] instead of growing memory.
//! 2. **Global in-flight bound** — the sum of queued-or-executing
//!    requests across all connections is capped, so total server memory
//!    for request state is bounded no matter how many connections exist.
//! 3. **Memory pressure** — a monitor thread samples
//!    [`BufferManager::pressure`](spitfire_core::BufferManager::pressure)
//!    and raises [`Admission::set_pressure`] while free frames sit below
//!    the maintenance low watermark or `backpressure_fallbacks` is
//!    climbing; while raised, *new* work is shed.
//! 4. **Tenant quota** — a token bucket per tenant caps its admitted
//!    op rate ([`ErrorCode::RateLimited`]); the refill rate is the quota,
//!    the burst is one second's worth.
//!
//! Finishing commands (COMMIT / ABORT / STATS / SHUTDOWN) skip checks 2–4:
//! shedding a commit would strand an open transaction and its pending
//! versions, making overload *worse*. All shed replies are retryable by
//! construction — clients back off and resend, mirroring
//! [`TxnError::is_retryable`](spitfire_txn::TxnError::is_retryable).

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use crate::protocol::ErrorCode;

/// Per-tenant admission configuration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Weight in the fair scheduler's deficit round-robin (≥ 1).
    pub weight: u32,
    /// Admitted-operation quota in ops/s; `None` = unlimited.
    pub quota_ops_per_sec: Option<f64>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            quota_ops_per_sec: None,
        }
    }
}

/// Server-wide admission configuration.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Per-connection request-queue bound.
    pub per_conn_queue: usize,
    /// Global bound on queued-or-executing requests.
    pub global_inflight: usize,
    /// Whether the memory-pressure monitor may shed new work.
    pub pressure_shedding: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            per_conn_queue: 32,
            global_inflight: 4096,
            pressure_shedding: true,
        }
    }
}

/// Classic token bucket; capacity is one second's worth of quota.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    capacity: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64) -> Self {
        let capacity = rate.max(1.0);
        TokenBucket {
            tokens: capacity,
            capacity,
            rate,
            last: Instant::now(),
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Per-tenant admission state and counters.
#[derive(Debug)]
pub struct TenantState {
    /// Scheduler weight.
    pub weight: u32,
    bucket: Option<Mutex<TokenBucket>>,
    /// Requests admitted past all checks.
    pub admitted: AtomicU64,
    /// Requests shed on the per-connection or global queue bounds.
    pub shed_queue: AtomicU64,
    /// Requests shed while the buffer manager reported memory pressure.
    pub shed_pressure: AtomicU64,
    /// Requests shed by the tenant's token bucket.
    pub shed_quota: AtomicU64,
    /// Operations completed successfully.
    pub ok_ops: AtomicU64,
    /// Operations completed with an error reply.
    pub err_ops: AtomicU64,
}

impl TenantState {
    fn new(cfg: &TenantConfig) -> Self {
        TenantState {
            weight: cfg.weight.max(1),
            bucket: cfg
                .quota_ops_per_sec
                .filter(|r| r.is_finite() && *r > 0.0)
                .map(|r| Mutex::new(TokenBucket::new(r))),
            admitted: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            shed_pressure: AtomicU64::new(0),
            shed_quota: AtomicU64::new(0),
            ok_ops: AtomicU64::new(0),
            err_ops: AtomicU64::new(0),
        }
    }

    /// Total sheds across all causes.
    pub fn shed_total(&self) -> u64 {
        // relaxed: advisory statistics; the sum may tear across concurrent sheds, which a monitoring probe tolerates.
        self.shed_queue.load(Ordering::Relaxed)
            + self.shed_pressure.load(Ordering::Relaxed)
            + self.shed_quota.load(Ordering::Relaxed)
    }
}

/// Outcome of an admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Queue it. The global in-flight count has been charged; the caller
    /// must release it via [`Admission::release`] when the request
    /// finishes (or is discarded).
    Admit,
    /// Reject with a retryable typed error; nothing was charged.
    Shed(ErrorCode, &'static str),
}

/// Shared admission state (one per server).
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    tenants: Vec<TenantState>,
    /// Queued-or-executing requests, server-wide.
    inflight: AtomicUsize,
    /// Raised by the pressure monitor (0 = calm, 1 = shed new work).
    pressure: AtomicU8,
}

impl Admission {
    /// Admission state for `tenants.len()` tenants.
    pub fn new(config: AdmissionConfig, tenants: &[TenantConfig]) -> Self {
        Admission {
            config,
            tenants: tenants.iter().map(TenantState::new).collect(),
            inflight: AtomicUsize::new(0),
            pressure: AtomicU8::new(0),
        }
    }

    /// Per-tenant state (panics on unknown tenant — validate at decode).
    pub fn tenant(&self, tenant: u32) -> &TenantState {
        &self.tenants[tenant as usize]
    }

    /// All tenants, indexed by id.
    pub fn tenants(&self) -> &[TenantState] {
        &self.tenants
    }

    /// Number of configured tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Current queued-or-executing request count.
    pub fn inflight(&self) -> usize {
        // relaxed: advisory occupancy gauge; being off by in-flight transitions is fine for monitoring.
        self.inflight.load(Ordering::Relaxed)
    }

    /// Raise or clear the memory-pressure shed signal (monitor thread).
    pub fn set_pressure(&self, shed: bool) {
        // relaxed: the pressure flag is a shed hint; a late observer admits or sheds one extra request, both acceptable.
        self.pressure.store(u8::from(shed), Ordering::Relaxed);
    }

    /// Whether the pressure signal is currently raised.
    pub fn under_pressure(&self) -> bool {
        // relaxed: see `set_pressure`.
        self.pressure.load(Ordering::Relaxed) != 0
    }

    /// Decide whether to queue a request. `conn_depth` is the calling
    /// connection's current queue depth; `finishing` marks commands that
    /// complete existing work and bypass shedding.
    pub fn admit(&self, tenant: u32, finishing: bool, conn_depth: usize) -> Verdict {
        let t = &self.tenants[tenant as usize];
        if !finishing {
            if conn_depth >= self.config.per_conn_queue {
                // relaxed: shed counters are statistics; the inflight reading is an advisory gauge — admission tolerates small overshoot around the limit.
                t.shed_queue.fetch_add(1, Ordering::Relaxed);
                return Verdict::Shed(ErrorCode::Overload, "connection queue full");
            }
            if self.inflight.load(Ordering::Relaxed) >= self.config.global_inflight {
                t.shed_queue.fetch_add(1, Ordering::Relaxed);
                return Verdict::Shed(ErrorCode::Overload, "server at in-flight limit");
            }
            if self.config.pressure_shedding && self.under_pressure() {
                // relaxed: shed statistics; the token bucket itself is mutex-protected.
                t.shed_pressure.fetch_add(1, Ordering::Relaxed);
                return Verdict::Shed(ErrorCode::Overload, "buffer memory pressure");
            }
            if let Some(bucket) = &t.bucket {
                if !bucket.lock().try_take(Instant::now()) {
                    t.shed_quota.fetch_add(1, Ordering::Relaxed);
                    return Verdict::Shed(ErrorCode::RateLimited, "tenant quota exhausted");
                }
            }
        }
        // relaxed: admission statistic plus the advisory inflight gauge (see above).
        t.admitted.fetch_add(1, Ordering::Relaxed);
        self.inflight.fetch_add(1, Ordering::Relaxed);
        Verdict::Admit
    }

    /// Release one admitted request (completed, or discarded on
    /// disconnect).
    pub fn release(&self) {
        // relaxed: advisory gauge decrement; no memory is published through it.
        let prev = self.inflight.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "release without admit");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn two_tenants(quota: Option<f64>) -> Admission {
        Admission::new(
            AdmissionConfig {
                per_conn_queue: 4,
                global_inflight: 8,
                pressure_shedding: true,
            },
            &[
                TenantConfig {
                    weight: 4,
                    quota_ops_per_sec: quota,
                },
                TenantConfig::default(),
            ],
        )
    }

    #[test]
    fn queue_bounds_shed() {
        let a = two_tenants(None);
        assert_eq!(a.admit(0, false, 0), Verdict::Admit);
        assert!(matches!(
            a.admit(0, false, 4),
            Verdict::Shed(ErrorCode::Overload, _)
        ));
        // Global limit: 1 already in flight, admit 7 more, the 9th sheds.
        for _ in 0..7 {
            assert_eq!(a.admit(1, false, 0), Verdict::Admit);
        }
        assert!(matches!(
            a.admit(1, false, 0),
            Verdict::Shed(ErrorCode::Overload, _)
        ));
        // Finishing commands bypass the global bound.
        assert_eq!(a.admit(1, true, 0), Verdict::Admit);
        for _ in 0..9 {
            a.release();
        }
        assert_eq!(a.inflight(), 0);
        assert_eq!(a.tenant(1).shed_queue.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pressure_sheds_new_work_only() {
        let a = two_tenants(None);
        a.set_pressure(true);
        assert!(matches!(
            a.admit(0, false, 0),
            Verdict::Shed(ErrorCode::Overload, "buffer memory pressure")
        ));
        assert_eq!(a.admit(0, true, 0), Verdict::Admit);
        a.release();
        a.set_pressure(false);
        assert_eq!(a.admit(0, false, 0), Verdict::Admit);
        a.release();
        assert_eq!(a.tenant(0).shed_pressure.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn token_bucket_caps_rate_and_refills() {
        let a = two_tenants(Some(50.0));
        // Burst capacity = one second's quota.
        let mut admitted = 0;
        for _ in 0..200 {
            if a.admit(0, false, 0) == Verdict::Admit {
                admitted += 1;
                a.release();
            }
        }
        assert!(admitted <= 51, "burst {admitted} exceeds bucket");
        assert!(a.tenant(0).shed_quota.load(Ordering::Relaxed) > 0);
        // Refill: after 100ms, ~5 more tokens.
        std::thread::sleep(Duration::from_millis(100));
        let mut refilled = 0;
        for _ in 0..50 {
            if a.admit(0, false, 0) == Verdict::Admit {
                refilled += 1;
                a.release();
            }
        }
        assert!(refilled >= 1, "bucket never refilled");
        assert!(refilled <= 20, "refill {refilled} too generous");
        // The unlimited tenant is untouched by tenant 0's bucket.
        assert_eq!(a.admit(1, false, 0), Verdict::Admit);
        a.release();
    }
}
