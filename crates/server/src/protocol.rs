//! The Spitfire wire protocol: length-prefixed binary frames with a
//! versioned header and a per-frame CRC-32.
//!
//! Every frame — request or reply — starts with the same 24-byte header
//! (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  len         total frame length, header included
//!      4     4  crc         CRC-32 (IEEE) over bytes [8, len)
//!      8     1  version     protocol version (PROTOCOL_VERSION)
//!      9     1  opcode      command (request) / echoed command (reply)
//!     10     2  flags       reply: bit 0 = error, bit 1 = retryable
//!     12     4  tenant      tenant id (reply: echoed)
//!     16     8  request_id  client-chosen correlation id (reply: echoed)
//!     24     …  body        opcode-specific payload
//! ```
//!
//! The CRC is the canonical [`spitfire_sync::crc32`] — the same checksum
//! the WAL framing and the snapshot block headers use — so the wire
//! format and the log format corrupt-detect identically. A
//! receiver rejects frames that are truncated, oversized, version-skewed,
//! or checksum-mismatched *before* interpreting the body.
//!
//! Request bodies:
//!
//! | opcode | body |
//! |---|---|
//! | `GET` | `key u64` |
//! | `PUT` | `key u64, vlen u32, value` |
//! | `DELETE` | `key u64` |
//! | `SCAN` | `start u64, limit u32` |
//! | `BEGIN` / `COMMIT` / `ABORT` / `STATS` / `SHUTDOWN` | empty |
//!
//! Reply bodies (error flag clear): `GET` returns `vlen u32, value`;
//! `SCAN` returns `count u32` then `key u64, vlen u32, value` per row;
//! `BEGIN` returns `txn_id u64`; `STATS` returns `len u32, json`; the
//! rest are empty. With the error flag set the body is
//! `code u8, mlen u16, message` and bit 1 of `flags` mirrors
//! [`TxnError::is_retryable`](spitfire_txn::TxnError::is_retryable) so a
//! client can retry without parsing server error strings.

use spitfire_sync::crc32;
use spitfire_txn::TxnError;

/// Protocol version carried in every frame header.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER: usize = 24;

/// Upper bound on one frame (header + body). Chosen to fit any sane SCAN
/// reply while keeping a malicious `len` from allocating gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Reply flag bit 0: the body is an error (`code, mlen, message`).
pub const FLAG_ERROR: u16 = 1 << 0;
/// Reply flag bit 1: the error is retryable (backoff and resend).
pub const FLAG_RETRYABLE: u16 = 1 << 1;

/// Command opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Point read.
    Get = 1,
    /// Upsert.
    Put = 2,
    /// Tombstone the key.
    Delete = 3,
    /// Range scan from a start key.
    Scan = 4,
    /// Open an explicit transaction on this connection.
    Begin = 5,
    /// Commit the open transaction.
    Commit = 6,
    /// Abort the open transaction.
    Abort = 7,
    /// Server statistics (JSON).
    Stats = 8,
    /// Ask the server to shut down (must be enabled server-side).
    Shutdown = 9,
}

impl Opcode {
    /// Parse a wire opcode.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            1 => Opcode::Get,
            2 => Opcode::Put,
            3 => Opcode::Delete,
            4 => Opcode::Scan,
            5 => Opcode::Begin,
            6 => Opcode::Commit,
            7 => Opcode::Abort,
            8 => Opcode::Stats,
            9 => Opcode::Shutdown,
            _ => return None,
        })
    }
}

/// A decoded request command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Point read of `key`.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Upsert `key` to `value`.
    Put {
        /// Key to write.
        key: u64,
        /// New value bytes.
        value: Vec<u8>,
    },
    /// Delete `key` (tombstone).
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// Scan up to `limit` live rows with keys ≥ `start`.
    Scan {
        /// First key of the range.
        start: u64,
        /// Maximum rows returned.
        limit: u32,
    },
    /// Open an explicit transaction.
    Begin,
    /// Commit the open transaction.
    Commit,
    /// Abort the open transaction.
    Abort,
    /// Server statistics.
    Stats,
    /// Request server shutdown.
    Shutdown,
}

impl Command {
    /// The wire opcode of this command.
    pub fn opcode(&self) -> Opcode {
        match self {
            Command::Get { .. } => Opcode::Get,
            Command::Put { .. } => Opcode::Put,
            Command::Delete { .. } => Opcode::Delete,
            Command::Scan { .. } => Opcode::Scan,
            Command::Begin => Opcode::Begin,
            Command::Commit => Opcode::Commit,
            Command::Abort => Opcode::Abort,
            Command::Stats => Opcode::Stats,
            Command::Shutdown => Opcode::Shutdown,
        }
    }

    /// Whether this command *finishes* work rather than creating it.
    /// Admission control always lets these through: shedding a COMMIT or
    /// ABORT would strand an open transaction holding versions and locks.
    pub fn is_finishing(&self) -> bool {
        matches!(
            self,
            Command::Commit | Command::Abort | Command::Stats | Command::Shutdown
        )
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Tenant the connection acts for.
    pub tenant: u32,
    /// Client correlation id, echoed in the reply.
    pub request_id: u64,
    /// The command.
    pub cmd: Command,
}

/// Typed error codes carried in error replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// MVTO conflict; abort and retry the transaction.
    Conflict = 1,
    /// Key not visible / does not exist.
    NotFound = 2,
    /// Insert of an existing key.
    Duplicate = 3,
    /// Transaction state misuse (commit without begin, nested begin, …).
    TxnState = 4,
    /// Admission control shed the request (queues or memory pressure).
    Overload = 5,
    /// The tenant's token-bucket quota is exhausted.
    RateLimited = 6,
    /// Malformed frame or illegal field.
    Protocol = 7,
    /// Anything else (I/O faults, internal errors).
    Internal = 8,
}

impl ErrorCode {
    /// Parse a wire error code.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Conflict,
            2 => ErrorCode::NotFound,
            3 => ErrorCode::Duplicate,
            4 => ErrorCode::TxnState,
            5 => ErrorCode::Overload,
            6 => ErrorCode::RateLimited,
            7 => ErrorCode::Protocol,
            8 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A decoded reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success with no payload.
    Ok,
    /// GET result.
    Value(Vec<u8>),
    /// SCAN result rows.
    Rows(Vec<(u64, Vec<u8>)>),
    /// BEGIN result.
    TxnId(u64),
    /// STATS result (JSON text).
    Stats(String),
    /// Typed error.
    Error {
        /// What failed.
        code: ErrorCode,
        /// Whether a backoff-and-resend can plausibly succeed.
        retryable: bool,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Error reply mapping a [`TxnError`] onto the wire, preserving its
    /// retryability.
    pub fn from_txn_error(e: &TxnError) -> Reply {
        let code = match e {
            TxnError::Conflict => ErrorCode::Conflict,
            TxnError::NotFound => ErrorCode::NotFound,
            TxnError::Duplicate => ErrorCode::Duplicate,
            TxnError::InactiveTransaction | TxnError::TransactionOpen => ErrorCode::TxnState,
            _ => ErrorCode::Internal,
        };
        Reply::Error {
            code,
            retryable: e.is_retryable(),
            message: e.to_string(),
        }
    }

    /// Shed reply used by admission control (always retryable).
    pub fn shed(code: ErrorCode, message: impl Into<String>) -> Reply {
        Reply::Error {
            code,
            retryable: true,
            message: message.into(),
        }
    }
}

/// A decoded reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyFrame {
    /// Echoed tenant.
    pub tenant: u32,
    /// Echoed correlation id.
    pub request_id: u64,
    /// Echoed opcode.
    pub opcode: Opcode,
    /// The body.
    pub reply: Reply,
}

/// Frame decoding errors. I/O errors are surfaced separately by the
/// transport helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length smaller than the header or larger than
    /// [`MAX_FRAME`].
    BadLength(u32),
    /// Checksum mismatch.
    BadCrc {
        /// CRC carried in the header.
        want: u32,
        /// CRC computed over the received bytes.
        got: u32,
    },
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Body shorter than its opcode requires, or with inconsistent
    /// internal lengths.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "bad frame length {n}"),
            FrameError::BadCrc { want, got } => {
                write!(
                    f,
                    "frame crc mismatch: header {want:#010x}, body {got:#010x}"
                )
            }
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadOpcode(o) => write!(f, "unknown opcode {o}"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Little-endian cursor over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self.at.checked_add(n).ok_or(FrameError::Malformed(what))?;
        if end > self.buf.len() {
            return Err(FrameError::Malformed(what));
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn done(&self, what: &'static str) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed(what))
        }
    }
}

/// Build a frame around `body`, filling in length and CRC.
fn seal(opcode: Opcode, flags: u16, tenant: u32, request_id: u64, body: &[u8]) -> Vec<u8> {
    let len = HEADER + body.len();
    debug_assert!(len <= MAX_FRAME, "oversized frame");
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.push(PROTOCOL_VERSION);
    out.push(opcode as u8);
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(body);
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Encode a request into a ready-to-send frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    match &req.cmd {
        Command::Get { key } | Command::Delete { key } => {
            body.extend_from_slice(&key.to_le_bytes());
        }
        Command::Put { key, value } => {
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&(value.len() as u32).to_le_bytes());
            body.extend_from_slice(value);
        }
        Command::Scan { start, limit } => {
            body.extend_from_slice(&start.to_le_bytes());
            body.extend_from_slice(&limit.to_le_bytes());
        }
        Command::Begin | Command::Commit | Command::Abort | Command::Stats | Command::Shutdown => {}
    }
    seal(req.cmd.opcode(), 0, req.tenant, req.request_id, &body)
}

/// Encode a reply into a ready-to-send frame. `opcode` echoes the request.
pub fn encode_reply(opcode: Opcode, tenant: u32, request_id: u64, reply: &Reply) -> Vec<u8> {
    let mut body = Vec::new();
    let mut flags = 0u16;
    match reply {
        Reply::Ok => {}
        Reply::Value(v) => {
            body.extend_from_slice(&(v.len() as u32).to_le_bytes());
            body.extend_from_slice(v);
        }
        Reply::Rows(rows) => {
            body.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for (key, v) in rows {
                body.extend_from_slice(&key.to_le_bytes());
                body.extend_from_slice(&(v.len() as u32).to_le_bytes());
                body.extend_from_slice(v);
            }
        }
        Reply::TxnId(id) => body.extend_from_slice(&id.to_le_bytes()),
        Reply::Stats(json) => {
            body.extend_from_slice(&(json.len() as u32).to_le_bytes());
            body.extend_from_slice(json.as_bytes());
        }
        Reply::Error {
            code,
            retryable,
            message,
        } => {
            flags |= FLAG_ERROR;
            if *retryable {
                flags |= FLAG_RETRYABLE;
            }
            body.push(*code as u8);
            let msg = message.as_bytes();
            let mlen = msg.len().min(u16::MAX as usize);
            body.extend_from_slice(&(mlen as u16).to_le_bytes());
            body.extend_from_slice(&msg[..mlen]);
        }
    }
    seal(opcode, flags, tenant, request_id, &body)
}

/// Validate a whole frame (header + CRC + version) and return
/// `(opcode, flags, tenant, request_id, body)`.
fn open_frame(frame: &[u8]) -> Result<(Opcode, u16, u32, u64, &[u8]), FrameError> {
    if frame.len() < HEADER || frame.len() > MAX_FRAME {
        return Err(FrameError::BadLength(frame.len() as u32));
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
    if len != frame.len() {
        return Err(FrameError::BadLength(len as u32));
    }
    let want = u32::from_le_bytes(frame[4..8].try_into().unwrap());
    let got = crc32(&frame[8..]);
    if want != got {
        return Err(FrameError::BadCrc { want, got });
    }
    if frame[8] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(frame[8]));
    }
    let opcode = Opcode::from_u8(frame[9]).ok_or(FrameError::BadOpcode(frame[9]))?;
    let flags = u16::from_le_bytes(frame[10..12].try_into().unwrap());
    let tenant = u32::from_le_bytes(frame[12..16].try_into().unwrap());
    let request_id = u64::from_le_bytes(frame[16..24].try_into().unwrap());
    Ok((opcode, flags, tenant, request_id, &frame[HEADER..]))
}

/// Decode a complete request frame.
pub fn decode_request(frame: &[u8]) -> Result<Request, FrameError> {
    let (opcode, _flags, tenant, request_id, body) = open_frame(frame)?;
    let mut c = Cursor::new(body);
    let cmd = match opcode {
        Opcode::Get => Command::Get {
            key: c.u64("get key")?,
        },
        Opcode::Put => {
            let key = c.u64("put key")?;
            let vlen = c.u32("put vlen")? as usize;
            let value = c.take(vlen, "put value")?.to_vec();
            Command::Put { key, value }
        }
        Opcode::Delete => Command::Delete {
            key: c.u64("delete key")?,
        },
        Opcode::Scan => Command::Scan {
            start: c.u64("scan start")?,
            limit: c.u32("scan limit")?,
        },
        Opcode::Begin => Command::Begin,
        Opcode::Commit => Command::Commit,
        Opcode::Abort => Command::Abort,
        Opcode::Stats => Command::Stats,
        Opcode::Shutdown => Command::Shutdown,
    };
    c.done("trailing request bytes")?;
    Ok(Request {
        tenant,
        request_id,
        cmd,
    })
}

/// Decode a complete reply frame.
pub fn decode_reply(frame: &[u8]) -> Result<ReplyFrame, FrameError> {
    let (opcode, flags, tenant, request_id, body) = open_frame(frame)?;
    let mut c = Cursor::new(body);
    let reply = if flags & FLAG_ERROR != 0 {
        let code_raw = c.u8("error code")?;
        let code = ErrorCode::from_u8(code_raw).ok_or(FrameError::Malformed("error code"))?;
        let mlen = c.u16("error mlen")? as usize;
        let message = String::from_utf8_lossy(c.take(mlen, "error message")?).into_owned();
        Reply::Error {
            code,
            retryable: flags & FLAG_RETRYABLE != 0,
            message,
        }
    } else {
        match opcode {
            Opcode::Get => {
                let vlen = c.u32("value len")? as usize;
                Reply::Value(c.take(vlen, "value")?.to_vec())
            }
            Opcode::Scan => {
                let count = c.u32("row count")? as usize;
                if count > MAX_FRAME {
                    return Err(FrameError::Malformed("row count"));
                }
                let mut rows = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let key = c.u64("row key")?;
                    let vlen = c.u32("row vlen")? as usize;
                    rows.push((key, c.take(vlen, "row value")?.to_vec()));
                }
                Reply::Rows(rows)
            }
            Opcode::Begin => Reply::TxnId(c.u64("txn id")?),
            Opcode::Stats => {
                let jlen = c.u32("stats len")? as usize;
                Reply::Stats(String::from_utf8_lossy(c.take(jlen, "stats json")?).into_owned())
            }
            Opcode::Put | Opcode::Delete | Opcode::Commit | Opcode::Abort | Opcode::Shutdown => {
                Reply::Ok
            }
        }
    };
    c.done("trailing reply bytes")?;
    Ok(ReplyFrame {
        tenant,
        request_id,
        opcode,
        reply,
    })
}

/// Read one whole frame from `r` (blocking). Returns `Ok(None)` on a
/// clean EOF at a frame boundary; a mid-frame EOF is an
/// `UnexpectedEof` I/O error. Length sanity is checked *before* the body
/// is allocated.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => {
            if n < 4 {
                r.read_exact(&mut len_buf[n..])?;
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(HEADER..=MAX_FRAME).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            FrameError::BadLength(len as u32).to_string(),
        ));
    }
    let mut frame = vec![0u8; len];
    frame[0..4].copy_from_slice(&len_buf);
    r.read_exact(&mut frame[4..])?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(cmd: Command) -> Request {
        let req = Request {
            tenant: 3,
            request_id: 77,
            cmd,
        };
        let frame = encode_request(&req);
        assert_eq!(decode_request(&frame).unwrap(), req);
        req
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Command::Get { key: 42 });
        round_trip_request(Command::Put {
            key: 1,
            value: vec![9u8; 100],
        });
        round_trip_request(Command::Delete { key: u64::MAX });
        round_trip_request(Command::Scan {
            start: 10,
            limit: 64,
        });
        round_trip_request(Command::Begin);
        round_trip_request(Command::Commit);
        round_trip_request(Command::Abort);
        round_trip_request(Command::Stats);
        round_trip_request(Command::Shutdown);
    }

    #[test]
    fn replies_round_trip() {
        for (op, reply) in [
            (Opcode::Get, Reply::Value(vec![1, 2, 3])),
            (
                Opcode::Scan,
                Reply::Rows(vec![(1, vec![4u8; 8]), (2, vec![5u8; 8])]),
            ),
            (Opcode::Begin, Reply::TxnId(99)),
            (Opcode::Put, Reply::Ok),
            (Opcode::Stats, Reply::Stats("{\"x\":1}".into())),
            (
                Opcode::Get,
                Reply::Error {
                    code: ErrorCode::Overload,
                    retryable: true,
                    message: "shed".into(),
                },
            ),
            (
                Opcode::Commit,
                Reply::Error {
                    code: ErrorCode::Conflict,
                    retryable: true,
                    message: "conflict".into(),
                },
            ),
        ] {
            let frame = encode_reply(op, 7, 123, &reply);
            let decoded = decode_reply(&frame).unwrap();
            assert_eq!(decoded.opcode, op);
            assert_eq!(decoded.tenant, 7);
            assert_eq!(decoded.request_id, 123);
            assert_eq!(decoded.reply, reply);
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let req = Request {
            tenant: 0,
            request_id: 1,
            cmd: Command::Put {
                key: 5,
                value: vec![7u8; 32],
            },
        };
        let good = encode_request(&req);
        assert!(decode_request(&good).is_ok());

        // Flip one body byte: CRC must catch it.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x01;
        assert!(matches!(
            decode_request(&bad),
            Err(FrameError::BadCrc { .. })
        ));

        // Flip a header byte after the CRC region start (version).
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            decode_request(&bad),
            Err(FrameError::BadCrc { .. }) | Err(FrameError::BadVersion(99))
        ));

        // Version skew with a recomputed CRC is still rejected.
        let mut bad = good.clone();
        bad[8] = 2;
        let crc = crc32(&bad[8..]);
        bad[4..8].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_request(&bad), Err(FrameError::BadVersion(2)));

        // Unknown opcode with a recomputed CRC.
        let mut bad = good.clone();
        bad[9] = 0xEE;
        let crc = crc32(&bad[8..]);
        bad[4..8].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_request(&bad), Err(FrameError::BadOpcode(0xEE)));

        // Truncated frame: declared length disagrees with the slice.
        let bad = &good[..good.len() - 3];
        assert!(matches!(decode_request(bad), Err(FrameError::BadLength(_))));

        // Body shorter than the opcode needs (recomputed length + CRC).
        let mut bad = good.clone();
        bad.truncate(HEADER + 8); // key only, vlen missing
        let len = bad.len() as u32;
        bad[0..4].copy_from_slice(&len.to_le_bytes());
        let crc = crc32(&bad[8..]);
        bad[4..8].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode_request(&bad),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn read_frame_handles_eof_and_oversize() {
        use std::io::Cursor as IoCursor;
        // Clean EOF.
        let mut empty = IoCursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
        // Mid-frame EOF.
        let frame = encode_request(&Request {
            tenant: 0,
            request_id: 0,
            cmd: Command::Begin,
        });
        let mut truncated = IoCursor::new(frame[..frame.len() - 1].to_vec());
        assert!(read_frame(&mut truncated).is_err());
        // Whole frame round-trips through the transport reader.
        let mut whole = IoCursor::new(frame.clone());
        assert_eq!(read_frame(&mut whole).unwrap().unwrap(), frame);
        // Oversized declared length is rejected before allocation.
        let mut huge = IoCursor::new(((MAX_FRAME + 1) as u32).to_le_bytes().to_vec());
        assert!(read_frame(&mut huge).is_err());
    }

    #[test]
    fn txn_errors_map_to_codes_and_retryability() {
        let conflict = Reply::from_txn_error(&TxnError::Conflict);
        assert!(matches!(
            conflict,
            Reply::Error {
                code: ErrorCode::Conflict,
                retryable: true,
                ..
            }
        ));
        let nf = Reply::from_txn_error(&TxnError::NotFound);
        assert!(matches!(
            nf,
            Reply::Error {
                code: ErrorCode::NotFound,
                retryable: false,
                ..
            }
        ));
        let open = Reply::from_txn_error(&TxnError::TransactionOpen);
        assert!(matches!(
            open,
            Reply::Error {
                code: ErrorCode::TxnState,
                retryable: false,
                ..
            }
        ));
    }
}
