//! Figure 9 — Impact of the storage hierarchy on the optimal D policy.
//!
//! Fix a 10 (scaled) NVM buffer and vary the DRAM buffer so DRAM:NVM is
//! 1:2, 1:4, and 1:8; sweep D on YCSB-RO.
//!
//! Paper expectation: at 1:8 the best policy is D = 0 (tiny DRAM is not
//! worth the migration traffic); as DRAM grows, D = 0.01 wins.

use spitfire_bench::{point, quick, three_tier, worker_threads, ycsb_config, Reporter, MB};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_workload, RawYcsb, YcsbMix};

fn main() {
    let nvm = if quick() { 8 * MB } else { 10 * MB };
    let db = if quick() { 16 * MB } else { 40 * MB };
    let ratios: [(usize, &str); 3] = [(nvm / 2, "1:2"), (nvm / 4, "1:4"), (nvm / 8, "1:8")];
    let d_values = [0.0, 0.01, 0.1, 1.0];
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig9_hierarchy",
        "Figure 9 (§6.3)",
        "optimal D depends on the DRAM:NVM ratio — D=0 wins at 1:8, lazier \
         D=0.01 wins as DRAM grows",
    );
    r.headers(&["DRAM:NVM", "D=0", "D=0.01", "D=0.1", "D=1"]);

    for (dram, label) in ratios {
        let bm = three_tier(dram, nvm, MigrationPolicy::lazy());
        let w = spitfire_bench::with_fast_setup(&bm, || {
            RawYcsb::setup(&bm, ycsb_config(db, 0.3, YcsbMix::ReadOnly))
        })
        .expect("setup");
        let mut cells = vec![label.to_string()];
        for d in d_values {
            bm.admin().set_policy(MigrationPolicy::new(d, d, 1.0, 1.0));
            let report = run_workload(&spitfire_bench::runner(threads), |_, rng| {
                w.execute(&bm, rng).expect("op")
            });
            cells.push(point(&report));
        }
        r.row(&cells);
    }
    r.done();
}
