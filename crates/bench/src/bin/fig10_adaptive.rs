//! Figure 10 — Adaptive data migration.
//!
//! Starts from the eager policy ⟨1, 1, 1, 1⟩ and lets the simulated-
//! annealing tuner (§4) adapt per epoch using observed throughput as the
//! cost signal, on YCSB-RO and YCSB-BA.
//!
//! Paper expectation: throughput climbs and converges (≈ +52 % on
//! YCSB-RO) as the tuner settles on a lazy policy for both buffers.

use std::time::Duration;

use spitfire_bench::{kops, quick, three_tier, worker_threads, ycsb_config, Reporter, MB};
use spitfire_core::adaptive::{AnnealingParams, AnnealingTuner};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_epochs, RawYcsb, YcsbMix};

fn main() {
    let (dram, nvm, db) = if quick() {
        (MB, 4 * MB, 8 * MB)
    } else {
        (2 * MB + MB / 2, 10 * MB, 20 * MB)
    };
    let epochs = if quick() { 20 } else { 80 };
    let epoch_len = Duration::from_millis(if quick() { 250 } else { 500 });
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig10_adaptive",
        "Figure 10 (§6.4)",
        "starting eager, SA converges to a lazy policy; throughput rises \
         ~52% on YCSB-RO and stabilizes as the temperature cools",
    );
    r.headers(&["workload", "epoch", "policy", "throughput", "temperature"]);

    for mix in [YcsbMix::ReadOnly, YcsbMix::Balanced] {
        let bm = three_tier(dram, nvm, MigrationPolicy::eager());
        let w =
            spitfire_bench::with_fast_setup(&bm, || RawYcsb::setup(&bm, ycsb_config(db, 0.3, mix)))
                .expect("setup");
        let mut tuner =
            AnnealingTuner::new(MigrationPolicy::eager(), AnnealingParams::default(), 42);
        bm.admin().set_policy(tuner.candidate());

        let bm_ref = &bm;
        let w_ref = &w;
        let mut rows: Vec<Vec<String>> = Vec::new();
        run_epochs(
            threads,
            7,
            epoch_len,
            epochs,
            |_, rng| w_ref.execute(bm_ref, rng).expect("op"),
            |sample| {
                let policy = tuner.candidate();
                rows.push(vec![
                    mix.label().to_string(),
                    sample.epoch.to_string(),
                    policy.to_string(),
                    format!("{} ops/s", kops(sample.throughput)),
                    format!("{:.4}", tuner.temperature()),
                ]);
                let next = tuner.observe(sample.throughput);
                bm_ref.admin().set_policy(next);
            },
        );
        for row in rows {
            r.row(&row);
        }
        // Convergence summary: average of first vs last quarter.
        let hist = tuner.history();
        let quarter = hist.len() / 4;
        let early: f64 = hist[..quarter].iter().map(|e| e.throughput).sum::<f64>() / quarter as f64;
        let late: f64 = hist[hist.len() - quarter..]
            .iter()
            .map(|e| e.throughput)
            .sum::<f64>()
            / quarter as f64;
        println!(
            "   {} summary: first-quarter avg {} -> last-quarter avg {} ({:+.0}%), final policy {}",
            mix.label(),
            kops(early),
            kops(late),
            (late / early - 1.0) * 100.0,
            tuner.current()
        );
    }
    r.done();
}
