//! Migration-stall benchmark: hit-path readers racing a forced migration
//! storm.
//!
//! The shadow-copy protocol's whole point is that DRAM↔NVM moves and
//! checkpoint write-backs never close a page's pin word across device
//! I/O, so optimistic readers keep hitting lock-free while the copy is in
//! flight. This benchmark measures exactly that: reader fetch latency on
//! a hot DRAM-resident page set while a storm thread continuously
//! (a) re-dirties and checkpoint-flushes the hot pages and (b) churns a
//! colder page set through DRAM to force eviction write-backs and
//! re-promotions of the hot pages themselves.
//!
//! Three scenarios, same workload:
//!
//! * `quiescent`  — readers only, no storm (the floor);
//! * `shadow-storm`   — storm with `shadow_migrations` on (this PR);
//! * `blocking-storm` — storm with `shadow_migrations` off: the
//!   pre-change protocol that closes the pin word (flush) or marks the
//!   copy `Busy` (migration) for the full device write, stalling every
//!   reader that lands on the page meanwhile.
//!
//! Emits `BENCH_migration.json` (override with `--json <path>` via
//! `SPITFIRE_OBS_JSON`): per scenario, reader p50/p99/max fetch latency,
//! migration counts, and the shadow abort rate. The embedded baseline is
//! the `blocking-storm` scenario measured at the same commit — CI asserts
//! `shadow-storm` p99 stays within 1.5× of `quiescent` p99.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spitfire_bench::{fmt_us, obs_json_path, quick, Reporter};
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPath, MigrationPolicy, PageId};
use spitfire_device::{PersistenceTracking, TimeScale};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PAGE: usize = 4096;
/// Hot set readers hammer; comfortably DRAM-resident on its own.
const HOT_PAGES: usize = 16;
/// Churn set the storm drags through DRAM to force evictions; hot + churn
/// overflow DRAM so the CLOCK regularly evicts (and the readers re-promote)
/// hot pages too.
const CHURN_PAGES: usize = 64;
const DRAM_FRAMES: usize = 32;
const NVM_FRAMES: usize = 96;
/// Emulated-device time scale during measurement: device writes take real
/// microseconds, so a reader stalled behind one pays a visible price.
const SCALE: TimeScale = TimeScale(0.5);
const READERS: usize = 4;

/// `blocking-storm` reader latencies measured at this commit with
/// `shadow_migrations(false)` — the pre-change protocol that holds the pin
/// word closed (or the copy `Busy`) across migration/flush device writes.
/// (p50_ns, p99_ns, max_ns).
const PRE_PR_BLOCKING: (u64, u64, u64) = (87, 297, 27_963_381);

struct Outcome {
    scenario: &'static str,
    ops: usize,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    promotions: u64,
    demotions: u64,
    flushes: u64,
    aborted: u64,
    abort_rate: f64,
}

fn manager(shadow: bool) -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(DRAM_FRAMES * PAGE)
        .nvm_capacity(NVM_FRAMES * (PAGE + 64))
        // Eager promotions: every NVM hit migrates back up, maximising
        // DRAM↔NVM traffic on the hot set.
        .policy(MigrationPolicy::eager())
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::ZERO) // load phase: no emulated delays
        .ssd_backend(spitfire_bench::ssd_backend_from_env())
        .shadow_migrations(shadow)
        .build()
        .expect("valid config");
    Arc::new(BufferManager::new(config).expect("buffer manager"))
}

fn run_scenario(name: &'static str, shadow: bool, storm: bool, ops_per_reader: usize) -> Outcome {
    let bm = manager(shadow);
    let hot: Vec<PageId> = (0..HOT_PAGES)
        .map(|_| bm.allocate_page().unwrap())
        .collect();
    let churn: Vec<PageId> = (0..CHURN_PAGES)
        .map(|_| bm.allocate_page().unwrap())
        .collect();
    let payload = vec![0xC3u8; 256];
    for pid in hot.iter().chain(churn.iter()) {
        let g = bm.fetch_write(*pid).unwrap();
        g.write(0, &payload).unwrap();
    }
    // Re-touch the hot set so it is DRAM-resident (and dirty) at the start.
    for pid in &hot {
        let g = bm.fetch_write(*pid).unwrap();
        g.write(0, &payload).unwrap();
    }
    bm.admin().set_time_scale(SCALE);
    bm.reset_metrics();

    let stop = Arc::new(AtomicBool::new(false));
    let flushes = Arc::new(AtomicU64::new(0));
    let mut storm_handles = Vec::new();
    if storm {
        // Flusher: checkpoint-style write-backs of the hot pages, each one
        // racing the readers on that page.
        let (bm_f, hot_f, stop_f) = (Arc::clone(&bm), hot.clone(), Arc::clone(&stop));
        let (payload_f, flushes_f) = (payload.clone(), Arc::clone(&flushes));
        storm_handles.push(std::thread::spawn(move || {
            let mut i = 0usize;
            // relaxed: bench shutdown flag; staleness only delays exit.
            while !stop_f.load(Ordering::Relaxed) {
                let pid = hot_f[i % hot_f.len()];
                if let Ok(g) = bm_f.fetch_write(pid) {
                    let _ = g.write(0, &payload_f);
                }
                if matches!(bm_f.flush_page(pid), Ok(true)) {
                    // relaxed: bench-local statistic, read after join.
                    flushes_f.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        }));
        // Churner: drags the cold set through DRAM so the CLOCK must evict
        // dirty pages (DRAM→NVM write-backs) — including, regularly, hot
        // pages, which the readers then re-promote (NVM→DRAM).
        let (bm_c, churn_c, stop_c) = (Arc::clone(&bm), churn.clone(), Arc::clone(&stop));
        let payload_c = payload;
        storm_handles.push(std::thread::spawn(move || {
            let mut i = 0usize;
            // relaxed: bench shutdown flag; staleness only delays exit.
            while !stop_c.load(Ordering::Relaxed) {
                let pid = churn_c[i % churn_c.len()];
                if let Ok(g) = bm_c.fetch_write(pid) {
                    let _ = g.write(0, &payload_c);
                }
                i += 1;
            }
        }));
    }

    // Readers: uniform over the hot set, measuring each fetch.
    let mut reader_handles = Vec::new();
    for r in 0..READERS {
        let (bm_r, hot_r) = (Arc::clone(&bm), hot.clone());
        reader_handles.push(std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(0xF1E1D + r as u64);
            let mut lat = Vec::with_capacity(ops_per_reader);
            let mut buf = [0u8; 256];
            for _ in 0..ops_per_reader {
                let pid = hot_r[rng.gen::<u64>() as usize % hot_r.len()];
                let t0 = Instant::now();
                let g = bm_r.fetch_read(pid).expect("fetch_read");
                let dt = t0.elapsed();
                g.read(0, &mut buf).unwrap();
                drop(g);
                lat.push(dt.as_nanos() as u64);
            }
            lat
        }));
    }

    let mut lat_ns: Vec<u64> = Vec::with_capacity(READERS * ops_per_reader);
    for h in reader_handles {
        lat_ns.extend(h.join().expect("reader thread"));
    }
    // relaxed: bench shutdown flag; staleness only delays exit.
    stop.store(true, Ordering::Relaxed);
    for h in storm_handles {
        h.join().expect("storm thread");
    }
    let m = bm.metrics();
    bm.assert_quiescent();

    lat_ns.sort_unstable();
    let q = |f: f64| lat_ns[((lat_ns.len() - 1) as f64 * f) as usize];
    let promotions = m.path(MigrationPath::NvmToDram);
    let demotions = m.path(MigrationPath::DramToNvm) + m.path(MigrationPath::DramToSsd);
    // Every shadow attempt either lands as a migration/flush or is
    // recorded aborted; the rate is aborts over attempts.
    let attempts = promotions + demotions + m.migrations_aborted;
    Outcome {
        scenario: name,
        ops: lat_ns.len(),
        p50_ns: q(0.5),
        p99_ns: q(0.99),
        max_ns: *lat_ns.last().unwrap(),
        promotions,
        demotions,
        // relaxed: bench-local statistic, read after the threads joined.
        flushes: flushes.load(Ordering::Relaxed),
        aborted: m.migrations_aborted,
        abort_rate: if attempts == 0 {
            0.0
        } else {
            m.migrations_aborted as f64 / attempts as f64
        },
    }
}

fn main() {
    let ops = if quick() { 20_000 } else { 100_000 };

    let mut r = Reporter::new(
        "migration",
        "§5.2 latching vs Nomad-style transactional page migration",
        "shadow-copy migrations keep hit-path readers lock-free while \
         pages move between tiers: reader p99 under a migration storm \
         stays within 1.5x of the quiescent baseline, where the blocking \
         protocol stalls readers for the full page copy",
    );
    r.headers(&[
        "scenario",
        "p50 read",
        "p99 read",
        "max read",
        "promotions",
        "demotions",
        "aborted (rate)",
    ]);

    let results = [
        run_scenario("quiescent", true, false, ops),
        run_scenario("shadow-storm", true, true, ops),
        run_scenario("blocking-storm", false, true, ops),
    ];
    for o in &results {
        r.row(&[
            o.scenario.to_string(),
            fmt_us(Duration::from_nanos(o.p50_ns)),
            fmt_us(Duration::from_nanos(o.p99_ns)),
            fmt_us(Duration::from_nanos(o.max_ns)),
            o.promotions.to_string(),
            o.demotions.to_string(),
            format!("{} ({:.1}%)", o.aborted, o.abort_rate * 100.0),
        ]);
    }
    r.done();

    let path = obs_json_path().unwrap_or_else(|| "BENCH_migration.json".into());
    let (b50, b99, bmax) = PRE_PR_BLOCKING;
    let mut json = format!(
        "{{\n  \"pre_pr_baseline\": {{\"scenario\": \"blocking-migration\", \
         \"p50_ns\": {b50}, \"p99_ns\": {b99}, \"max_ns\": {bmax}}},\n  \"results\": [\n"
    );
    for (i, o) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"ops\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}, \"promotions\": {}, \"demotions\": {}, \"flushes\": {}, \
             \"migrations_aborted\": {}, \"abort_rate\": {:.4}}}",
            o.scenario,
            o.ops,
            o.p50_ns,
            o.p99_ns,
            o.max_ns,
            o.promotions,
            o.demotions,
            o.flushes,
            o.aborted,
            o.abort_rate
        ));
    }
    json.push_str("\n  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   migration -> {}", path.display()),
        Err(e) => eprintln!("   migration: failed to write {}: {e}", path.display()),
    }
}
