//! Extension ablation — endurance-aware adaptive tuning.
//!
//! §6.3 concludes that "the optimal policy must be chosen depending on the
//! performance requirements and write endurance characteristics of NVM".
//! This experiment makes that trade-off mechanical: the simulated-annealing
//! tuner runs with cost `(1 + λ·w)/T` where `w` is NVM MB written per
//! operation, for λ ∈ {0, 5, 50}, on YCSB-BA.
//!
//! Expectation: larger λ converges to policies with visibly lower NVM
//! write volume (lazier `N`), trading away some throughput.

use std::time::Duration;

use spitfire_bench::{
    kops, nvm_bytes_written, quick, three_tier, worker_threads, ycsb_config, Reporter, MB,
};
use spitfire_core::adaptive::{AnnealingParams, AnnealingTuner, CostObjective};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_epochs, RawYcsb, YcsbMix};

fn main() {
    let (dram, nvm, db) = if quick() {
        (MB, 4 * MB, 8 * MB)
    } else {
        (2 * MB + MB / 2, 10 * MB, 20 * MB)
    };
    let epochs = if quick() { 16 } else { 60 };
    let epoch_len = Duration::from_millis(if quick() { 250 } else { 500 });
    let threads = worker_threads();

    let mut r = Reporter::new(
        "ablation_endurance",
        "extension of §4 / §6.3 (write-endurance-aware tuning)",
        "larger lambda converges to lower NVM write volume at some \
         throughput cost",
    );
    r.headers(&[
        "lambda",
        "final policy",
        "last-quarter throughput",
        "last-quarter NVM MB/op",
    ]);

    for lambda in [0.0, 5.0, 50.0] {
        let params = AnnealingParams {
            objective: if lambda == 0.0 {
                CostObjective::Throughput
            } else {
                CostObjective::ThroughputWithEndurance { lambda }
            },
            ..AnnealingParams::default()
        };
        let bm = three_tier(dram, nvm, MigrationPolicy::eager());
        let w = spitfire_bench::with_fast_setup(&bm, || {
            RawYcsb::setup(&bm, ycsb_config(db, 0.3, YcsbMix::Balanced))
        })
        .expect("setup");
        let mut tuner = AnnealingTuner::new(MigrationPolicy::eager(), params, 42);
        bm.admin().set_policy(tuner.candidate());

        let bm_ref = &bm;
        let w_ref = &w;
        let mut written_before = nvm_bytes_written(&bm);
        let mut tail: Vec<(f64, f64)> = Vec::new();
        run_epochs(
            threads,
            7,
            epoch_len,
            epochs,
            |_, rng| w_ref.execute(bm_ref, rng).expect("op"),
            |sample| {
                let written_now = nvm_bytes_written(bm_ref);
                let mb_per_op = (written_now - written_before) as f64
                    / MB as f64
                    / (sample.committed.max(1)) as f64;
                written_before = written_now;
                let next = tuner.observe_with(sample.throughput, mb_per_op);
                bm_ref.admin().set_policy(next);
                tail.push((sample.throughput, mb_per_op));
            },
        );
        let q = (tail.len() / 4).max(1);
        let late = &tail[tail.len() - q..];
        let avg_tput = late.iter().map(|(t, _)| t).sum::<f64>() / q as f64;
        let avg_mb = late.iter().map(|(_, m)| m).sum::<f64>() / q as f64;
        r.row(&[
            format!("{lambda}"),
            tuner.current().to_string(),
            format!("{} ops/s", kops(avg_tput)),
            format!("{avg_mb:.4}"),
        ]);
    }
    r.done();
}
