//! Figure 6 — Performance impact of bypassing DRAM.
//!
//! Sweep the DRAM migration probabilities (`D_r`, `D_w`) in lockstep over
//! {0, 0.01, 0.1, 1} with NVM kept eager (`N_r = N_w = 1`), under single-
//! and multi-threaded configurations across YCSB-RO/BA/WH and TPC-C.
//!
//! Paper expectation: lazy D (0.01) peaks (≈ +58 % over eager on YCSB-RO);
//! D = 0 drops ~20 % below the peak because the DRAM buffer is disabled.

use spitfire_bench::{build_policy_workloads, point, quick, worker_threads, Reporter, MB};
use spitfire_core::MigrationPolicy;

fn main() {
    let (dram, nvm, db) = if quick() {
        (4 * MB, 16 * MB, 32 * MB)
    } else {
        // 12.5 GB DRAM / 50 GB NVM / 100 GB DB in the paper, scaled 1000x.
        (12 * MB + MB / 2, 50 * MB, 100 * MB)
    };
    let d_values = [0.0, 0.01, 0.1, 1.0];

    let mut r = Reporter::new(
        "fig6_bypass_dram",
        "Figure 6 (§6.3)",
        "lazy D=0.01 peaks; eager D=1 lower (−58% on YCSB-RO single-thread); \
         D=0 ~20% below peak",
    );
    r.headers(&["workload", "threads", "D=0", "D=0.01", "D=0.1", "D=1"]);

    let workloads = build_policy_workloads(dram, nvm, db);
    for threads in [1, worker_threads()] {
        for (label, w) in &workloads {
            let mut cells = vec![label.to_string(), threads.to_string()];
            for d in d_values {
                let policy = MigrationPolicy::new(d, d, 1.0, 1.0);
                let report = w.run_point(policy, threads);
                cells.push(point(&report));
            }
            r.row(&cells);
        }
    }
    r.done();
}
