//! Figure 7 — Performance impact of bypassing NVM.
//!
//! Sweep the NVM migration probabilities (`N_r`, `N_w`) in lockstep over
//! {0, 0.01, 0.1, 1} with DRAM kept eager (`D_r = D_w = 1`).
//!
//! Paper expectation: lazy N (0.01) peaks (+25 % over eager on YCSB-RO
//! single-threaded); N = 0 effectively removes the NVM buffer and loses
//! 25–103 % depending on thread count.

use spitfire_bench::{build_policy_workloads, point, quick, worker_threads, Reporter, MB};
use spitfire_core::MigrationPolicy;

fn main() {
    let (dram, nvm, db) = if quick() {
        (4 * MB, 16 * MB, 32 * MB)
    } else {
        (12 * MB + MB / 2, 50 * MB, 100 * MB)
    };
    let n_values = [0.0, 0.01, 0.1, 1.0];

    let mut r = Reporter::new(
        "fig7_bypass_nvm",
        "Figure 7 (§6.3)",
        "lazy N=0.01 peaks (+25% on YCSB-RO); N=0 loses the NVM buffer \
         (−25% single-thread, −103% at 16 workers)",
    );
    r.headers(&["workload", "threads", "N=0", "N=0.01", "N=0.1", "N=1"]);

    let workloads = build_policy_workloads(dram, nvm, db);
    for threads in [1, worker_threads()] {
        for (label, w) in &workloads {
            let mut cells = vec![label.to_string(), threads.to_string()];
            for n in n_values {
                let policy = MigrationPolicy::new(1.0, 1.0, n, n);
                let report = w.run_point(policy, threads);
                cells.push(point(&report));
            }
            r.row(&cells);
        }
    }
    r.done();
}
