//! Figure 8 — Impact of bypassing NVM on writes to NVM.
//!
//! Measures the NVM write volume under the N sweep (D eager), normalized
//! per million buffer-manager operations so points are comparable.
//!
//! Paper expectation: eager N = 1 writes dramatically more than lazy
//! (91.8× more on YCSB-RO); on write-heavy mixes the ratio shrinks to
//! ≈ 1.3–1.6× because dirty evictions dominate.

use spitfire_bench::{
    build_one_workload, nvm_bytes_written, policy_workload_labels, quick, worker_threads, Reporter,
    MB,
};
use spitfire_core::MigrationPolicy;

fn main() {
    let (dram, nvm, db) = if quick() {
        (4 * MB, 16 * MB, 32 * MB)
    } else {
        (12 * MB + MB / 2, 50 * MB, 100 * MB)
    };
    let n_values = [0.0, 0.01, 0.1, 1.0];
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig8_nvm_writes",
        "Figure 8 (§6.3)",
        "NVM write volume grows steeply with N; N=1 ~92x the lazy volume on \
         YCSB-RO, ~1.3-1.6x on write-heavy mixes",
    );
    r.headers(&[
        "workload",
        "N=0 MB/Mop",
        "N=0.01 MB/Mop",
        "N=0.1 MB/Mop",
        "N=1 MB/Mop",
    ]);

    for label in policy_workload_labels() {
        let mut cells = vec![label.to_string()];
        for n in n_values {
            // Fresh instance per point: write-volume accounting must not
            // inherit NVM placement from a previous policy's run.
            let policy = MigrationPolicy::new(1.0, 1.0, n, n);
            let w = build_one_workload(label, dram, nvm, db, policy);
            let before = nvm_bytes_written(w.bm());
            let report = w.run_point(policy, threads);
            let written = nvm_bytes_written(w.bm()) - before;
            let per_mop = written as f64 / MB as f64 / (report.committed as f64 / 1e6).max(1e-9);
            cells.push(format!("{per_mop:.1}"));
        }
        r.row(&cells);
    }
    r.done();
}
