//! Figure 15 — Impact of database size.
//!
//! Compares five configurations while the database grows from 5 to 140
//! (scaled): three-tier (20 DRAM + 60 NVM) under Spitfire-Eager,
//! Spitfire-Lazy, and HyMem (fine-grained + mini pages enabled for all
//! three, as the paper does), plus equi-cost two-tier DRAM-SSD (46) and
//! NVM-SSD (104), on YCSB-RO/BA/WH and TPC-C with a background flusher.
//!
//! Paper expectation: DRAM-SSD wins while cacheable then collapses;
//! NVM-SSD overtakes everything at large sizes (up to 2.5×);
//! Spitfire-Lazy is the best three-tier policy nearly everywhere.

use std::sync::Arc;
use std::time::Duration;

use spitfire_bench::{
    database, manager_with, point, quick, runner, tpcc_config, with_fast_db_setup, worker_threads,
    ycsb_config, Flusher, Reporter, MB,
};
use spitfire_core::{BufferManager, MigrationPolicy};
use spitfire_wkld::{run_workload, Tpcc, YcsbMix, YcsbTxn};

const CONFIGS: [&str; 5] = ["Spf-Eager", "Spf-Lazy", "Hymem", "DRAM-SSD", "NVM-SSD"];

fn build(config: &str) -> Arc<BufferManager> {
    match config {
        "Spf-Eager" | "Spf-Lazy" | "Hymem" => {
            let policy = match config {
                "Spf-Eager" => MigrationPolicy::eager(),
                "Spf-Lazy" => MigrationPolicy::lazy(),
                _ => MigrationPolicy::hymem(),
            };
            // Fine-grained/mini-page layouts are exercised by Figures 11
            // and 12; the transactional sweep runs whole-page frames (see
            // EXPERIMENTS.md, "Known issues", for the open interaction).
            manager_with(|b| {
                b.dram_capacity(20 * MB)
                    .nvm_capacity(60 * MB)
                    .policy(policy)
            })
        }
        "DRAM-SSD" => manager_with(|b| {
            b.dram_capacity(46 * MB)
                .nvm_capacity(0)
                .policy(MigrationPolicy::eager())
        }),
        _ => manager_with(|b| {
            b.dram_capacity(0)
                .nvm_capacity(104 * MB)
                .policy(MigrationPolicy::lazy())
        }),
    }
}

fn main() {
    let sizes: Vec<usize> = if quick() {
        vec![5 * MB, 40 * MB, 100 * MB]
    } else {
        vec![
            5 * MB,
            20 * MB,
            40 * MB,
            65 * MB,
            80 * MB,
            110 * MB,
            140 * MB,
        ]
    };
    let workloads: Vec<&str> = if quick() {
        vec!["YCSB-RO", "YCSB-WH"]
    } else {
        vec!["YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C"]
    };
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig15_dbsize",
        "Figure 15 (§6.7)",
        "DRAM-SSD best while cacheable then collapses; NVM-SSD best at \
         large sizes (<=2.5x); Spf-Lazy the best three-tier policy",
    );
    let mut headers = vec!["workload".to_string(), "db size".to_string()];
    headers.extend(CONFIGS.iter().map(|s| s.to_string()));
    r.headers(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    for wl in &workloads {
        for &db_bytes in &sizes {
            let mut cells = vec![wl.to_string(), format!("{} MB", db_bytes / MB)];
            for config in CONFIGS {
                let bm = build(config);
                let db = Arc::new(database(Arc::clone(&bm)));
                let _flusher = Flusher::start(Arc::clone(&bm), Duration::from_millis(500));
                let report = match *wl {
                    "TPC-C" => {
                        let t = with_fast_db_setup(&db, || Tpcc::setup(&db, tpcc_config(db_bytes)))
                            .expect("tpcc setup");
                        run_workload(&runner(threads), |_, rng| {
                            t.execute(&db, rng).unwrap_or(false)
                        })
                    }
                    _ => {
                        let mix = match *wl {
                            "YCSB-RO" => YcsbMix::ReadOnly,
                            "YCSB-BA" => YcsbMix::Balanced,
                            _ => YcsbMix::WriteHeavy,
                        };
                        let w = with_fast_db_setup(&db, || {
                            YcsbTxn::setup(&db, ycsb_config(db_bytes, 0.3, mix))
                        })
                        .expect("ycsb setup");
                        run_workload(&runner(threads), |_, rng| {
                            w.execute(&db, rng).unwrap_or(false)
                        })
                    }
                };
                cells.push(point(&report));
            }
            r.row(&cells);
        }
    }
    r.done();
}
