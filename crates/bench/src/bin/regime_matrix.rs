//! Replacement-policy regime matrix: every shipped [`PolicyConfig`] crossed
//! with a set of access *regimes* (tier ratio × Zipf skew × read/write mix
//! × scan phases).
//!
//! CLOCK, SIEVE, and 2Q differ only under pressure: when the DRAM tier is
//! smaller than the touched set and the access pattern gives a policy
//! something to exploit (skew to protect, scans to resist). Each regime
//! pins one such pressure pattern; the matrix runs all policies through
//! all regimes on identical hierarchies and workloads, so a cell is a
//! direct like-for-like comparison. The `scan` regime is the scan-
//! resistance acceptance test: a hot Zipfian set that fits DRAM plus
//! periodic sequential sweeps of a cold region under eager promotion —
//! 2Q's probationary FIFO should absorb the sweep and keep a higher DRAM
//! hit rate than CLOCK, whose referenced-bit sweep lets the scan flush
//! the hot set.
//!
//! Emits `BENCH_regime.json` (override with `--json <path>`): one entry
//! per (regime, policy) with throughput, sampled p50/p99, and per-tier hit
//! rates. `scripts/compare_regime.py` diffs two such files and fails on
//! regression; CI runs the quick matrix against the committed baseline.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use spitfire_bench::{
    kops, manager_with, obs_json_path, quick, runner, worker_threads, Reporter, PAGE,
};
use spitfire_core::{BufferManager, MigrationPolicy, PageId, PolicyConfig};
use spitfire_wkld::{run_workload, ScrambledZipf};

/// One pressure pattern: who fits where, how skewed, how write-heavy, and
/// whether sequential sweeps punctuate the point operations.
struct Regime {
    name: &'static str,
    /// DRAM frames as a fraction of the database page count (denominator).
    dram_divisor: usize,
    /// Zipfian theta over the hot page range.
    theta: f64,
    /// Fraction of point operations that are writes.
    update_fraction: f64,
    /// Point operations hit only the first `1/hot_divisor` of the pages.
    hot_divisor: usize,
    /// Probability per op of a full sequential sweep of the cold region.
    scan_probability: f64,
}

/// The matrix rows. Axes covered: tier ratio {1/2, 1/4, 1/8}, theta
/// {0.0, 0.2, 0.7, 0.9}, mix {read-only, balanced, write-heavy}, scans
/// {off, on}.
const REGIMES: [Regime; 5] = [
    // Hot half of the database fits a generous DRAM tier: the baseline
    // cache-friendly regime every policy should handle.
    Regime {
        name: "hit-heavy",
        dram_divisor: 2,
        theta: 0.9,
        update_fraction: 0.5,
        hot_divisor: 1,
        scan_probability: 0.0,
    },
    // Near-uniform access over 8x the DRAM tier: miss-dominated, little
    // for any policy to exploit — guards against a policy that wins skewed
    // regimes by burning the unskewed ones.
    Regime {
        name: "miss-heavy",
        dram_divisor: 8,
        theta: 0.2,
        update_fraction: 0.5,
        hot_divisor: 1,
        scan_probability: 0.0,
    },
    // Scan resistance: a hot set that fits DRAM plus periodic sequential
    // sweeps of a 5x-larger cold region, under eager promotion. The sweep
    // offers each cold page exactly once; a scan-resistant policy must not
    // let it evict the hot set.
    Regime {
        name: "scan",
        dram_divisor: 5,
        theta: 0.9,
        update_fraction: 0.0,
        hot_divisor: 6,
        scan_probability: 1.0 / 100.0,
    },
    // Skewed write-heavy traffic at a mid ratio: eviction victims are
    // usually dirty, so victim choice decides write-back volume too.
    Regime {
        name: "write-skew",
        dram_divisor: 4,
        theta: 0.7,
        update_fraction: 0.9,
        hot_divisor: 1,
        scan_probability: 0.0,
    },
    // Uniform read-only: zero exploitable structure; all policies should
    // converge, so this cell detects raw bookkeeping overhead.
    Regime {
        name: "uniform-read",
        dram_divisor: 4,
        theta: 0.0,
        update_fraction: 0.0,
        hot_divisor: 1,
        scan_probability: 0.0,
    },
];

struct Cell {
    regime: &'static str,
    policy: PolicyConfig,
    scan: bool,
    ops_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    dram_hit_rate: f64,
    nvm_hit_rate: f64,
}

/// Point-op + periodic-scan driver over raw pages. Every worker draws
/// Zipfian point reads/writes on the hot range; with `scan_probability`
/// an op is instead one full sequential read pass over the cold region.
struct RegimeDriver {
    bm: Arc<BufferManager>,
    pages: Vec<PageId>,
    hot_pages: usize,
    zipf: ScrambledZipf,
    regime: &'static Regime,
}

impl RegimeDriver {
    fn build(regime: &'static Regime, policy: PolicyConfig, db_pages: usize) -> Self {
        let dram_frames = (db_pages / regime.dram_divisor).max(2);
        let bm = manager_with(|b| {
            b.dram_capacity(dram_frames * PAGE)
                // The whole database stays NVM-resident: misses cost NVM
                // (not SSD) latency, so cells measure replacement quality,
                // not SSD traffic.
                .nvm_capacity(2 * db_pages * (PAGE + 64))
                .dram_policy(policy)
                .nvm_policy(policy)
                .policy(MigrationPolicy::eager())
        });
        let pages: Vec<PageId> = spitfire_bench::with_fast_setup(&bm, || {
            (0..db_pages)
                .map(|i| {
                    let pid = bm.allocate_page().expect("allocate");
                    let g = bm.fetch_write(pid).expect("load");
                    g.write(0, &(i as u64).to_le_bytes()).expect("fill");
                    pid
                })
                .collect()
        });
        let hot_pages = (db_pages / regime.hot_divisor).max(1);
        RegimeDriver {
            bm,
            pages,
            hot_pages,
            zipf: ScrambledZipf::new(hot_pages as u64, regime.theta),
            regime,
        }
    }

    fn execute(&self, rng: &mut SmallRng) -> bool {
        if self.regime.scan_probability > 0.0 && rng.gen::<f64>() < self.regime.scan_probability {
            // Sequential sweep of the cold region: each page touched once.
            let mut buf = [0u8; 64];
            for pid in &self.pages[self.hot_pages..] {
                let g = self.bm.fetch_read(*pid).expect("scan read");
                g.read(0, &mut buf).expect("scan bytes");
            }
            return true;
        }
        let page = self.zipf.sample(rng) as usize;
        let pid = self.pages[page];
        if rng.gen::<f64>() < self.regime.update_fraction {
            let g = self.bm.fetch_write(pid).expect("point write");
            g.write(64, &rng.gen::<u64>().to_le_bytes())
                .expect("write bytes");
        } else {
            let mut buf = [0u8; 64];
            let g = self.bm.fetch_read(pid).expect("point read");
            g.read(0, &mut buf).expect("read bytes");
            std::hint::black_box(&buf);
        }
        true
    }
}

fn run_cell(
    regime: &'static Regime,
    policy: PolicyConfig,
    db_pages: usize,
    threads: usize,
) -> Cell {
    let d = RegimeDriver::build(regime, policy, db_pages);
    let before = d.bm.metrics();
    let report = run_workload(&runner(threads), |_, rng| d.execute(rng));
    let after = d.bm.metrics().delta(&before);
    let total = after.total_requests().max(1) as f64;
    let us = |q: f64| {
        report
            .latency_quantile(q)
            .map(|l| l.as_secs_f64() * 1e6)
            .unwrap_or(0.0)
    };
    Cell {
        regime: regime.name,
        policy,
        scan: regime.scan_probability > 0.0,
        ops_per_sec: report.throughput(),
        p50_us: us(0.5),
        p99_us: us(0.99),
        dram_hit_rate: after.dram_hits as f64 / total,
        nvm_hit_rate: after.nvm_hits as f64 / total,
    }
}

fn main() {
    let db_pages = if quick() { 96 } else { 192 };
    let threads = worker_threads().min(8);

    let mut r = Reporter::new(
        "regime_matrix",
        "replacement-policy regimes (tier ratio x skew x mix x scans)",
        "policies tie on structureless regimes; 2Q resists scans that flush \
         CLOCK's hot set; no policy pays a regression on its off-regimes",
    );
    r.headers(&[
        "regime",
        "policy",
        "ops/s",
        "p99",
        "dram hit %",
        "nvm hit %",
    ]);

    let mut cells: Vec<Cell> = Vec::new();
    for regime in &REGIMES {
        for policy in PolicyConfig::ALL {
            let c = run_cell(regime, policy, db_pages, threads);
            r.row(&[
                c.regime.to_string(),
                c.policy.name().to_string(),
                kops(c.ops_per_sec),
                format!("{:.0}µs", c.p99_us),
                format!("{:.1}", c.dram_hit_rate * 100.0),
                format!("{:.1}", c.nvm_hit_rate * 100.0),
            ]);
            cells.push(c);
        }
    }
    r.done();

    // The scan-resistance headline: 2Q's DRAM hit rate vs CLOCK's in the
    // scan regime (> 1.0 means the probationary FIFO is doing its job).
    let hit = |regime: &str, policy: PolicyConfig| {
        cells
            .iter()
            .find(|c| c.regime == regime && c.policy == policy)
            .map(|c| c.dram_hit_rate)
            .unwrap_or(0.0)
    };
    let scan_2q = hit("scan", PolicyConfig::TwoQ);
    let scan_clock = hit("scan", PolicyConfig::Clock);
    println!(
        "   scan regime DRAM hit rate: 2q {:.1}% vs clock {:.1}%{}",
        scan_2q * 100.0,
        scan_clock * 100.0,
        if scan_2q > scan_clock {
            " (scan-resistant)"
        } else {
            " (NOT resistant — investigate)"
        }
    );

    let path = obs_json_path().unwrap_or_else(|| "BENCH_regime.json".into());
    let mut json = format!(
        "{{\n  \"bench\": \"regime_matrix\",\n  \"quick\": {},\n  \"db_pages\": {db_pages},\n  \"threads\": {threads},\n  \"cells\": [\n",
        quick()
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        // `scan: true` marks cells whose latency distribution is bimodal
        // (point ops vs whole-region sweeps): the diff script skips their
        // p99, since which mode the sampled quantile lands in is noise.
        json.push_str(&format!(
            "    {{\"regime\": \"{}\", \"policy\": \"{}\", \"scan\": {}, \
             \"ops_per_sec\": {:.0}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"dram_hit_rate\": {:.4}, \
             \"nvm_hit_rate\": {:.4}}}",
            c.regime,
            c.policy.name(),
            c.scan,
            c.ops_per_sec,
            c.p50_us,
            c.p99_us,
            c.dram_hit_rate,
            c.nvm_hit_rate
        ));
    }
    json.push_str("\n  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   regime_matrix -> {}", path.display()),
        Err(e) => eprintln!("   regime_matrix: failed to write {}: {e}", path.display()),
    }
}
