//! Figure 13 — Impact of data migration policies on NVM device lifetime.
//!
//! Measures NVM write volume under HyMem's policy versus Spitfire-Lazy
//! (fine-grained loading enabled for both, as in the paper's comparison)
//! across the three YCSB mixes.
//!
//! Paper expectation: Spitfire-Lazy writes 1.05–1.4× more to NVM than
//! HyMem — it trades NVM endurance for throughput by writing NVM eagerly
//! and bypassing DRAM.

use spitfire_bench::{
    manager_with, nvm_bytes_written, point, quick, runner, worker_threads, ycsb_config, Reporter,
    MB,
};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_workload, RawYcsb, YcsbMix};

fn main() {
    let (dram, nvm, db_bytes) = if quick() {
        (2 * MB, 8 * MB, 6 * MB)
    } else {
        (8 * MB, 32 * MB, 20 * MB)
    };
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig13_lifetime",
        "Figure 13 (§6.5)",
        "Spitfire-Lazy performs 1.05-1.4x more NVM writes than HyMem \
         (it trades endurance for throughput)",
    );
    r.headers(&[
        "workload",
        "Hymem MB/Mop",
        "Spf-Lazy MB/Mop",
        "ratio",
        "Hymem tput",
        "Lazy tput",
    ]);

    for mix in [YcsbMix::ReadOnly, YcsbMix::Balanced, YcsbMix::WriteHeavy] {
        let mut volumes = Vec::new();
        let mut reports = Vec::new();
        for policy in [MigrationPolicy::hymem(), MigrationPolicy::lazy()] {
            let bm = manager_with(|b| {
                b.dram_capacity(dram)
                    .nvm_capacity(nvm)
                    .policy(policy)
                    .fine_grained(256)
            });
            let w = spitfire_bench::with_fast_setup(&bm, || {
                RawYcsb::setup(&bm, ycsb_config(db_bytes, 0.3, mix))
            })
            .expect("setup");
            let before = nvm_bytes_written(&bm);
            let report = run_workload(&runner(threads), |_, rng| w.execute(&bm, rng).expect("op"));
            let written = nvm_bytes_written(&bm) - before;
            volumes.push(written as f64 / MB as f64 / (report.committed as f64 / 1e6).max(1e-9));
            reports.push(report);
        }
        r.row(&[
            mix.label().to_string(),
            format!("{:.1}", volumes[0]),
            format!("{:.1}", volumes[1]),
            format!("{:.2}x", volumes[1] / volumes[0].max(1e-9)),
            point(&reports[0]),
            point(&reports[1]),
        ]);
    }
    r.done();
}
