//! Table 2 — Inclusivity ratio of the DRAM and NVM buffers.
//!
//! Measures `|DRAM ∩ NVM| / |DRAM ∪ NVM|` after running each workload
//! under the D sweep (N eager) and the N sweep (D eager).
//!
//! Paper expectation: ratio grows with the migration probability; lazy
//! policies (0.01) keep duplication low (≈ 0.06–0.19) while eager reaches
//! ≈ 0.17–0.25; probability 0 gives ratio 0.

use spitfire_bench::{quick, worker_threads, Reporter, MB};
use spitfire_core::MigrationPolicy;

fn main() {
    let (dram, nvm, db) = if quick() {
        (4 * MB, 16 * MB, 32 * MB)
    } else {
        (12 * MB + MB / 2, 50 * MB, 100 * MB)
    };
    let probs = [0.0, 0.01, 0.1, 1.0];
    let threads = worker_threads();

    let mut r = Reporter::new(
        "table2_inclusivity",
        "Table 2 (§6.3)",
        "inclusivity rises with migration probability; 0 -> 0.0, lazy 0.01 \
         stays low, eager 1.0 highest (0.17-0.25)",
    );
    r.headers(&["sweep", "workload", "p=0", "p=0.01", "p=0.1", "p=1"]);

    for (sweep, make_policy) in [
        (
            "bypass-DRAM (D)",
            (|p: f64| MigrationPolicy::new(p, p, 1.0, 1.0)) as fn(f64) -> _,
        ),
        (
            "bypass-NVM (N)",
            (|p: f64| MigrationPolicy::new(1.0, 1.0, p, p)) as fn(f64) -> _,
        ),
    ] {
        for label in spitfire_bench::policy_workload_labels() {
            let mut cells = vec![sweep.to_string(), label.to_string()];
            for p in probs {
                // Fresh instance per point: residency (and therefore the
                // inclusivity ratio) must reflect this policy alone.
                let policy = make_policy(p);
                let w = spitfire_bench::build_one_workload(label, dram, nvm, db, policy);
                let _ = w.run_point(policy, threads);
                cells.push(format!("{:.3}", w.bm().inclusivity()));
            }
            r.row(&cells);
        }
    }
    r.done();
}
