//! Hit-path microbenchmark: multi-threaded fetch/unpin loops on resident
//! pages.
//!
//! Once NVM removes the I/O bottleneck, the buffer manager's own hit path
//! is the scalability limiter (paper §6.6). This benchmark isolates that
//! path: every fetch is a buffer hit (DRAM-resident in the `dram-hit`
//! scenario, NVM-resident with promotion probability 0 in `nvm-hit`), all
//! emulated device delays are off, and the measured loop is nothing but
//! `fetch` + guard drop. Throughput at rising thread counts tracks the
//! hit path's synchronization cost; the paper's fix for this regime is
//! optimistic (latch-free) pinning, and this benchmark is the regression
//! gate for ours.
//!
//! Emits `BENCH_hitpath.json` (override with `--json <path>`): one entry
//! per (scenario, threads) with ops/s and sampled p50/p99 latency from the
//! observability histograms, so the perf trajectory is tracked from the
//! first optimistic-pinning PR onward.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use spitfire_bench::{fmt_us, kops, obs_json_path, quick, Reporter};
use spitfire_core::{AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, PageId};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_obs::Op;

const PAGE: usize = 4096;
/// Hot working set: small enough to stay resident, large enough to spread
/// CLOCK/descriptor traffic over many pages.
const PAGES: usize = 128;

/// Pre-optimistic-pinning baseline (descriptor mutex on every fetch),
/// measured on the reference box right before the lock-free hit path
/// landed: dram-hit ops/s at 1/2/4/8 threads. Kept in the JSON output so
/// every later run shows the trajectory against the same starting point.
const PRE_PR_DRAM_HIT_OPS: [(u32, u64); 4] = [
    (1, 2_932_286),
    (2, 3_268_241),
    (4, 3_194_859),
    (8, 2_850_143),
];

struct Scenario {
    name: &'static str,
    op: Op,
    bm: Arc<BufferManager>,
    pids: Arc<Vec<PageId>>,
}

/// DRAM-over-SSD manager with every page prefaulted into DRAM.
fn dram_hit() -> Scenario {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(4 * PAGES * PAGE)
        .nvm_capacity(0)
        .policy(MigrationPolicy::new(0.0, 0.0, 0.0, 0.0))
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::ZERO)
        .build()
        .expect("valid config");
    let bm = Arc::new(BufferManager::new(config).expect("buffer manager"));
    let pids: Vec<PageId> = (0..PAGES).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &pids {
        drop(bm.fetch(*pid, AccessIntent::Read).unwrap());
    }
    Scenario {
        name: "dram-hit",
        op: Op::FetchDramHit,
        bm,
        pids: Arc::new(pids),
    }
}

/// Three-tier manager with every page resident in NVM and a ⟨0,0,·,·⟩
/// policy, so reads are served from NVM in place and never promoted.
fn nvm_hit() -> Scenario {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(PAGES * PAGE)
        .nvm_capacity(4 * PAGES * (PAGE + 64))
        // N_r = 1 during load: read misses are admitted straight to NVM.
        .policy(MigrationPolicy::new(0.0, 0.0, 1.0, 0.0))
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::ZERO)
        .build()
        .expect("valid config");
    let bm = Arc::new(BufferManager::new(config).expect("buffer manager"));
    let pids: Vec<PageId> = (0..PAGES).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &pids {
        let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), spitfire_core::Tier::Nvm, "page loaded into NVM");
    }
    // Measurement policy: promotion probability 0 on reads and writes, so
    // every fetch is an in-place NVM hit (and the D_r coin is degenerate —
    // the draw-elision fast path).
    bm.admin()
        .set_policy(MigrationPolicy::new(0.0, 0.0, 0.0, 0.0));
    Scenario {
        name: "nvm-hit",
        op: Op::FetchNvmHit,
        bm,
        pids: Arc::new(pids),
    }
}

struct Point {
    scenario: &'static str,
    threads: usize,
    ops_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    fallbacks_per_kop: f64,
}

fn run_point(s: &Scenario, threads: usize, window: Duration) -> Point {
    spitfire_obs::registry().reset_histograms();
    s.bm.reset_metrics();
    let before = s.bm.metrics();
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let bm = Arc::clone(&s.bm);
            let pids = Arc::clone(&s.pids);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut ops = 0u64;
                let mut i = t * (PAGES / threads.max(1));
                // relaxed: stop flag is a window hint; an extra batch outside the window is timing noise.
                while !stop.load(Ordering::Relaxed) {
                    // 1024 fetch/unpin pairs between stop checks.
                    for _ in 0..1024 {
                        let pid = pids[i % PAGES];
                        i = i.wrapping_add(1);
                        let g = bm.fetch(pid, AccessIntent::Read).expect("hit");
                        drop(g);
                    }
                    ops += 1024;
                }
                // relaxed: throughput statistic folded after join.
                total.fetch_add(ops, Ordering::Relaxed);
            })
        })
        .collect();
    let t0 = Instant::now();
    std::thread::sleep(window);
    // relaxed: window hint (see the worker loop).
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = t0.elapsed().as_secs_f64();
    // relaxed: read after join; the join synchronizes.
    let ops = total.load(Ordering::Relaxed);
    let snap = spitfire_obs::registry().histogram(s.op).snapshot();
    let after = s.bm.metrics().delta(&before);
    let fallbacks = after.fetch_fallbacks;
    Point {
        scenario: s.name,
        threads,
        ops_per_sec: ops as f64 / elapsed,
        p50_ns: snap.quantile(0.5).unwrap_or(0),
        p99_ns: snap.quantile(0.99).unwrap_or(0),
        fallbacks_per_kop: if ops == 0 {
            0.0
        } else {
            fallbacks as f64 * 1000.0 / ops as f64
        },
    }
}

fn main() {
    let window = if quick() {
        Duration::from_millis(150)
    } else {
        Duration::from_millis(400)
    };
    let thread_counts: &[usize] = if quick() {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    // Observability on at the default 1-in-31 sampling: p50/p99 come from
    // the sampled stream without distorting the ~100 ns loop under test.
    spitfire_obs::set_enabled(true);

    let mut r = Reporter::new(
        "hitpath",
        "§5.2 / §6.6 (latch contention on the buffer hit path)",
        "lock-free hits scale with threads; fetch/unpin of a resident page \
         performs no mutex acquisition on the uncontended path",
    );
    let mut headers = vec!["scenario".to_string()];
    headers.extend(thread_counts.iter().map(|t| format!("{t} threads")));
    r.headers(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    let mut points: Vec<Point> = Vec::new();
    for s in [dram_hit(), nvm_hit()] {
        let mut cells = vec![s.name.to_string()];
        for &threads in thread_counts {
            let p = run_point(&s, threads, window);
            cells.push(format!(
                "{} ops/s [p50 {} p99 {}]",
                kops(p.ops_per_sec),
                fmt_us(Duration::from_nanos(p.p50_ns)),
                fmt_us(Duration::from_nanos(p.p99_ns)),
            ));
            points.push(p);
        }
        r.row(&cells);
    }
    r.done();

    let path = obs_json_path().unwrap_or_else(|| "BENCH_hitpath.json".into());
    let mut json =
        String::from("{\n  \"pre_pr_baseline\": {\"scenario\": \"dram-hit\", \"ops_per_sec\": {");
    for (i, (threads, ops)) in PRE_PR_DRAM_HIT_OPS.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("\"{threads}\": {ops}"));
    }
    json.push_str("}},\n");
    // Flat-scaling headline: dram-hit throughput at 8 threads over 1
    // thread (ROADMAP open item 1 tracks this ratio; > 1.0 means the hit
    // path gains from cores instead of collapsing under contention).
    let dram_ops = |threads: usize| {
        points
            .iter()
            .find(|p| p.scenario == "dram-hit" && p.threads == threads)
            .map(|p| p.ops_per_sec)
    };
    if let (Some(one), Some(eight)) = (dram_ops(1), dram_ops(8)) {
        if one > 0.0 {
            json.push_str(&format!("  \"scaling_1_to_8\": {:.3},\n", eight / one));
        }
    }
    json.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.0}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"slow_fallbacks_per_kop\": {:.3}}}",
            p.scenario, p.threads, p.ops_per_sec, p.p50_ns, p.p99_ns, p.fallbacks_per_kop
        ));
    }
    json.push_str("\n  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   hitpath -> {}", path.display()),
        Err(e) => eprintln!("   hitpath: failed to write {}: {e}", path.display()),
    }
}
