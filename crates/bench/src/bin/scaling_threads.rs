//! Extension ablation — multi-threaded scalability.
//!
//! HyMem is single-threaded; Spitfire's headline engineering contribution
//! is a *multi-threaded* three-tier buffer manager (§1, §5.2). This
//! experiment sweeps the worker count on YCSB-RO and YCSB-WH over the
//! three-tier hierarchy with Spitfire-Lazy, showing that throughput scales
//! until a device saturates (the SSD first, then NVM bandwidth) — on this
//! emulation the workers overlap *emulated I/O waits*, so scaling reflects
//! the concurrency of the buffer manager rather than host cores.

use spitfire_bench::{build_one_workload, point, quick, Reporter, MB};
use spitfire_core::MigrationPolicy;

fn main() {
    let (dram, nvm, db) = if quick() {
        (4 * MB, 16 * MB, 32 * MB)
    } else {
        (12 * MB + MB / 2, 50 * MB, 100 * MB)
    };
    let thread_counts = if quick() {
        vec![1usize, 4, 16]
    } else {
        vec![1usize, 2, 4, 8, 16]
    };

    let mut r = Reporter::new(
        "scaling_threads",
        "extension of §5.2 (multi-threaded buffer management)",
        "throughput scales with workers until a device saturates; the \
         single-threaded baseline (HyMem's regime) leaves the hierarchy idle",
    );
    let mut headers = vec!["workload".to_string()];
    headers.extend(thread_counts.iter().map(|t| format!("{t} workers")));
    r.headers(&headers.iter().map(String::as_str).collect::<Vec<_>>());

    for label in ["YCSB-RO", "YCSB-WH"] {
        let w = build_one_workload(label, dram, nvm, db, MigrationPolicy::lazy());
        let mut cells = vec![label.to_string()];
        for &threads in &thread_counts {
            let report = w.run_point(MigrationPolicy::lazy(), threads);
            cells.push(point(&report));
        }
        r.row(&cells);
    }
    r.done();
}
