//! Figure 12 — Ablation study of HyMem's and Spitfire's optimizations.
//!
//! For each migration policy in Table 3 (HyMem, Spitfire-Eager,
//! Spitfire-Lazy) incrementally enables (1) fine-grained 256 B loading and
//! (2) the mini-page layout, on YCSB-RO and TPC-C.
//!
//! Paper expectation: fine-grained loading helps eager policies on
//! YCSB-RO (+18 % HyMem, +37 % eager) but is marginal for Spitfire-Lazy;
//! mini pages add ≤ 6 %; even the *baseline* lazy policy beats the other
//! policies with all optimizations on — the migration policy dominates.

use std::sync::Arc;

use spitfire_bench::{
    database, manager_with, point, quick, runner, tpcc_config, with_fast_db_setup, with_fast_setup,
    worker_threads, ycsb_config, Reporter, MB,
};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_workload, RawYcsb, Tpcc, YcsbMix};

fn policies() -> [(&'static str, MigrationPolicy); 3] {
    [
        ("Hymem", MigrationPolicy::hymem()),
        ("Spf-Eager", MigrationPolicy::eager()),
        ("Spf-Lazy", MigrationPolicy::lazy()),
    ]
}

fn main() {
    let (dram, nvm, db_bytes) = if quick() {
        (2 * MB, 8 * MB, 6 * MB)
    } else {
        (8 * MB, 32 * MB, 20 * MB)
    };
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig12_ablation",
        "Figure 12 + Table 3 (§6.5)",
        "fine-grained loading helps eager policies most (+18%/+37% RO); \
         mini page adds <=6%; baseline lazy beats fully-optimized others",
    );
    r.headers(&["workload", "policy", "none", "+fine-grained", "+mini page"]);

    for workload in ["YCSB-RO", "TPC-C"] {
        for (policy_label, policy) in policies() {
            let mut cells = vec![workload.to_string(), policy_label.to_string()];
            for opt in ["none", "fine", "mini"] {
                let bm = manager_with(|mut b| {
                    b = b.dram_capacity(dram).nvm_capacity(nvm).policy(policy);
                    match opt {
                        "fine" => b.fine_grained(256),
                        "mini" => b.fine_grained(256).mini_pages(true),
                        _ => b,
                    }
                });
                let report = if workload == "YCSB-RO" {
                    let w = with_fast_setup(&bm, || {
                        RawYcsb::setup(&bm, ycsb_config(db_bytes, 0.3, YcsbMix::ReadOnly))
                    })
                    .expect("setup");
                    Some(run_workload(&runner(threads), |_, rng| {
                        w.execute(&bm, rng).expect("op")
                    }))
                } else {
                    let db = Arc::new(database(Arc::clone(&bm)));
                    // A rare hash-order-dependent index livelock can abort
                    // the TPC-C load on this cell (see EXPERIMENTS.md,
                    // "Known issues"); report n/a rather than killing the
                    // whole figure.
                    match with_fast_db_setup(&db, || Tpcc::setup(&db, tpcc_config(db_bytes))) {
                        Ok(t) => Some(run_workload(&runner(threads), |_, rng| {
                            t.execute(&db, rng).unwrap_or(false)
                        })),
                        Err(e) => {
                            eprintln!("   ({workload}/{policy_label}/{opt}: setup failed: {e})");
                            None
                        }
                    }
                };
                cells.push(report.map_or("n/a".into(), |rep| point(&rep)));
            }
            r.row(&cells);
        }
    }
    r.done();
}
