//! Miss-path benchmark: write-heavy YCSB over a working set far larger
//! than DRAM, with and without the background maintenance service.
//!
//! Every fetch miss needs a free frame. Without maintenance the miss pays
//! for victim selection, dirty write-back, and NVM→SSD migration inline —
//! the foreground latency spikes this benchmark's `maint-off` scenario
//! measures at the tail. With the service running (`maint-on`), workers
//! pre-evict CLOCK victims to the configured watermarks and write dirty
//! NVM pages back in batches (one fsync per batch), so a miss is a
//! free-list pop plus the unavoidable read I/O: p99 fetch latency drops
//! and `backpressure_fallbacks` stays at zero once the free lists are
//! primed.
//!
//! Emits `BENCH_misspath.json` (override with `--json <path>`): per
//! scenario, fetch-latency quantiles measured around every fetch in the
//! op loop, plus the maintenance counters. The embedded baseline is the
//! `maint-off` scenario measured right before the maintenance service
//! landed — the pre-change inline eviction path.

use std::time::{Duration, Instant};

use spitfire_bench::{fmt_us, obs_json_path, quick, Reporter};
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy, PageId};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_wkld::{YcsbConfig, YcsbMix, YcsbOpStream};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

const PAGE: usize = 4096;
/// DRAM ≪ working set: 16 DRAM frames for a 160-page working set (10×
/// DRAM), spilling past the 64-frame NVM buffer so misses and evictions
/// need frames in both tiers.
const DRAM_FRAMES: usize = 16;
const NVM_FRAMES: usize = 64;
const PAGES: usize = 160;
/// Emulated-device time scale: full Table 1 ratios, compressed 10×.
const SCALE: TimeScale = TimeScale(0.5);
/// Per-op think time emulating the transaction work (WAL append, CC,
/// logging sync) that accompanies each page access in a real system — the
/// window in which background workers refill the free lists.
const THINK: Duration = Duration::from_micros(25);

/// `maint-off` fetch latencies measured right before the maintenance
/// service landed (same box, same scale): the inline-eviction miss path
/// this PR moves into the background. (p50_ns, p99_ns, max_ns).
const PRE_PR_INLINE: (u64, u64, u64) = (107, 2_647, 272_294);

struct Outcome {
    scenario: &'static str,
    ops: usize,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    backpressure: u64,
    steady_backpressure: u64,
    maint_evictions: u64,
    maint_writebacks: u64,
}

fn manager() -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(DRAM_FRAMES * PAGE)
        .nvm_capacity(NVM_FRAMES * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::ZERO) // load phase: no emulated delays
        .ssd_backend(spitfire_bench::ssd_backend_from_env())
        .build()
        .expect("valid config");
    Arc::new(BufferManager::new(config).expect("buffer manager"))
}

fn run_scenario(name: &'static str, with_maintenance: bool, ops: usize) -> Outcome {
    let bm = manager();
    let pids: Vec<PageId> = (0..PAGES).map(|_| bm.allocate_page().unwrap()).collect();
    let payload = vec![0xA5u8; 256];
    for pid in &pids {
        let g = bm.fetch_write(*pid).unwrap();
        g.write(0, &payload).unwrap();
    }
    // Measurement phase: emulated device delays on.
    bm.admin().set_time_scale(SCALE);

    let maintenance = bm.maintenance();
    if with_maintenance {
        maintenance.start();
        // Prime the free lists to the high watermarks before measuring.
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            let (d, n) = bm.free_frames();
            if d >= 1 && n >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    bm.reset_metrics();

    let stream = YcsbOpStream::new(&YcsbConfig {
        records: PAGES as u64,
        theta: 0.6,
        mix: YcsbMix::WriteHeavy,
    });
    let mut rng = SmallRng::seed_from_u64(42);
    let mut lat_ns: Vec<u64> = Vec::with_capacity(ops);
    let warmup = ops / 10;
    let mut steady_base = 0u64;
    let mut buf = [0u8; 256];
    for i in 0..ops {
        if i == warmup {
            steady_base = bm.metrics().backpressure_fallbacks;
        }
        let (key, is_update) = stream.next_op(&mut rng);
        let pid = pids[key as usize % PAGES];
        let t0 = Instant::now();
        if is_update {
            let g = bm.fetch_write(pid).expect("fetch_write");
            let dt = t0.elapsed();
            g.write(0, &payload).unwrap();
            lat_ns.push(dt.as_nanos() as u64);
        } else {
            let g = bm.fetch_read(pid).expect("fetch_read");
            let dt = t0.elapsed();
            g.read(0, &mut buf).unwrap();
            lat_ns.push(dt.as_nanos() as u64);
        }
        // Think time: the frame freed by this op's eviction (or by the
        // workers) comes back while the "transaction" does its other work.
        let spin = Instant::now();
        while spin.elapsed() < THINK {
            std::hint::spin_loop();
        }
    }

    let m = bm.metrics();
    maintenance.stop();
    bm.assert_quiescent();
    lat_ns.sort_unstable();
    let q = |f: f64| lat_ns[((lat_ns.len() - 1) as f64 * f) as usize];
    Outcome {
        scenario: name,
        ops,
        p50_ns: q(0.5),
        p99_ns: q(0.99),
        max_ns: *lat_ns.last().unwrap(),
        backpressure: m.backpressure_fallbacks,
        steady_backpressure: m.backpressure_fallbacks - steady_base,
        maint_evictions: m.maint_evictions,
        maint_writebacks: m.maint_writebacks,
    }
}

fn main() {
    let ops = if quick() { 2_000 } else { 10_000 };

    let mut r = Reporter::new(
        "misspath",
        "§5.2 (background flushing) applied to the fetch miss path",
        "watermark pre-eviction and batched write-back keep eviction I/O \
         off the miss path: lower p99 fetch latency, zero backpressure \
         fallbacks in steady state at default watermarks",
    );
    r.headers(&[
        "scenario",
        "p50 fetch",
        "p99 fetch",
        "max fetch",
        "backpressure (steady)",
        "maint evictions",
    ]);

    let results = [
        run_scenario("maint-off", false, ops),
        run_scenario("maint-on", true, ops),
    ];
    for o in &results {
        r.row(&[
            o.scenario.to_string(),
            fmt_us(Duration::from_nanos(o.p50_ns)),
            fmt_us(Duration::from_nanos(o.p99_ns)),
            fmt_us(Duration::from_nanos(o.max_ns)),
            format!("{} ({})", o.backpressure, o.steady_backpressure),
            format!("{} ({} wb)", o.maint_evictions, o.maint_writebacks),
        ]);
    }
    r.done();

    let path = obs_json_path().unwrap_or_else(|| "BENCH_misspath.json".into());
    let (b50, b99, bmax) = PRE_PR_INLINE;
    let mut json = format!(
        "{{\n  \"pre_pr_baseline\": {{\"scenario\": \"inline-eviction\", \
         \"p50_ns\": {b50}, \"p99_ns\": {b99}, \"max_ns\": {bmax}}},\n  \"results\": [\n"
    );
    for (i, o) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"ops\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"max_ns\": {}, \"backpressure_fallbacks\": {}, \
             \"steady_state_backpressure\": {}, \"maint_evictions\": {}, \
             \"maint_writebacks\": {}}}",
            o.scenario,
            o.ops,
            o.p50_ns,
            o.p99_ns,
            o.max_ns,
            o.backpressure,
            o.steady_backpressure,
            o.maint_evictions,
            o.maint_writebacks
        ));
    }
    json.push_str("\n  ]\n}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   misspath -> {}", path.display()),
        Err(e) => eprintln!("   misspath: failed to write {}: {e}", path.display()),
    }
}
