//! Figure 11 — Optimal granularity for loading data on NVM.
//!
//! Runs HyMem-style cache-line-grained loading at 64/128/256/512 B
//! granules (eager migration, YCSB-RO).
//!
//! Paper expectation: throughput peaks at 256 B — the Optane media access
//! granularity — because 64 B loads suffer ~1.1× I/O amplification (the
//! device still transfers 256 B per access).

use spitfire_bench::{
    manager_with, point, quick, runner, worker_threads, ycsb_config, Reporter, MB,
};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_workload, RawYcsb, YcsbMix};

fn main() {
    let (dram, nvm, db) = if quick() {
        (2 * MB, 8 * MB, 6 * MB)
    } else {
        (8 * MB, 32 * MB, 20 * MB)
    };
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig11_granularity",
        "Figure 11 (§6.5)",
        "throughput peaks at the 256 B media granularity; 64 B is ~1.1x \
         slower from I/O amplification",
    );
    r.headers(&["granule", "throughput", "NVM bytes read / op"]);

    for granule in [64usize, 128, 256, 512] {
        // Mini pages on, as in HyMem: larger granules inflate the mini
        // footprint (fewer minis per slab), which is what pulls 512 B
        // below the 256 B peak.
        let bm = manager_with(|b| {
            b.dram_capacity(dram)
                .nvm_capacity(nvm)
                .policy(MigrationPolicy::eager())
                .fine_grained(granule)
                .mini_pages(true)
        });
        let w = spitfire_bench::with_fast_setup(&bm, || {
            RawYcsb::setup(&bm, ycsb_config(db, 0.3, YcsbMix::ReadOnly))
        })
        .expect("setup");
        let report = run_workload(&runner(threads), |_, rng| w.execute(&bm, rng).expect("op"));
        let nvm_read = bm
            .device_stats(spitfire_core::Tier::Nvm)
            .map(|s| s.snapshot().bytes_read)
            .unwrap_or(0);
        r.row(&[
            format!("{granule} B"),
            point(&report),
            format!("{:.0}", nvm_read as f64 / report.committed.max(1) as f64),
        ]);
    }
    r.done();
}
