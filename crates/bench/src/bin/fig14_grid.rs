//! Figure 14 — Storage system design (grid search).
//!
//! Sweeps DRAM {0, 4, 8, 16, 32} × NVM {0, 40, 80, 160} (scaled sizes,
//! priced as if GB at Table 1 prices, over a fixed 200-unit SSD) running
//! Spitfire-Lazy on YCSB-RO/BA/WH with Zipf 0.5, reporting both the total
//! hierarchy cost and throughput/cost (ops per second per dollar).
//!
//! Paper expectation: read-intensive workloads favour a small-DRAM
//! three-tier hierarchy (4 + 80 on RO, 8 + 80 on BA); write-heavy favours
//! pure NVM-SSD because dirty-page flushing disappears.

use std::sync::Arc;
use std::time::Duration;

use spitfire_bench::{
    point, quick, runner, three_tier, worker_threads, ycsb_config, Flusher, Reporter, MB,
};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_workload, RawYcsb, YcsbMix};

/// Hierarchy cost with capacities interpreted at the paper's GB scale:
/// DRAM $10, NVM $4.5, SSD 200 GB × $2.8 = $560.
fn cost(dram_units: usize, nvm_units: usize) -> f64 {
    dram_units as f64 * 10.0 + nvm_units as f64 * 4.5 + 200.0 * 2.8
}

fn main() {
    let dram_sizes = if quick() {
        vec![0usize, 8, 32]
    } else {
        vec![0usize, 4, 8, 16, 32]
    };
    let nvm_sizes = if quick() {
        vec![0usize, 80]
    } else {
        vec![0usize, 40, 80, 160]
    };
    let db_bytes = if quick() { 24 * MB } else { 100 * MB };
    let threads = worker_threads();

    let mut r = Reporter::new(
        "fig14_grid",
        "Figure 14 (§6.6)",
        "best perf/price: RO -> 4 DRAM + 80 NVM; BA -> 8 + 80; WH -> pure \
         NVM-SSD (recovery flushing gone)",
    );
    r.headers(&["workload", "dram", "nvm", "cost $", "throughput", "ops/s/$"]);

    for mix in [YcsbMix::ReadOnly, YcsbMix::Balanced, YcsbMix::WriteHeavy] {
        let mut best: Option<(f64, String)> = None;
        for &dram in &dram_sizes {
            for &nvm in &nvm_sizes {
                if dram == 0 && nvm == 0 {
                    continue;
                }
                let bm = three_tier(dram * MB, nvm * MB, MigrationPolicy::lazy());
                let w = spitfire_bench::with_fast_setup(&bm, || {
                    RawYcsb::setup(&bm, ycsb_config(db_bytes, 0.5, mix))
                })
                .expect("setup");
                let _flusher = Flusher::start(Arc::clone(&bm), Duration::from_millis(400));
                let report =
                    run_workload(&runner(threads), |_, rng| w.execute(&bm, rng).expect("op"));
                let c = cost(dram, nvm);
                let per_dollar = report.throughput() / c;
                r.row(&[
                    mix.label().to_string(),
                    dram.to_string(),
                    nvm.to_string(),
                    format!("{c:.0}"),
                    point(&report),
                    format!("{per_dollar:.0}"),
                ]);
                let label = format!("DRAM {dram} + NVM {nvm}");
                if best.as_ref().is_none_or(|(b, _)| per_dollar > *b) {
                    best = Some((per_dollar, label));
                }
            }
        }
        let (score, label) = best.expect("at least one configuration");
        println!(
            "   {} best perf/price: {} ({score:.0} ops/s/$)",
            mix.label(),
            label
        );
    }
    r.done();
}
