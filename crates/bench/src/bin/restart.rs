//! Instant-restart benchmark: recovery time vs database size, with and
//! without the snapshot engine.
//!
//! The workload writes every key a fixed number of times, so the WAL
//! history grows linearly with the key count. `wal-replay` is the pre-PR
//! recovery path: no checkpoints ever run, and `Database::recover` must
//! redo the whole history — recovery time grows with the database.
//! `snapshot` attaches a snapshot engine and checkpoints every
//! `CKPT_EVERY` transactions, so recovery loads the newest generation's
//! page images and replays only the WAL tail past its fence — recovery
//! time tracks the (bounded) tail, not the history, and stays roughly
//! flat across the size sweep.
//!
//! Emits `BENCH_restart.json` (override with `--json <path>`): per mode
//! and scale, the recovery wall time plus the recovery statistics. The
//! embedded baseline is the `wal-replay` sweep measured right before the
//! snapshot engine landed.

use std::sync::Arc;
use std::time::Instant;

use spitfire_bench::{obs_json_path, quick, Reporter};
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_txn::{Database, DbConfig, SnapshotConfig, TxnError};

const PAGE: usize = 4096;
const T: u32 = 1;
const TUPLE: usize = 256;
/// Times each key is rewritten: fixes the WAL records *per key*, so total
/// history scales linearly with the key count.
const UPDATES_PER_KEY: u64 = 4;
/// Keys per transaction (amortizes commit records without hiding them).
const BATCH: u64 = 8;
/// Snapshot mode checkpoints every this many committed transactions,
/// independent of scale — the replayable tail is bounded by one interval.
const CKPT_EVERY: u64 = 64;

/// `wal-replay` recovery times measured right before the snapshot engine
/// landed (same box, same scales, full run): (scale, recover_ms).
const PRE_PR_WAL_REPLAY: [(u64, f64); 4] = [(1, 14.3), (2, 39.8), (4, 92.1), (8, 172.6)];

struct Outcome {
    mode: &'static str,
    scale: u64,
    keys: u64,
    wal_bytes: u64,
    recover_ms: f64,
    committed: usize,
    redone: usize,
    snapshot_generation: u64,
    snapshot_pages: usize,
}

fn database() -> Arc<Database> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(256 * PAGE)
        .nvm_capacity(512 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .ssd_backend(spitfire_bench::ssd_backend_from_env())
        .build()
        .expect("valid config");
    let bm = Arc::new(BufferManager::new(config).expect("buffer manager"));
    let db = Database::create(
        bm,
        DbConfig {
            log_tracking: PersistenceTracking::Full,
            ..DbConfig::default()
        },
    )
    .expect("create database");
    db.create_table(T, TUPLE).expect("create table");
    Arc::new(db)
}

/// Write every key `UPDATES_PER_KEY + 1` times (insert + updates),
/// checkpointing on the way when `ckpt_every` is set.
fn run_history(db: &Database, keys: u64, ckpt_every: Option<u64>) {
    let payload = |round: u64, k: u64| vec![(round ^ k) as u8; TUPLE];
    let mut txns = 0u64;
    for round in 0..=UPDATES_PER_KEY {
        let mut k = 0;
        while k < keys {
            let mut txn = db.begin();
            for key in k..(k + BATCH).min(keys) {
                let p = payload(round, key);
                match db.update(&mut txn, T, key, &p) {
                    Err(TxnError::NotFound) => db.insert(&mut txn, T, key, &p).unwrap(),
                    other => other.unwrap(),
                }
            }
            db.commit(&mut txn).unwrap();
            txns += 1;
            if let Some(every) = ckpt_every {
                if txns.is_multiple_of(every) {
                    db.checkpoint().expect("quiescent checkpoint");
                }
            }
            k += BATCH;
        }
    }
}

fn run_mode(mode: &'static str, scale: u64, base_keys: u64, snapshots: bool) -> Outcome {
    let db = database();
    if snapshots {
        // The explicit cadence below drives checkpoints; the byte
        // threshold only matters for `checkpoint_if_due` users. A short
        // full cadence keeps the recovery chain at most a few bounded
        // deltas regardless of where the sweep's last checkpoint lands.
        db.enable_snapshots(SnapshotConfig {
            full_every: 4,
            ..SnapshotConfig::default()
        });
    }
    let keys = base_keys * scale;
    run_history(&db, keys, snapshots.then_some(CKPT_EVERY));
    let wal_bytes = db.wal().log_bytes();

    db.simulate_crash();
    let t0 = Instant::now();
    let stats = db.recover().expect("recovery");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Sanity: recovered state must serve the final round's values.
    let mut txn = db.begin();
    let got = db.read(&txn, T, keys - 1).expect("recovered read");
    assert_eq!(got[0], (UPDATES_PER_KEY ^ (keys - 1)) as u8);
    db.commit(&mut txn).unwrap();

    Outcome {
        mode,
        scale,
        keys,
        wal_bytes,
        recover_ms,
        committed: stats.committed,
        redone: stats.redone,
        snapshot_generation: stats.snapshot_generation,
        snapshot_pages: stats.snapshot_pages,
    }
}

fn main() {
    let base_keys: u64 = if quick() { 128 } else { 1024 };
    let scales: &[u64] = &[1, 2, 4, 8];

    let mut r = Reporter::new(
        "restart",
        "instant restart: checkpointed recovery vs full WAL replay",
        "snapshot recovery loads the newest generation and replays only \
         the bounded tail: roughly flat across an 8x database-size sweep, \
         while WAL-replay recovery grows linearly with history",
    );
    r.headers(&[
        "mode",
        "scale",
        "keys",
        "wal bytes",
        "recover (ms)",
        "tail commits",
        "snapshot pages",
    ]);

    let mut results: Vec<Outcome> = Vec::new();
    for &mode in &["wal-replay", "snapshot"] {
        for &scale in scales {
            let o = run_mode(mode, scale, base_keys, mode == "snapshot");
            r.row(&[
                o.mode.to_string(),
                format!("{}x", o.scale),
                o.keys.to_string(),
                o.wal_bytes.to_string(),
                format!("{:.1}", o.recover_ms),
                o.committed.to_string(),
                o.snapshot_pages.to_string(),
            ]);
            results.push(o);
        }
    }
    r.done();

    let growth = |mode: &str| -> f64 {
        let times: Vec<f64> = results
            .iter()
            .filter(|o| o.mode == mode)
            .map(|o| o.recover_ms)
            .collect();
        times.last().unwrap() / times.first().unwrap().max(1e-6)
    };
    let (g_base, g_snap) = (growth("wal-replay"), growth("snapshot"));
    println!(
        "   recovery growth across {}x sweep: wal-replay {:.1}x, snapshot {:.1}x",
        scales.last().unwrap(),
        g_base,
        g_snap
    );

    let path = obs_json_path().unwrap_or_else(|| "BENCH_restart.json".into());
    let mut json = String::from(
        "{\n  \"pre_pr_baseline\": {\"mode\": \"wal-replay\", \"recover_ms_by_scale\": [",
    );
    for (i, (scale, ms)) in PRE_PR_WAL_REPLAY.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!("{{\"scale\": {scale}, \"recover_ms\": {ms}}}"));
    }
    json.push_str("]},\n  \"results\": [\n");
    for (i, o) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"scale\": {}, \"keys\": {}, \"wal_bytes\": {}, \
             \"recover_ms\": {:.3}, \"tail_commits\": {}, \"records_redone\": {}, \
             \"snapshot_generation\": {}, \"snapshot_pages\": {}}}",
            o.mode,
            o.scale,
            o.keys,
            o.wal_bytes,
            o.recover_ms,
            o.committed,
            o.redone,
            o.snapshot_generation,
            o.snapshot_pages
        ));
    }
    json.push_str(&format!(
        "\n  ],\n  \"growth_across_sweep\": {{\"wal_replay\": {g_base:.2}, \"snapshot\": {g_snap:.2}}}\n}}\n"
    ));
    match std::fs::write(&path, json) {
        Ok(()) => println!("   restart -> {}", path.display()),
        Err(e) => eprintln!("   restart: failed to write {}: {e}", path.display()),
    }
}
