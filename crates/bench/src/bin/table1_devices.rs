//! Table 1 — Device characteristics.
//!
//! Prints the emulated device profiles and *measures* the cost models to
//! verify the emulation delivers the latencies and bandwidths the paper
//! reports for DRAM, Optane DC PMMs, and the Optane SSD.

use std::time::Instant;

use spitfire_bench::{Reporter, MB};
use spitfire_device::{
    AccessPattern, DeviceProfile, DramDevice, NvmDevice, PersistenceTracking, SsdDevice, TimeScale,
};

fn measured_read_latency_ns(mut read: impl FnMut()) -> f64 {
    const N: u32 = 2000;
    let start = Instant::now();
    for _ in 0..N {
        read();
    }
    start.elapsed().as_nanos() as f64 / N as f64
}

fn measured_bandwidth_gbps(bytes_per_op: usize, ops: u32, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..ops {
        op();
    }
    let secs = start.elapsed().as_secs_f64();
    (bytes_per_op as f64 * ops as f64) / secs / 1e9
}

fn main() {
    let mut r = Reporter::new(
        "table1_devices",
        "Table 1",
        "DRAM 80 ns / 180 GB/s; NVM 320 ns random read, 28.8 GB/s random read, \
         6 GB/s random write; SSD ~12 us, ~2.4 GB/s",
    );
    r.headers(&[
        "device",
        "profile rand-read lat",
        "measured lat",
        "profile rand-read bw",
        "measured bw",
        "profile rand-write bw",
        "measured write bw",
    ]);

    let dram = DramDevice::new(64 * MB, TimeScale::REAL);
    let nvm = NvmDevice::new(64 * MB, TimeScale::REAL, PersistenceTracking::Counters);
    let ssd = SsdDevice::new(16 * 1024, TimeScale::REAL);
    let page = vec![0u8; 16 * 1024];
    for pid in 0..64 {
        ssd.write_page(pid, &page).expect("ssd seed");
    }

    let mut big = vec![0u8; 256 * 1024];

    // DRAM.
    let lat = measured_read_latency_ns(|| {
        let mut b = [0u8; 64];
        dram.read(4096, &mut b, AccessPattern::Random).unwrap();
    });
    let bw = measured_bandwidth_gbps(big.len(), 400, || {
        dram.read(0, &mut big, AccessPattern::Random).unwrap();
    });
    let wbw = measured_bandwidth_gbps(big.len(), 400, || {
        dram.write(0, &big, AccessPattern::Random).unwrap();
    });
    let p = DeviceProfile::dram();
    r.row(&[
        "DRAM".into(),
        format!("{} ns", p.rand_read_latency_ns),
        format!("{lat:.0} ns"),
        format!("{:.0} GB/s", p.rand_read_bw as f64 / 1e9),
        format!("{bw:.0} GB/s"),
        format!("{:.0} GB/s", p.rand_write_bw as f64 / 1e9),
        format!("{wbw:.0} GB/s"),
    ]);

    // NVM.
    let lat = measured_read_latency_ns(|| {
        let mut b = [0u8; 64];
        nvm.read(4096, &mut b, AccessPattern::Random).unwrap();
    });
    let bw = measured_bandwidth_gbps(big.len(), 200, || {
        nvm.read(0, &mut big, AccessPattern::Random).unwrap();
    });
    let wbw = measured_bandwidth_gbps(big.len(), 100, || {
        nvm.write(0, &big, AccessPattern::Random).unwrap();
    });
    let p = DeviceProfile::optane_pmm();
    r.row(&[
        "NVM (Optane PMM)".into(),
        format!("{} ns", p.rand_read_latency_ns),
        format!("{lat:.0} ns"),
        format!("{:.1} GB/s", p.rand_read_bw as f64 / 1e9),
        format!("{bw:.1} GB/s"),
        format!("{:.0} GB/s", p.rand_write_bw as f64 / 1e9),
        format!("{wbw:.1} GB/s"),
    ]);

    // SSD.
    let mut pagebuf = vec![0u8; 16 * 1024];
    let lat = {
        const N: u32 = 500;
        let start = Instant::now();
        for i in 0..N {
            ssd.read_page((i % 64) as u64, &mut pagebuf).unwrap();
        }
        start.elapsed().as_nanos() as f64 / N as f64
    };
    let bw = measured_bandwidth_gbps(16 * 1024, 500, || {
        ssd.read_page(7, &mut pagebuf).unwrap();
    });
    let wbw = measured_bandwidth_gbps(16 * 1024, 500, || {
        ssd.write_page(7, &page).unwrap();
    });
    let p = DeviceProfile::optane_ssd();
    r.row(&[
        "SSD (Optane P4800X)".into(),
        format!(
            "{:.0} us (per 16 KB page incl. transfer)",
            p.rand_read_latency_ns as f64 / 1000.0
        ),
        format!("{:.1} us", lat / 1000.0),
        format!("{:.1} GB/s", p.rand_read_bw as f64 / 1e9),
        format!("{bw:.1} GB/s"),
        format!("{:.1} GB/s", p.rand_write_bw as f64 / 1e9),
        format!("{wbw:.1} GB/s"),
    ]);

    // Other key attributes (static).
    println!("   granularity: DRAM 64 B | NVM 256 B | SSD 16 KB");
    println!("   price $/GB:  DRAM 10.0 | NVM 4.5   | SSD 2.8");
    println!("   persistent:  DRAM no   | NVM yes   | SSD yes");
    r.done();
}
