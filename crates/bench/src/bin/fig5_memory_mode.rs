//! Figure 5 — Benefits of NVM and app-direct mode.
//!
//! Compares two equi-cost hierarchies across database sizes:
//!
//! * **DRAM-SSD (memory mode)** — NVM behind a hardware-managed DRAM
//!   cache; buffer capacity 140 (scaled), of which 96 is real DRAM;
//! * **NVM-SSD (app-direct)** — a 340 (scaled) NVM buffer.
//!
//! Paper expectation: memory mode wins slightly (≤ 1.12×) while the
//! database fits its buffer; once it does not, app-direct NVM-SSD wins by
//! up to 6× (YCSB-RO) / 2.28× (YCSB-BA, TPC-C) thanks to its larger
//! equi-cost capacity and the absence of dirty-page flushing.

use std::sync::Arc;
use std::time::Duration;

use spitfire_bench::{
    database, manager_with, point, quick, runner, tpcc_config, with_fast_db_setup, worker_threads,
    ycsb_config, Flusher, Reporter, MB,
};
use spitfire_core::MigrationPolicy;
use spitfire_wkld::{run_workload, Tpcc, YcsbMix, YcsbTxn};

fn main() {
    let sizes: Vec<usize> = if quick() {
        vec![5 * MB, 60 * MB, 150 * MB]
    } else {
        vec![
            5 * MB,
            45 * MB,
            85 * MB,
            125 * MB,
            185 * MB,
            245 * MB,
            305 * MB,
        ]
    };
    let threads = worker_threads();
    let workloads: Vec<&str> = if quick() {
        vec!["YCSB-RO", "TPC-C"]
    } else {
        vec!["YCSB-RO", "YCSB-BA", "TPC-C"]
    };

    let mut r = Reporter::new(
        "fig5_memory_mode",
        "Figure 5 (§6.2)",
        "equi-cost: memory-mode DRAM-SSD wins (<=1.12x) while cacheable; \
         NVM-SSD app-direct wins up to 6x (RO) / 2.28x (BA, TPC-C) beyond",
    );
    r.headers(&[
        "workload",
        "db size",
        "DRAM-SSD (memory mode)",
        "NVM-SSD (app-direct)",
    ]);

    for wl in &workloads {
        for &db_bytes in &sizes {
            let mut cells = vec![wl.to_string(), format!("{} MB", db_bytes / MB)];
            for mode in ["memory", "appdirect"] {
                let bm = if mode == "memory" {
                    manager_with(|b| {
                        b.memory_mode(true)
                            .dram_capacity(96 * MB)
                            .nvm_capacity(140 * MB)
                            .policy(MigrationPolicy::eager())
                    })
                } else {
                    manager_with(|b| {
                        b.dram_capacity(0)
                            .nvm_capacity(340 * MB)
                            .policy(MigrationPolicy::lazy())
                    })
                };
                let db = Arc::new(database(Arc::clone(&bm)));
                let _flusher = Flusher::start(Arc::clone(&bm), Duration::from_millis(500));
                let report = match *wl {
                    "YCSB-RO" | "YCSB-BA" => {
                        let mix = if *wl == "YCSB-RO" {
                            YcsbMix::ReadOnly
                        } else {
                            YcsbMix::Balanced
                        };
                        let w = with_fast_db_setup(&db, || {
                            YcsbTxn::setup(&db, ycsb_config(db_bytes, 0.3, mix))
                        })
                        .expect("ycsb setup");
                        run_workload(&runner(threads), |_, rng| {
                            w.execute(&db, rng).expect("ycsb txn")
                        })
                    }
                    _ => {
                        let t = with_fast_db_setup(&db, || Tpcc::setup(&db, tpcc_config(db_bytes)))
                            .expect("tpcc setup");
                        run_workload(&runner(threads), |_, rng| {
                            t.execute(&db, rng).expect("tpcc txn")
                        })
                    }
                };
                cells.push(point(&report));
            }
            r.row(&cells);
        }
    }
    r.done();
}
