//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the Spitfire paper's evaluation (§6).
//!
//! All experiments run ~1000× smaller than the paper (MB instead of GB) at
//! identical capacity *ratios*; devices charge real wall-clock time from
//! the Table 1 cost models, so throughput *shapes* (who wins, by what
//! factor, where crossovers fall) are the reproduction target, not
//! absolute numbers. See `EXPERIMENTS.md` for the paper-vs-measured log.
//!
//! Environment knobs:
//!
//! * `SPITFIRE_QUICK=1` — shrink sweep ranges and measurement windows
//!   (smoke-test mode).
//! * `SPITFIRE_SECS=<f64>` — measurement window per point (default 1.0,
//!   quick 0.4).
//! * `SPITFIRE_THREADS=<n>` — "multi-threaded" worker count (default 8).
//! * `SPITFIRE_OBS=1` — enable the observability subsystem (latency
//!   histograms, gauges, background sampler) for the run; the experiment
//!   prints per-operation p50/p99 lines when it finishes.
//! * `--json <path>` (any experiment binary) — implies `SPITFIRE_OBS=1`
//!   and dumps the unified observability report (histograms + gauges +
//!   device stats + sampler series) as JSON to `<path>` on completion.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{PersistenceTracking, SsdBackendConfig, TimeScale};
use spitfire_txn::{Database, DbConfig};
use spitfire_wkld::{RunnerConfig, TpccConfig, YcsbConfig, YcsbMix};

/// One mebibyte.
pub const MB: usize = 1 << 20;

/// Run `setup` with emulated device delays off, restoring full-fidelity
/// delays afterwards. Load phases are not measured, so charging Table 1
/// time for them only slows the harness down.
pub fn with_fast_setup<T>(bm: &BufferManager, setup: impl FnOnce() -> T) -> T {
    bm.admin().set_time_scale(TimeScale::ZERO);
    let out = setup();
    bm.admin().set_time_scale(TimeScale::REAL);
    out
}

/// As [`with_fast_setup`], for a full database (buffer manager + WAL).
pub fn with_fast_db_setup<T>(db: &Database, setup: impl FnOnce() -> T) -> T {
    db.set_time_scale(TimeScale::ZERO);
    let out = setup();
    db.set_time_scale(TimeScale::REAL);
    out
}

/// Page size used by every experiment (the paper's 16 KB).
pub const PAGE: usize = 16 * 1024;

/// Whether quick (smoke) mode is active.
pub fn quick() -> bool {
    std::env::var("SPITFIRE_QUICK").is_ok_and(|v| v != "0")
}

/// Measurement window per experiment point.
pub fn measure_secs() -> Duration {
    let default = if quick() { 0.4 } else { 1.0 };
    let secs = std::env::var("SPITFIRE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default);
    Duration::from_secs_f64(secs)
}

/// Worker count for the multi-threaded configurations (paper: 16; default
/// 8 here — the emulation overlaps I/O waits, not CPU).
pub fn worker_threads() -> usize {
    std::env::var("SPITFIRE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8)
}

/// Standard runner configuration for one experiment point.
pub fn runner(threads: usize) -> RunnerConfig {
    RunnerConfig {
        threads,
        warmup: if quick() {
            Duration::from_millis(150)
        } else {
            Duration::from_millis(400)
        },
        duration: measure_secs(),
        seed: 0x5F17F17E,
    }
}

/// SSD backend selected by `SPITFIRE_SSD_FILE`: set (non-`"0"`) to back
/// the SSD tier with a real file (`FileSsdDevice`, O_DIRECT where the
/// filesystem supports it, unlinked temp file) instead of the in-memory
/// emulation. Lets every experiment binary rerun against real storage
/// for an emulated-vs-file delta without a separate build.
pub fn ssd_backend_from_env() -> SsdBackendConfig {
    if std::env::var("SPITFIRE_SSD_FILE").is_ok_and(|v| v != "0") {
        SsdBackendConfig::File { path: None }
    } else {
        SsdBackendConfig::Emulated
    }
}

/// Build a three-tier buffer manager with the given capacities in bytes.
pub fn three_tier(dram: usize, nvm: usize, policy: MigrationPolicy) -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(dram)
        .nvm_capacity(nvm)
        .policy(policy)
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::REAL)
        .ssd_backend(ssd_backend_from_env())
        .build()
        .expect("valid experiment config");
    let bm = Arc::new(BufferManager::new(config).expect("buffer manager"));
    if spitfire_obs::enabled() {
        bm.register_obs_gauges();
    }
    bm
}

/// Build a buffer manager from a full config builder closure.
pub fn manager_with(
    f: impl FnOnce(
        spitfire_core::BufferManagerConfigBuilder,
    ) -> spitfire_core::BufferManagerConfigBuilder,
) -> Arc<BufferManager> {
    let builder = BufferManagerConfig::builder()
        .page_size(PAGE)
        .persistence(PersistenceTracking::Counters)
        .time_scale(TimeScale::REAL)
        .ssd_backend(ssd_backend_from_env());
    let config = f(builder).build().expect("valid experiment config");
    let bm = Arc::new(BufferManager::new(config).expect("buffer manager"));
    if spitfire_obs::enabled() {
        bm.register_obs_gauges();
    }
    bm
}

/// The `--json <path>` / `--json=<path>` argument, if one was passed to
/// this binary.
pub fn obs_json_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next().map(Into::into);
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.into());
        }
    }
    None
}

/// Whether observability was requested via `SPITFIRE_OBS=1` or `--json`.
pub fn obs_requested() -> bool {
    std::env::var("SPITFIRE_OBS").is_ok_and(|v| v != "0") || obs_json_path().is_some()
}

/// YCSB config for a database of `db_bytes` at skew `theta`.
pub fn ycsb_config(db_bytes: usize, theta: f64, mix: YcsbMix) -> YcsbConfig {
    YcsbConfig {
        records: (db_bytes / 1000) as u64,
        theta,
        mix,
    }
}

/// TPC-C config scaled so the loaded database is roughly `db_bytes`
/// (≈ 7 MB per warehouse at the scaled row counts: 10 k stock x ~550 B +
/// 3 k customers x ~550 B).
pub fn tpcc_config(db_bytes: usize) -> TpccConfig {
    TpccConfig {
        warehouses: ((db_bytes / (7 * MB)) as u64).max(1),
        customers_per_district: 300,
        items: 10_000,
    }
}

/// Create a transactional database on `bm` (counters-only log tracking —
/// the experiments measure throughput, not crash recovery).
pub fn database(bm: Arc<BufferManager>) -> Database {
    Database::create(
        bm,
        DbConfig {
            log_buffer_bytes: 4 * MB,
            log_page_size: PAGE,
            log_tracking: PersistenceTracking::Counters,
            lock_stripes: 1024,
        },
    )
    .expect("database")
}

/// Column-aligned result table writer that mirrors rows to stdout and a
/// CSV file under `results/`.
pub struct Reporter {
    name: String,
    csv: Option<std::fs::File>,
    headers: Vec<String>,
}

impl Reporter {
    /// Start a report named `name` (e.g. "fig6_bypass_dram"); prints the
    /// experiment banner and opens `results/<name>.csv`.
    pub fn new(name: &str, paper_ref: &str, expectation: &str) -> Self {
        println!("== {name} — {paper_ref}");
        println!("   paper: {expectation}");
        println!(
            "   mode: {} | window {:?} | workers {}",
            if quick() { "QUICK" } else { "full" },
            measure_secs(),
            worker_threads()
        );
        if obs_requested() {
            spitfire_obs::set_enabled(true);
            spitfire_obs::registry().reset_histograms();
            spitfire_obs::start_sampler(Duration::from_millis(200));
            println!(
                "   obs: recording on{}",
                if obs_json_path().is_some() {
                    " (+json dump)"
                } else {
                    ""
                }
            );
        }
        let csv = std::fs::create_dir_all("results")
            .ok()
            .and_then(|()| std::fs::File::create(format!("results/{name}.csv")).ok());
        Reporter {
            name: name.to_string(),
            csv,
            headers: Vec::new(),
        }
    }

    /// Set column headers.
    pub fn headers(&mut self, cols: &[&str]) {
        self.headers = cols.iter().map(|s| s.to_string()).collect();
        println!("   {}", cols.join(" | "));
        if let Some(f) = &mut self.csv {
            let _ = writeln!(f, "{}", cols.join(","));
        }
    }

    /// Emit one row.
    pub fn row(&mut self, cols: &[String]) {
        println!("   {}", cols.join(" | "));
        if let Some(f) = &mut self.csv {
            let _ = writeln!(f, "{}", cols.join(","));
        }
    }

    /// Finish, printing the CSV location — and, when observability is on,
    /// per-operation p50/p99 latency lines plus the `--json` report dump.
    pub fn done(self) {
        if spitfire_obs::enabled() {
            spitfire_obs::stop_sampler();
            let report = dump_obs_report(self.name.as_str());
            for h in &report.histograms {
                let ns = |q| Duration::from_nanos(h.snapshot.quantile(q).unwrap_or(0));
                println!(
                    "   obs {}: p50={} p99={} (n={})",
                    h.name,
                    fmt_us(ns(0.5)),
                    fmt_us(ns(0.99)),
                    h.snapshot.count
                );
            }
        }
        println!("   -> results/{}.csv\n", self.name);
    }
}

/// Capture the unified observability report (histograms, gauges, sampler
/// series — buffer and device counters ride along as registered gauges)
/// and, if a `--json <path>` argument was passed, write it there.
pub fn dump_obs_report(name: &str) -> spitfire_obs::Report {
    let report = spitfire_obs::Report::capture();
    if let Some(path) = obs_json_path() {
        match std::fs::write(&path, report.to_json()) {
            Ok(()) => println!("   obs: {name} report -> {}", path.display()),
            Err(e) => eprintln!("   obs: failed to write {}: {e}", path.display()),
        }
    }
    report
}

/// Format one measured point as throughput plus the run's sampled p50/p99
/// latency: `"12.3k ops/s [p50 8µs p99 1.2ms]"`.
pub fn point(report: &spitfire_wkld::RunReport) -> String {
    match (report.latency_quantile(0.5), report.latency_quantile(0.99)) {
        (Some(p50), Some(p99)) => format!(
            "{} ops/s [p50 {} p99 {}]",
            kops(report.throughput()),
            fmt_us(p50),
            fmt_us(p99)
        ),
        _ => format!("{} ops/s", kops(report.throughput())),
    }
}

/// Short human-readable duration: microseconds under 1 ms, else
/// milliseconds.
pub fn fmt_us(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1000.0 {
        format!("{:.1}ms", us / 1000.0)
    } else if us < 10.0 {
        format!("{us:.1}µs")
    } else {
        format!("{us:.0}µs")
    }
}

/// Format a throughput as "12.3k ops/s"-style short string.
pub fn kops(tput: f64) -> String {
    if tput >= 1_000_000.0 {
        format!("{:.2}M", tput / 1_000_000.0)
    } else if tput >= 1_000.0 {
        format!("{:.1}k", tput / 1_000.0)
    } else {
        format!("{tput:.0}")
    }
}

/// The four workloads §6.3 sweeps (three YCSB mixes + TPC-C).
pub fn policy_workload_labels() -> [&'static str; 4] {
    ["YCSB-RO", "YCSB-BA", "YCSB-WH", "TPC-C"]
}

/// Bytes written to NVM (buffer device) so far.
pub fn nvm_bytes_written(bm: &BufferManager) -> u64 {
    bm.device_stats(spitfire_core::Tier::Nvm)
        .map(|s| s.snapshot().bytes_written)
        .unwrap_or(0)
}

/// Background dirty-page flusher, emulating the paper's recovery-protocol
/// flushing of dirty DRAM pages (§5.2) during measurement. NVM-resident
/// dirty pages are never flushed (they are persistent), which is exactly
/// the NVM-SSD hierarchy's advantage in Figures 5, 14, and 15.
pub struct Flusher {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Flusher {
    /// Start flushing `bm`'s dirty DRAM pages every `period`.
    pub fn start(bm: Arc<BufferManager>, period: Duration) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // relaxed: shutdown hint; the flusher may run one extra cycle.
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(period);
                let _ = bm.flush_all_dirty();
            }
        });
        Flusher {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Flusher {
    fn drop(&mut self) {
        // relaxed: shutdown hint (see the worker loop).
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One workload instance bound to its own buffer manager, reusable across
/// policy sweep points (§6.3's experiments re-run the same workload under
/// different ⟨D, N⟩ settings).
pub enum PolicyWorkload {
    /// Buffer-manager-level YCSB.
    Raw {
        /// The buffer manager under test.
        bm: Arc<BufferManager>,
        /// The raw driver.
        w: spitfire_wkld::RawYcsb,
    },
    /// Full transactional TPC-C.
    Tpcc {
        /// The database under test (owns the buffer manager).
        db: Arc<Database>,
        /// The TPC-C driver.
        t: spitfire_wkld::Tpcc,
    },
}

impl PolicyWorkload {
    /// The buffer manager under test.
    pub fn bm(&self) -> &BufferManager {
        match self {
            PolicyWorkload::Raw { bm, .. } => bm,
            PolicyWorkload::Tpcc { db, .. } => db.buffer_manager(),
        }
    }

    /// Switch the migration policy, then run one timed point.
    pub fn run_point(&self, policy: MigrationPolicy, threads: usize) -> spitfire_wkld::RunReport {
        self.bm().admin().set_policy(policy);
        let config = runner(threads);
        match self {
            PolicyWorkload::Raw { bm, w } => spitfire_wkld::run_workload(&config, |_, rng| {
                w.execute(bm, rng).expect("raw ycsb op")
            }),
            PolicyWorkload::Tpcc { db, t } => {
                spitfire_wkld::run_workload(&config, |_, rng| t.execute(db, rng).expect("tpcc txn"))
            }
        }
    }
}

/// Build one §6.3 workload ("YCSB-RO" / "YCSB-BA" / "YCSB-WH" / "TPC-C")
/// on a fresh hierarchy. `setup_policy` governs migration during the load
/// phase — pass the first policy the sweep will measure so no carried-over
/// placement contaminates per-point metrics like NVM write volume.
pub fn build_one_workload(
    label: &str,
    dram: usize,
    nvm: usize,
    db_bytes: usize,
    setup_policy: MigrationPolicy,
) -> PolicyWorkload {
    use spitfire_wkld::{RawYcsb, Tpcc};
    match label {
        "TPC-C" => {
            let bm = three_tier(dram, nvm, setup_policy);
            let db = Arc::new(database(bm));
            let t = with_fast_db_setup(&db, || Tpcc::setup(&db, tpcc_config(db_bytes)))
                .expect("tpcc setup");
            PolicyWorkload::Tpcc { db, t }
        }
        _ => {
            let mix = match label {
                "YCSB-RO" => YcsbMix::ReadOnly,
                "YCSB-BA" => YcsbMix::Balanced,
                _ => YcsbMix::WriteHeavy,
            };
            let bm = three_tier(dram, nvm, setup_policy);
            let w = with_fast_setup(&bm, || RawYcsb::setup(&bm, ycsb_config(db_bytes, 0.3, mix)))
                .expect("ycsb setup");
            PolicyWorkload::Raw { bm, w }
        }
    }
}

/// Build the four §6.3 workloads (YCSB-RO/BA/WH over raw pages, TPC-C over
/// the full stack), each on a fresh hierarchy of the given byte sizes.
pub fn build_policy_workloads(
    dram: usize,
    nvm: usize,
    db_bytes: usize,
) -> Vec<(&'static str, PolicyWorkload)> {
    policy_workload_labels()
        .into_iter()
        .map(|label| {
            (
                label,
                build_one_workload(label, dram, nvm, db_bytes, MigrationPolicy::lazy()),
            )
        })
        .collect()
}
