//! Criterion micro-benchmarks for the core data structures and hot paths.
//!
//! These run with `TimeScale::ZERO` — they measure *code* overhead
//! (latches, mapping table, policy flips, B+Tree descent, WAL framing),
//! not the emulated device delays the experiment binaries charge.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spitfire_core::{
    AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, PolicyCell,
};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_index::BTree;
use spitfire_sync::{AtomicBitmap, ConcurrentMap, RwLatch, VersionLatch};
use spitfire_txn::{LogRecord, RecordKind, Wal};
use spitfire_wkld::Zipf;

fn bm(dram_pages: usize, nvm_pages: usize) -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(4096)
        .dram_capacity(dram_pages * 4096)
        .nvm_capacity(nvm_pages * (4096 + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    Arc::new(BufferManager::new(config).unwrap())
}

fn bench_bm_fetch(c: &mut Criterion) {
    let mut g = c.benchmark_group("bm_fetch");
    // DRAM hit path.
    let m = bm(64, 128);
    let pid = m.allocate_page().unwrap();
    {
        let guard = m.fetch(pid, AccessIntent::Write).unwrap();
        guard.write(0, &[1u8; 64]).unwrap();
    }
    g.bench_function("dram_hit", |b| {
        b.iter(|| {
            let guard = m.fetch(pid, AccessIntent::Read).unwrap();
            let mut buf = [0u8; 64];
            guard.read(0, &mut buf).unwrap();
            buf
        })
    });
    // NVM hit path (never promoted).
    let m2 = bm(64, 128);
    m2.admin()
        .set_policy(MigrationPolicy::new(0.0, 0.0, 1.0, 1.0));
    let pid2 = m2.allocate_page().unwrap();
    let _ = m2.fetch(pid2, AccessIntent::Read).unwrap();
    g.bench_function("nvm_hit", |b| {
        b.iter(|| {
            let guard = m2.fetch(pid2, AccessIntent::Read).unwrap();
            let mut buf = [0u8; 64];
            guard.read(0, &mut buf).unwrap();
            buf
        })
    });
    // SSD miss + eviction churn.
    let m3 = bm(4, 8);
    let pids: Vec<_> = (0..64).map(|_| m3.allocate_page().unwrap()).collect();
    let mut i = 0;
    g.bench_function("ssd_miss_churn", |b| {
        b.iter(|| {
            i = (i + 17) % pids.len();
            let guard = m3.fetch(pids[i], AccessIntent::Read).unwrap();
            guard.page_id()
        })
    });
    g.finish();
}

fn bench_sync_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    let latch = RwLatch::new();
    g.bench_function("rwlatch_read", |b| b.iter(|| drop(latch.read())));
    g.bench_function("rwlatch_write", |b| b.iter(|| drop(latch.write())));
    let vl = VersionLatch::new();
    g.bench_function("version_latch_optimistic_read", |b| {
        b.iter(|| {
            let v = vl.read_lock().unwrap();
            vl.read_unlock(v).unwrap();
        })
    });
    let map: ConcurrentMap<u64, u64> = ConcurrentMap::new();
    for k in 0..10_000 {
        map.insert(k, k);
    }
    let mut k = 0u64;
    g.bench_function("mapping_table_get", |b| {
        b.iter(|| {
            k = (k + 7919) % 10_000;
            map.get(&k)
        })
    });
    let bitmap = AtomicBitmap::new(4096);
    g.bench_function("clock_bitmap_set_clear", |b| {
        b.iter(|| {
            bitmap.set(1234);
            bitmap.clear(1234);
        })
    });
    g.finish();
}

fn bench_policy(c: &mut Criterion) {
    let cell = PolicyCell::new(MigrationPolicy::lazy());
    let mut rng = SmallRng::seed_from_u64(1);
    c.bench_function("policy_flip", |b| {
        b.iter(|| {
            let draw: u32 = rng.gen();
            cell.flip_dr(draw)
        })
    });
}

fn bench_btree(c: &mut Criterion) {
    let tree = BTree::new(bm(256, 512)).unwrap();
    for k in 0..50_000u64 {
        tree.insert(k, k).unwrap();
    }
    let mut g = c.benchmark_group("btree");
    let mut k = 0u64;
    g.bench_function("get", |b| {
        b.iter(|| {
            k = (k + 48271) % 50_000;
            tree.get(k).unwrap()
        })
    });
    let mut next = 50_000u64;
    g.bench_function("insert", |b| {
        b.iter(|| {
            next += 1;
            tree.insert(next, next).unwrap()
        })
    });
    g.bench_function("scan_100", |b| {
        b.iter(|| {
            k = (k + 48271) % 50_000;
            tree.scan_from(k, 100).unwrap().len()
        })
    });
    g.finish();
}

fn bench_wal(c: &mut Criterion) {
    let wal = Wal::new(
        16 << 20,
        16 * 1024,
        TimeScale::ZERO,
        PersistenceTracking::Counters,
    )
    .unwrap();
    let record = LogRecord {
        kind: RecordKind::Update,
        txn: 1,
        table: 1,
        key: 42,
        rid: 7,
        prev_rid: u64::MAX,
        prev_lsn: u64::MAX,
        payload: vec![0xAB; 128],
    };
    c.bench_function("wal_append_128B", |b| {
        b.iter(|| wal.append(&record).unwrap())
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(1_000_000, 0.5);
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("zipf_sample", |b| b.iter(|| z.sample(&mut rng)));
}

fn bench_obs(c: &mut Criterion) {
    use spitfire_obs::Op;
    let mut g = c.benchmark_group("obs");
    // Raw recorder cost: disabled is one relaxed load; `record_timed` is the
    // unsampled worst case (two clock reads plus a sharded histogram bump);
    // `record_sampled` is the default 1-in-31 sampled amortized cost.
    spitfire_obs::set_enabled(false);
    g.bench_function("record_disabled", |b| {
        b.iter(|| {
            let t = spitfire_obs::op_start();
            spitfire_obs::record_op(Op::FetchDramHit, t, 0, "dram");
        })
    });
    spitfire_obs::set_enabled(true);
    spitfire_obs::set_sample_interval(1);
    g.bench_function("record_timed", |b| {
        b.iter(|| {
            let t = spitfire_obs::op_start();
            spitfire_obs::record_op(Op::FetchDramHit, t, 0, "dram");
        })
    });
    spitfire_obs::set_sample_interval(spitfire_obs::DEFAULT_SAMPLE_INTERVAL);
    g.bench_function("record_sampled", |b| {
        b.iter(|| {
            let t = spitfire_obs::op_start();
            spitfire_obs::record_op(Op::FetchDramHit, t, 0, "dram");
        })
    });
    spitfire_obs::set_enabled(false);
    g.finish();

    // End-to-end overhead budget on the hottest instrumented path (DRAM-hit
    // fetch): the enabled recorder must cost < 5% throughput, and the
    // disabled path must be within noise of baseline. A zero-delay DRAM hit
    // is ~300 ns, so this only holds because `op_start` samples (default
    // 1-in-31) instead of paying two ~50 ns clock reads on every fetch.
    let m = bm(64, 128);
    let pid = m.allocate_page().unwrap();
    {
        let guard = m.fetch(pid, AccessIntent::Write).unwrap();
        guard.write(0, &[1u8; 64]).unwrap();
    }
    let iters = 200_000u32;
    let run = || {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            let guard = m.fetch(pid, AccessIntent::Read).unwrap();
            let mut buf = [0u8; 64];
            guard.read(0, &mut buf).unwrap();
            std::hint::black_box(buf);
        }
        start.elapsed()
    };
    run(); // warm caches before timing

    // Min-of-trials on both sides to shake off scheduler noise (1-core CI).
    let trial = |on: bool| {
        spitfire_obs::set_enabled(on);
        if on {
            spitfire_obs::registry().reset_histograms();
        }
        let d = (0..3).map(|_| run()).min().unwrap();
        spitfire_obs::set_enabled(false);
        d
    };
    let off = trial(false);
    let on = trial(true);
    let overhead = on.as_secs_f64() / off.as_secs_f64() - 1.0;
    println!(
        "obs_overhead/dram_hit_fetch: disabled {:.0} ns/op, enabled {:.0} ns/op ({:+.2}%)",
        off.as_nanos() as f64 / f64::from(iters),
        on.as_nanos() as f64 / f64::from(iters),
        overhead * 100.0
    );
    assert!(
        overhead < 0.05,
        "obs recorder overhead {:.2}% exceeds the 5% budget",
        overhead * 100.0
    );
}

fn bench_txn(c: &mut Criterion) {
    use spitfire_txn::{Database, DbConfig};
    let db = Database::create(bm(256, 512), DbConfig::default()).unwrap();
    db.create_table(1, 100).unwrap();
    {
        let mut t = db.begin();
        for k in 0..5000u64 {
            db.insert(&mut t, 1, k, &[7u8; 100]).unwrap();
        }
        db.commit(&mut t).unwrap();
    }
    let mut g = c.benchmark_group("txn");
    let mut k = 0u64;
    g.bench_function("read_txn", |b| {
        b.iter(|| {
            k = (k + 2719) % 5000;
            let t = db.begin();
            db.read(&t, 1, k).unwrap()
        })
    });
    g.bench_function("update_txn", |b| {
        b.iter_batched(
            || {
                k = (k + 2719) % 5000;
                k
            },
            |key| {
                let mut t = db.begin();
                db.update(&mut t, 1, key, &[9u8; 100]).unwrap();
                db.commit(&mut t).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bm_fetch, bench_sync_primitives, bench_policy, bench_btree, bench_wal, bench_zipf, bench_obs, bench_txn
}
criterion_main!(benches);
