//! Tests for version-chain vacuum and the background flusher.

use std::sync::Arc;
use std::time::Duration;

use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::TimeScale;
use spitfire_txn::{BackgroundFlusher, Database, DbConfig, TxnError};

const PAGE: usize = 1024;
const T: u32 = 1;
const TUPLE: usize = 100;

fn database() -> Database {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(64 * PAGE)
        .nvm_capacity(256 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let db = Database::create(
        Arc::new(BufferManager::new(config).unwrap()),
        DbConfig::default(),
    )
    .unwrap();
    db.create_table(T, TUPLE).unwrap();
    db
}

fn write(db: &Database, key: u64, b: u8) {
    let mut t = db.begin();
    let payload = vec![b; TUPLE];
    match db.update(&mut t, T, key, &payload) {
        Ok(()) => {}
        Err(TxnError::NotFound) => db.insert(&mut t, T, key, &payload).unwrap(),
        Err(e) => panic!("{e}"),
    }
    db.commit(&mut t).unwrap();
}

#[test]
fn vacuum_frees_superseded_versions() {
    let db = database();
    // 20 keys, each updated 10 times: 200 versions, 180 garbage.
    for round in 0..10u8 {
        for key in 0..20u64 {
            write(&db, key, round);
        }
    }
    let stats = db.vacuum().unwrap();
    assert_eq!(stats.chains, 20);
    assert_eq!(stats.freed, 180, "every superseded version is unreachable");
    // Data is intact and chains still serve reads.
    let t = db.begin();
    for key in 0..20u64 {
        assert_eq!(db.read(&t, T, key).unwrap(), vec![9u8; TUPLE]);
    }
    // A second vacuum finds nothing.
    assert_eq!(db.vacuum().unwrap().freed, 0);
}

#[test]
fn vacuum_respects_active_readers() {
    let db = database();
    write(&db, 1, 10);
    // A long-running reader pins the old version.
    let old_reader = db.begin();
    write(&db, 1, 20);
    write(&db, 1, 30);
    let stats = db.vacuum().unwrap();
    // Versions the old reader may still need survive: only chain segments
    // older than the watermark (the reader's ts) are freed — here the
    // version with value 10 is the newest committed before the reader, so
    // nothing below it exists and nothing newer may be freed.
    assert_eq!(db.read(&old_reader, T, 1).unwrap(), vec![10u8; TUPLE]);
    assert!(
        stats.freed == 0,
        "no version visible to the reader may be freed"
    );
    drop(old_reader);
    // Once the reader is gone (transactions auto-retire only on
    // commit/abort, so finish it properly in a fresh handle).
    let mut t = db.begin();
    db.commit(&mut t).unwrap();
}

#[test]
fn vacuum_recycles_slots_for_new_inserts() {
    let db = database();
    for round in 0..5u8 {
        write(&db, 7, round);
    }
    let before = db.vacuum().unwrap();
    assert_eq!(before.freed, 4);
    // New writes reuse the freed slots instead of growing the table.
    for round in 0..4u8 {
        write(&db, 8 + round as u64, 0xAA);
    }
    let t = db.begin();
    assert_eq!(db.read(&t, T, 7).unwrap(), vec![4u8; TUPLE]);
    for k in 8..12u64 {
        assert_eq!(db.read(&t, T, k).unwrap(), vec![0xAA; TUPLE]);
    }
}

#[test]
fn vacuum_concurrent_with_writers_is_safe() {
    let db = Arc::new(database());
    {
        let mut t = db.begin();
        for key in 0..32u64 {
            db.insert(&mut t, T, key, &[0u8; TUPLE]).unwrap();
        }
        db.commit(&mut t).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..2u64)
        .map(|w| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 0u8;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for key in (w * 16)..(w * 16 + 16) {
                        write(&db, key, round);
                    }
                    round = round.wrapping_add(1);
                }
            })
        })
        .collect();
    for _ in 0..20 {
        db.vacuum().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
    // Everything still readable.
    let t = db.begin();
    for key in 0..32u64 {
        assert!(
            db.read(&t, T, key).is_ok(),
            "key {key} lost during concurrent vacuum"
        );
    }
}

#[test]
fn background_flusher_cleans_dirty_pages() {
    let db = Arc::new(database());
    {
        let mut t = db.begin();
        for key in 0..64u64 {
            db.insert(&mut t, T, key, &[1u8; TUPLE]).unwrap();
        }
        db.commit(&mut t).unwrap();
    }
    let flusher = BackgroundFlusher::start(Arc::clone(&db), Duration::from_millis(10));
    std::thread::sleep(Duration::from_millis(120));
    drop(flusher);
    // After the flusher ran, a manual flush finds little or nothing dirty.
    let remaining = db.buffer_manager().flush_all_dirty().unwrap();
    assert!(remaining <= 4, "flusher left {remaining} dirty pages");
}
