//! End-to-end tests for the transactional database: MVTO semantics,
//! commit durability, abort rollback, crash recovery.

use std::sync::Arc;

use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_txn::{Database, DbConfig, TxnError};

const PAGE: usize = 1024;
const T: u32 = 1;
const TUPLE: usize = 100;

fn database() -> Database {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(64 * PAGE)
        .nvm_capacity(256 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = Arc::new(BufferManager::new(config).unwrap());
    let db = Database::create(
        bm,
        DbConfig {
            log_tracking: PersistenceTracking::Full,
            ..DbConfig::default()
        },
    )
    .unwrap();
    db.create_table(T, TUPLE).unwrap();
    db
}

fn tuple(b: u8) -> Vec<u8> {
    vec![b; TUPLE]
}

#[test]
fn insert_commit_read() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 1, &tuple(0xAA)).unwrap();
    db.insert(&mut t1, T, 2, &tuple(0xBB)).unwrap();
    // Own writes visible before commit.
    assert_eq!(db.read(&t1, T, 1).unwrap(), tuple(0xAA));
    db.commit(&mut t1).unwrap();

    let t2 = db.begin();
    assert_eq!(db.read(&t2, T, 1).unwrap(), tuple(0xAA));
    assert_eq!(db.read(&t2, T, 2).unwrap(), tuple(0xBB));
    assert_eq!(db.read(&t2, T, 3).unwrap_err(), TxnError::NotFound);
}

#[test]
fn uncommitted_writes_invisible_to_others() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 1, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();

    let mut t2 = db.begin();
    db.update(&mut t2, T, 1, &tuple(2)).unwrap();
    // A later reader sees the old committed version, not t2's pending one.
    let t3 = db.begin();
    assert_eq!(db.read(&t3, T, 1).unwrap(), tuple(1));
    db.commit(&mut t2).unwrap_err(); // t3 (later ts) read the old version
                                     // After t2's failed commit (conflict -> rollback), value stays 1.
    let t4 = db.begin();
    assert_eq!(db.read(&t4, T, 1).unwrap(), tuple(1));
}

#[test]
fn update_chain_visibility_by_timestamp() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 5, &tuple(10)).unwrap();
    db.commit(&mut t1).unwrap();

    // A long-running reader that started before the update.
    let old_reader = db.begin();

    let mut t2 = db.begin();
    db.update(&mut t2, T, 5, &tuple(20)).unwrap();
    db.commit(&mut t2).unwrap();

    // The old reader still sees the first version (snapshot isolation via
    // timestamps); a fresh reader sees the new one.
    assert_eq!(db.read(&old_reader, T, 5).unwrap(), tuple(10));
    let fresh = db.begin();
    assert_eq!(db.read(&fresh, T, 5).unwrap(), tuple(20));
}

#[test]
fn write_write_conflict_aborts_second_writer() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 9, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();

    let mut t2 = db.begin();
    let mut t3 = db.begin();
    db.update(&mut t2, T, 9, &tuple(2)).unwrap();
    // t3 hits t2's uncommitted marker.
    assert_eq!(
        db.update(&mut t3, T, 9, &tuple(3)).unwrap_err(),
        TxnError::Conflict
    );
    db.abort(&mut t3).unwrap();
    db.commit(&mut t2).unwrap();
    let t4 = db.begin();
    assert_eq!(db.read(&t4, T, 9).unwrap(), tuple(2));
}

#[test]
fn stale_writer_rejected_by_read_timestamp() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 3, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();

    let mut old_writer = db.begin(); // earlier timestamp
    let newer_reader = db.begin(); // later timestamp
    assert_eq!(db.read(&newer_reader, T, 3).unwrap(), tuple(1));
    // The version was read at a later timestamp; the older writer cannot
    // supersede it without violating timestamp order.
    assert_eq!(
        db.update(&mut old_writer, T, 3, &tuple(2)).unwrap_err(),
        TxnError::Conflict
    );
    db.abort(&mut old_writer).unwrap();
}

#[test]
fn abort_rolls_back_inserts_and_updates() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 1, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();

    let mut t2 = db.begin();
    db.update(&mut t2, T, 1, &tuple(99)).unwrap();
    db.insert(&mut t2, T, 2, &tuple(98)).unwrap();
    db.abort(&mut t2).unwrap();

    let t3 = db.begin();
    assert_eq!(db.read(&t3, T, 1).unwrap(), tuple(1));
    assert_eq!(db.read(&t3, T, 2).unwrap_err(), TxnError::NotFound);
    // The key can be re-inserted after the abort.
    let mut t4 = db.begin();
    db.insert(&mut t4, T, 2, &tuple(50)).unwrap();
    db.commit(&mut t4).unwrap();
}

#[test]
fn duplicate_insert_rejected() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 7, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();
    let mut t2 = db.begin();
    assert_eq!(
        db.insert(&mut t2, T, 7, &tuple(2)).unwrap_err(),
        TxnError::Duplicate
    );
    db.abort(&mut t2).unwrap();
}

#[test]
fn finished_transactions_are_inert() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 1, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();
    assert_eq!(
        db.commit(&mut t1).unwrap_err(),
        TxnError::InactiveTransaction
    );
    assert_eq!(
        db.read(&t1, T, 1).unwrap_err(),
        TxnError::InactiveTransaction
    );
    let mut t2 = db.begin();
    assert_eq!(
        db.update(&mut t1, T, 1, &tuple(2)).unwrap_err(),
        TxnError::InactiveTransaction
    );
    db.abort(&mut t2).unwrap();
    assert_eq!(
        db.abort(&mut t2).unwrap_err(),
        TxnError::InactiveTransaction
    );
}

#[test]
fn scan_returns_visible_committed_tuples() {
    let db = database();
    let mut t1 = db.begin();
    for k in (10..40).step_by(3) {
        db.insert(&mut t1, T, k, &tuple(k as u8)).unwrap();
    }
    db.commit(&mut t1).unwrap();
    // An uncommitted insert must not appear in others' scans.
    let mut t2 = db.begin();
    db.insert(&mut t2, T, 11, &tuple(0xEE)).unwrap();

    let t3 = db.begin();
    let hits = db.scan(&t3, T, 10, 5).unwrap();
    assert_eq!(
        hits.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        vec![10, 13, 16, 19, 22]
    );
    assert_eq!(hits[0].1, tuple(10));
    db.abort(&mut t2).unwrap();
}

#[test]
fn committed_transactions_survive_crash() {
    let db = database();
    let mut t1 = db.begin();
    for k in 0..20u64 {
        db.insert(&mut t1, T, k, &tuple(k as u8)).unwrap();
    }
    db.commit(&mut t1).unwrap();
    let mut t2 = db.begin();
    db.update(&mut t2, T, 3, &tuple(0xC3)).unwrap();
    db.commit(&mut t2).unwrap();

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.committed, 2);
    assert_eq!(stats.losers, 0);
    assert_eq!(stats.redone, 21);

    let t = db.begin();
    for k in 0..20u64 {
        let want = if k == 3 { tuple(0xC3) } else { tuple(k as u8) };
        assert_eq!(db.read(&t, T, k).unwrap(), want, "key {k}");
    }
}

#[test]
fn uncommitted_transactions_are_undone_by_recovery() {
    let db = database();
    let mut t1 = db.begin();
    db.insert(&mut t1, T, 1, &tuple(1)).unwrap();
    db.commit(&mut t1).unwrap();

    // In-flight at crash time: never committed.
    let mut t2 = db.begin();
    db.update(&mut t2, T, 1, &tuple(0xBA)).unwrap();
    db.insert(&mut t2, T, 2, &tuple(0xBB)).unwrap();

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.committed, 1);
    assert_eq!(stats.losers, 1);
    assert_eq!(stats.undone, 2);

    let t = db.begin();
    assert_eq!(
        db.read(&t, T, 1).unwrap(),
        tuple(1),
        "loser update rolled back"
    );
    assert_eq!(
        db.read(&t, T, 2).unwrap_err(),
        TxnError::NotFound,
        "loser insert gone"
    );
}

#[test]
fn recovery_after_checkpoint_replays_only_the_tail() {
    let db = database();
    let mut t1 = db.begin();
    for k in 0..10u64 {
        db.insert(&mut t1, T, k, &tuple(k as u8)).unwrap();
    }
    db.commit(&mut t1).unwrap();
    db.checkpoint().unwrap();

    let mut t2 = db.begin();
    db.update(&mut t2, T, 5, &tuple(0x55)).unwrap();
    db.commit(&mut t2).unwrap();

    db.simulate_crash();
    let stats = db.recover().unwrap();
    // Only the post-checkpoint transaction is in the log.
    assert_eq!(stats.committed, 1);
    assert_eq!(stats.redone, 1);

    let t = db.begin();
    for k in 0..10u64 {
        let want = if k == 5 { tuple(0x55) } else { tuple(k as u8) };
        assert_eq!(db.read(&t, T, k).unwrap(), want, "key {k}");
    }
}

#[test]
fn repeated_crash_recover_cycles_are_stable() {
    let db = database();
    let mut expected: Vec<(u64, u8)> = Vec::new();
    for round in 0..4u8 {
        let mut t = db.begin();
        let k = round as u64;
        db.insert(&mut t, T, 100 + k, &tuple(round)).unwrap();
        db.commit(&mut t).unwrap();
        expected.push((100 + k, round));
        db.simulate_crash();
        db.recover().unwrap();
        let t = db.begin();
        for (key, b) in &expected {
            assert_eq!(
                db.read(&t, T, *key).unwrap(),
                tuple(*b),
                "round {round} key {key}"
            );
        }
    }
}

#[test]
fn concurrent_transfer_invariant() {
    // Bank transfers between 8 accounts: total balance is conserved under
    // concurrent conflicting transactions.
    let db = Arc::new(database());
    const ACCOUNTS: u64 = 8;
    const INITIAL: u64 = 1000;
    {
        let mut t = db.begin();
        for a in 0..ACCOUNTS {
            let mut payload = tuple(0);
            payload[..8].copy_from_slice(&INITIAL.to_le_bytes());
            db.insert(&mut t, T, a, &payload).unwrap();
        }
        db.commit(&mut t).unwrap();
    }
    let handles: Vec<_> = (0..4u64)
        .map(|tid| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut committed = 0u64;
                let mut x = tid + 1;
                for _ in 0..200 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = x % ACCOUNTS;
                    let to = (x >> 8) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let mut t = db.begin();
                    let result = (|| -> Result<(), TxnError> {
                        let src = db.read(&t, T, from)?;
                        let dst = db.read(&t, T, to)?;
                        let mut s = u64::from_le_bytes(src[..8].try_into().unwrap());
                        let mut d = u64::from_le_bytes(dst[..8].try_into().unwrap());
                        if s == 0 {
                            return Ok(());
                        }
                        s -= 1;
                        d += 1;
                        let mut sp = tuple(0);
                        sp[..8].copy_from_slice(&s.to_le_bytes());
                        let mut dp = tuple(0);
                        dp[..8].copy_from_slice(&d.to_le_bytes());
                        db.update(&mut t, T, from, &sp)?;
                        db.update(&mut t, T, to, &dp)?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {
                            if db.commit(&mut t).is_ok() {
                                committed += 1;
                            }
                        }
                        Err(_) => {
                            let _ = db.abort(&mut t);
                        }
                    }
                }
                committed
            })
        })
        .collect();
    let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 0, "some transfers must commit");
    // Conservation check.
    let t = db.begin();
    let total: u64 = (0..ACCOUNTS)
        .map(|a| {
            let p = db.read(&t, T, a).unwrap();
            u64::from_le_bytes(p[..8].try_into().unwrap())
        })
        .sum();
    assert_eq!(total, ACCOUNTS * INITIAL, "balance must be conserved");
}
