//! Instant-restart tests: incremental checkpoints, fenced WAL
//! truncation, snapshot recovery, generation fallback on corruption, and
//! the quiescence contract of `Database::checkpoint`.

use std::sync::Arc;

use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{
    FaultInjector, FaultKind, FaultPlan, FaultRule, PersistenceTracking, TimeScale, Trigger,
};
use spitfire_txn::{Database, DbConfig, SnapshotConfig, TxnError};

const PAGE: usize = 1024;
const T: u32 = 1;
const TUPLE: usize = 100;

fn database() -> Arc<Database> {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(64 * PAGE)
        .nvm_capacity(256 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = Arc::new(BufferManager::new(config).unwrap());
    let db = Database::create(
        bm,
        DbConfig {
            log_tracking: PersistenceTracking::Full,
            ..DbConfig::default()
        },
    )
    .unwrap();
    db.create_table(T, TUPLE).unwrap();
    Arc::new(db)
}

fn snap_config() -> SnapshotConfig {
    SnapshotConfig {
        wal_threshold_bytes: 16 * 1024,
        full_every: 4,
        ..SnapshotConfig::default()
    }
}

fn tuple(b: u8) -> Vec<u8> {
    vec![b; TUPLE]
}

/// Commit one transaction writing `(key, byte)` pairs.
fn write_all(db: &Database, pairs: &[(u64, u8)]) {
    let mut txn = db.begin();
    for &(k, b) in pairs {
        match db.update(&mut txn, T, k, &tuple(b)) {
            Err(TxnError::NotFound) => db.insert(&mut txn, T, k, &tuple(b)).unwrap(),
            other => other.unwrap(),
        }
    }
    db.commit(&mut txn).unwrap();
}

fn assert_contents(db: &Database, model: &std::collections::HashMap<u64, u8>, keys: u64) {
    let mut txn = db.begin();
    for k in 0..keys {
        match model.get(&k) {
            Some(&b) => assert_eq!(db.read(&txn, T, k).unwrap(), tuple(b), "key {k}"),
            None => assert_eq!(db.read(&txn, T, k).unwrap_err(), TxnError::NotFound),
        }
    }
    // Retire the read-only transaction so later checkpoints can quiesce.
    db.commit(&mut txn).unwrap();
}

#[test]
fn snapshot_recovery_restores_committed_state() {
    let db = database();
    db.enable_snapshots(snap_config());
    let mut model = std::collections::HashMap::new();

    write_all(&db, &(0..50).map(|k| (k, k as u8)).collect::<Vec<_>>());
    (0..50u64).for_each(|k| {
        model.insert(k, k as u8);
    });
    let stats = db.checkpoint().unwrap();
    assert_eq!(stats.generation, 1);
    assert!(stats.full);

    // Post-checkpoint tail: updates and fresh inserts.
    write_all(&db, &[(3, 0xA3), (7, 0xA7), (60, 0x60)]);
    model.insert(3, 0xA3);
    model.insert(7, 0xA7);
    model.insert(60, 0x60);

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.snapshot_generation, 1, "instant-restart path taken");
    // The full generation is SSD-backed: its pages were flushed to the
    // main SSD at checkpoint time, so recovery installs no images at all.
    assert_eq!(stats.snapshot_pages, 0, "full generations install nothing");
    assert_eq!(stats.committed, 1, "only the tail transaction replays");
    assert_contents(&db, &model, 64);

    // The database stays fully usable after an instant restart.
    write_all(&db, &[(3, 0x33), (99, 0x99)]);
    model.insert(3, 0x33);
    model.insert(99, 0x99);
    assert_contents(&db, &model, 100);
}

#[test]
fn incremental_generations_capture_only_dirty_pages() {
    let db = database();
    db.enable_snapshots(snap_config());
    let mut model = std::collections::HashMap::new();

    write_all(&db, &(0..60).map(|k| (k, k as u8)).collect::<Vec<_>>());
    (0..60u64).for_each(|k| {
        model.insert(k, k as u8);
    });
    let full = db.checkpoint().unwrap();
    assert!(full.full);

    // Touch a handful of keys; the delta must be much smaller.
    write_all(&db, &[(1, 0xB1), (2, 0xB2)]);
    model.insert(1, 0xB1);
    model.insert(2, 0xB2);
    let delta = db.checkpoint().unwrap();
    assert_eq!(delta.generation, 2);
    assert!(!delta.full);
    assert!(
        delta.pages < full.pages / 2,
        "delta captured {} pages, full captured {}",
        delta.pages,
        full.pages
    );

    write_all(&db, &[(5, 0xC5)]);
    model.insert(5, 0xC5);

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.snapshot_generation, 2);
    assert_contents(&db, &model, 64);
}

#[test]
fn checkpoints_bound_the_wal() {
    let db = database();
    db.enable_snapshots(snap_config());
    write_all(&db, &(0..40).map(|k| (k, 1)).collect::<Vec<_>>());
    for round in 0..6u8 {
        write_all(&db, &(0..40).map(|k| (k, round)).collect::<Vec<_>>());
        db.checkpoint().unwrap();
    }
    // Each install truncates to the previous fence: the live log holds at
    // most the last two checkpoint intervals, not six rounds of history.
    let one_round = 40 * (TUPLE as u64 + 64); // generous per-record bound
    assert!(
        db.wal().log_bytes() < 3 * one_round,
        "live WAL {} bytes did not shrink",
        db.wal().log_bytes()
    );
}

#[test]
fn corrupt_newest_generation_falls_back_one() {
    let db = database();
    let engine = db.enable_snapshots(snap_config());
    let mut model = std::collections::HashMap::new();

    write_all(&db, &(0..30).map(|k| (k, k as u8)).collect::<Vec<_>>());
    (0..30u64).for_each(|k| {
        model.insert(k, k as u8);
    });
    db.checkpoint().unwrap();

    // Generation 2 supersedes key 9 — then rots on disk.
    write_all(&db, &[(9, 0xF9)]);
    model.insert(9, 0xF9);
    db.checkpoint().unwrap();
    let g2 = engine.store().entry(2).unwrap();
    let garbage = vec![0xEEu8; PAGE + 48];
    engine
        .store()
        .device()
        .write_page(g2.start, &garbage)
        .unwrap();
    engine.store().device().sync().unwrap();

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(
        stats.snapshot_generation, 1,
        "fell back past the corrupt generation"
    );
    // Generation 1's fence predates the key-9 update, and the WAL was
    // only truncated to generation 1's fence — the tail still carries it.
    assert_contents(&db, &model, 32);
}

#[test]
fn checkpoint_with_transaction_in_flight_is_retryable() {
    let db = database();
    db.enable_snapshots(SnapshotConfig {
        quiesce_wait: std::time::Duration::from_millis(10),
        ..snap_config()
    });
    write_all(&db, &[(1, 1)]);

    let mut txn = db.begin();
    db.update(&mut txn, T, 1, &tuple(2)).unwrap();
    let err = db.checkpoint().unwrap_err();
    assert_eq!(err, TxnError::CheckpointContended);
    assert!(err.is_retryable());

    db.commit(&mut txn).unwrap();
    assert_eq!(db.checkpoint().unwrap().generation, 1);
}

#[test]
fn legacy_checkpoint_also_requires_quiescence() {
    let db = database(); // no snapshot engine attached
    write_all(&db, &[(1, 1)]);
    let mut txn = db.begin();
    db.update(&mut txn, T, 1, &tuple(2)).unwrap();
    assert_eq!(db.checkpoint().unwrap_err(), TxnError::CheckpointContended);
    db.abort(&mut txn).unwrap();
    assert_eq!(db.checkpoint().unwrap().generation, 0);
}

#[test]
fn failed_checkpoint_installs_nothing_and_recovers_from_prior() {
    let db = database();
    let engine = db.enable_snapshots(snap_config());
    let mut model = std::collections::HashMap::new();

    write_all(&db, &(0..30).map(|k| (k, k as u8)).collect::<Vec<_>>());
    (0..30u64).for_each(|k| {
        model.insert(k, k as u8);
    });
    db.checkpoint().unwrap();

    write_all(&db, &[(4, 0xD4)]);
    model.insert(4, 0xD4);

    // Every snapshot-store write fails fatally: the checkpoint errors and
    // the generation is never installed.
    let plan = FaultPlan::new(7).rule(FaultRule::any(Trigger::Always, FaultKind::Fatal));
    db.set_snapshot_fault_injector(Some(Arc::new(FaultInjector::new(plan))));
    assert!(db.checkpoint().is_err());
    assert_eq!(engine.generation(), 1, "failed generation not installed");
    db.set_snapshot_fault_injector(None);

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.snapshot_generation, 1);
    assert_contents(&db, &model, 32);

    // The drained dirty set was merged back / recovery re-bases: a later
    // checkpoint succeeds and captures the post-crash state.
    write_all(&db, &[(5, 0xD5)]);
    model.insert(5, 0xD5);
    let stats = db.checkpoint().unwrap();
    assert!(stats.full, "first post-recovery generation re-bases");
    db.simulate_crash();
    db.recover().unwrap();
    assert_contents(&db, &model, 32);
}

#[test]
fn recovery_without_any_generation_falls_back_to_full_replay() {
    let db = database();
    db.enable_snapshots(snap_config());
    let mut model = std::collections::HashMap::new();
    write_all(&db, &(0..20).map(|k| (k, k as u8)).collect::<Vec<_>>());
    (0..20u64).for_each(|k| {
        model.insert(k, k as u8);
    });
    // No checkpoint ever ran.
    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.snapshot_generation, 0, "legacy path");
    assert_contents(&db, &model, 24);
}

#[test]
fn loser_tail_transactions_are_undone_on_instant_restart() {
    let db = database();
    db.enable_snapshots(snap_config());
    let mut model = std::collections::HashMap::new();
    write_all(&db, &(0..10).map(|k| (k, k as u8)).collect::<Vec<_>>());
    (0..10u64).for_each(|k| {
        model.insert(k, k as u8);
    });
    db.checkpoint().unwrap();

    // In-flight at crash: updated key 2, inserted key 30 — never
    // committed.
    let mut txn = db.begin();
    db.update(&mut txn, T, 2, &tuple(0xEE)).unwrap();
    db.insert(&mut txn, T, 30, &tuple(0xEF)).unwrap();

    db.simulate_crash();
    let stats = db.recover().unwrap();
    assert_eq!(stats.snapshot_generation, 1);
    assert_eq!(stats.losers, 1);
    assert_contents(&db, &model, 32);
}
