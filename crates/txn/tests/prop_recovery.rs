//! Property test: crash recovery must preserve exactly the committed
//! prefix of work, for arbitrary transaction schedules and crash points.

use std::sync::Arc;

use proptest::prelude::*;
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::{PersistenceTracking, TimeScale};
use spitfire_txn::{Database, DbConfig, TxnError};

const PAGE: usize = 1024;
const T: u32 = 1;
const TUPLE: usize = 64;
const KEYS: u64 = 16;

/// One scripted transaction: a set of key writes, then commit or abort.
#[derive(Debug, Clone)]
struct ScriptedTxn {
    writes: Vec<(u64, u8)>,
    commit: bool,
}

fn txn_strategy() -> impl Strategy<Value = ScriptedTxn> {
    (
        proptest::collection::vec((0..KEYS, any::<u8>()), 1..5),
        prop::bool::weighted(0.8),
    )
        .prop_map(|(writes, commit)| ScriptedTxn { writes, commit })
}

fn database() -> Database {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(16 * PAGE)
        .nvm_capacity(128 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let db = Database::create(
        Arc::new(BufferManager::new(config).unwrap()),
        DbConfig {
            log_tracking: PersistenceTracking::Full,
            ..DbConfig::default()
        },
    )
    .unwrap();
    db.create_table(T, TUPLE).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn committed_prefix_survives_any_crash_point(
        txns in proptest::collection::vec(txn_strategy(), 1..20),
        crash_after in 0..20usize,
        checkpoint_at in proptest::option::of(0..20usize),
        in_flight_writes in proptest::collection::vec((0..KEYS, any::<u8>()), 0..4),
    ) {
        let db = database();
        // Model of committed state only.
        let mut model: std::collections::HashMap<u64, u8> = Default::default();

        let crash_after = crash_after.min(txns.len());
        for (i, script) in txns.iter().take(crash_after).enumerate() {
            if checkpoint_at == Some(i) {
                db.checkpoint().unwrap();
            }
            let mut txn = db.begin();
            let mut applied = Vec::new();
            let mut failed = false;
            for &(key, byte) in &script.writes {
                let payload = vec![byte; TUPLE];
                let result = match db.update(&mut txn, T, key, &payload) {
                    Err(TxnError::NotFound) => db.insert(&mut txn, T, key, &payload),
                    other => other,
                };
                match result {
                    Ok(()) => applied.push((key, byte)),
                    Err(TxnError::Conflict | TxnError::Duplicate) => {
                        failed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            if failed || !script.commit {
                db.abort(&mut txn).unwrap();
            } else if db.commit(&mut txn).is_ok() {
                for (key, byte) in applied {
                    model.insert(key, byte);
                }
            }
        }

        // Leave one transaction in flight across the crash.
        let mut dangling = db.begin();
        for &(key, byte) in &in_flight_writes {
            let payload = vec![byte; TUPLE];
            let _ = match db.update(&mut dangling, T, key, &payload) {
                Err(TxnError::NotFound) => db.insert(&mut dangling, T, key, &payload),
                other => other,
            };
        }

        db.simulate_crash();
        db.recover().unwrap();

        let t = db.begin();
        for key in 0..KEYS {
            match model.get(&key) {
                Some(&byte) => {
                    let got = db.read(&t, T, key).unwrap();
                    prop_assert_eq!(
                        got[0], byte,
                        "key {} has {} but committed value was {}", key, got[0], byte
                    );
                    prop_assert!(got.iter().all(|&b| b == byte));
                }
                None => {
                    prop_assert!(
                        matches!(db.read(&t, T, key), Err(TxnError::NotFound)),
                        "key {} should not exist", key
                    );
                }
            }
        }
    }

    /// Crash-point granularity of individual writes: the crash lands
    /// after the `crash_write`-th write *inside* a transaction, so the
    /// interrupted transaction must recover as a loser — none of its
    /// writes may survive, while every earlier committed transaction
    /// must survive in full.
    #[test]
    fn mid_transaction_crash_makes_the_txn_a_loser(
        txns in proptest::collection::vec(txn_strategy(), 1..12),
        crash_txn in 0..12usize,
        crash_write in 0..5usize,
    ) {
        let db = database();
        let mut model: std::collections::HashMap<u64, u8> = Default::default();

        let crash_txn = crash_txn.min(txns.len() - 1);
        'outer: for (i, script) in txns.iter().enumerate() {
            let mut txn = db.begin();
            let mut applied = Vec::new();
            let mut failed = false;
            for (j, &(key, byte)) in script.writes.iter().enumerate() {
                if i == crash_txn && j == crash_write.min(script.writes.len() - 1) {
                    // Crash mid-transaction: txn never reaches commit.
                    break 'outer;
                }
                let payload = vec![byte; TUPLE];
                let result = match db.update(&mut txn, T, key, &payload) {
                    Err(TxnError::NotFound) => db.insert(&mut txn, T, key, &payload),
                    other => other,
                };
                match result {
                    Ok(()) => applied.push((key, byte)),
                    Err(TxnError::Conflict | TxnError::Duplicate) => {
                        failed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            if failed || !script.commit {
                db.abort(&mut txn).unwrap();
            } else if db.commit(&mut txn).is_ok() {
                for (key, byte) in applied {
                    model.insert(key, byte);
                }
            }
            if i == crash_txn {
                break;
            }
        }

        db.simulate_crash();
        db.recover().unwrap();

        let t = db.begin();
        for key in 0..KEYS {
            match model.get(&key) {
                Some(&byte) => {
                    let got = db.read(&t, T, key).unwrap();
                    prop_assert!(
                        got.iter().all(|&b| b == byte),
                        "key {} recovered {} but committed value was {}", key, got[0], byte
                    );
                }
                None => {
                    prop_assert!(
                        matches!(db.read(&t, T, key), Err(TxnError::NotFound)),
                        "key {} resurrected from an uncommitted write", key
                    );
                }
            }
        }
    }
}
