//! Error type for transaction-layer operations.

use spitfire_core::BufferError;
use spitfire_index::IndexError;

/// Errors surfaced by the transaction layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TxnError {
    /// The buffer manager failed.
    Buffer(BufferError),
    /// The index failed.
    Index(IndexError),
    /// MVTO conflict: the transaction must abort and retry (a newer
    /// version exists, a newer reader was recorded, or a concurrent
    /// uncommitted writer holds the key).
    Conflict,
    /// The key was not visible to this transaction.
    NotFound,
    /// A key already exists (insert of a duplicate).
    Duplicate,
    /// The transaction was already finished (commit/abort called twice).
    InactiveTransaction,
    /// A transaction is already open on this session (nested `BEGIN`).
    TransactionOpen,
    /// A log record exceeds the NVM log buffer capacity.
    LogRecordTooLarge(usize),
    /// A payload does not match the table's tuple size.
    BadTupleSize {
        /// Expected tuple size.
        expected: usize,
        /// Provided payload length.
        got: usize,
    },
    /// Unknown table id.
    UnknownTable(u32),
    /// A checkpoint could not reach a quiescent point: transactions were
    /// still in flight when the bounded wait expired. Retry once they
    /// finish (same contract as [`TxnError::TransactionOpen`] on a
    /// session: the caller backs off instead of corrupting state).
    CheckpointContended,
    /// The snapshot store failed.
    Snapshot(spitfire_snapshot::SnapshotError),
}

impl TxnError {
    /// Whether retrying the failed operation can plausibly succeed:
    /// MVTO conflicts (retry the transaction) and transient buffer/device
    /// faults. Same shape as [`BufferError::is_retryable`] and
    /// [`spitfire_device::DeviceError::is_retryable`], so callers never
    /// need to match variant names to decide.
    pub fn is_retryable(&self) -> bool {
        match self {
            TxnError::Conflict | TxnError::CheckpointContended => true,
            TxnError::Buffer(e) => e.is_retryable(),
            _ => false,
        }
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Buffer(e) => write!(f, "buffer error: {e}"),
            TxnError::Index(e) => write!(f, "index error: {e}"),
            TxnError::Conflict => write!(f, "MVTO conflict; abort and retry"),
            TxnError::NotFound => write!(f, "no visible version for key"),
            TxnError::Duplicate => write!(f, "key already exists"),
            TxnError::InactiveTransaction => write!(f, "transaction already finished"),
            TxnError::TransactionOpen => write!(f, "a transaction is already open"),
            TxnError::LogRecordTooLarge(n) => {
                write!(f, "log record of {n} bytes exceeds the NVM log buffer")
            }
            TxnError::BadTupleSize { expected, got } => {
                write!(
                    f,
                    "payload of {got} bytes does not match tuple size {expected}"
                )
            }
            TxnError::UnknownTable(t) => write!(f, "unknown table {t}"),
            TxnError::CheckpointContended => {
                write!(f, "checkpoint contended: transactions in flight; retry")
            }
            TxnError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TxnError::Buffer(e) => Some(e),
            TxnError::Index(e) => Some(e),
            TxnError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BufferError> for TxnError {
    fn from(e: BufferError) -> Self {
        TxnError::Buffer(e)
    }
}

impl From<spitfire_device::DeviceError> for TxnError {
    fn from(e: spitfire_device::DeviceError) -> Self {
        TxnError::Buffer(BufferError::Device(e))
    }
}

impl From<spitfire_snapshot::SnapshotError> for TxnError {
    fn from(e: spitfire_snapshot::SnapshotError) -> Self {
        TxnError::Snapshot(e)
    }
}

impl From<IndexError> for TxnError {
    fn from(e: IndexError) -> Self {
        TxnError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(TxnError::Conflict.to_string().contains("abort"));
        assert!(TxnError::BadTupleSize {
            expected: 8,
            got: 9
        }
        .to_string()
        .contains('9'));
        let e: TxnError = BufferError::UnknownPage(spitfire_core::PageId(1)).into();
        assert!(matches!(e, TxnError::Buffer(_)));
    }
}
