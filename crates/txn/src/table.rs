//! Versioned tuple tables over the buffer manager.
//!
//! A table stores fixed-size tuples in buffer-managed pages. Every tuple
//! *version* occupies one slot: a 40-byte MVTO header (begin timestamp,
//! end timestamp, read timestamp, previous-version record id, key)
//! followed by the payload. Versions are append-only; record ids (RIDs) are dense slot
//! numbers mapped to `(page, offset)` positions.
//!
//! Because version headers live **on pages**, MVTO metadata traffic flows
//! through the buffer manager and the storage hierarchy — this is why the
//! paper observes page writes even on read-only YCSB ("Spitfire updates
//! pages containing meta-data related to the MVTO protocol", §6.4).
//!
//! The table's page list is persisted in a chain of catalog pages so
//! recovery can rediscover the data pages.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spitfire_core::{BufferManager, PageId};

use crate::error::TxnError;
use crate::Result;

/// Bytes of MVTO header per version slot.
pub const VERSION_HEADER: usize = 40;

/// Record id sentinel: no previous version.
pub const NO_RID: u64 = u64::MAX;

/// MVTO version header stored at the head of each slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionHeader {
    /// Commit timestamp of the creating transaction, or a txn marker
    /// (`MARK` bit) while uncommitted, or `ABORTED`.
    pub begin: u64,
    /// Commit timestamp of the superseding transaction, a txn marker, or
    /// `INF` while current.
    pub end: u64,
    /// Largest transaction timestamp that read this version.
    pub read_ts: u64,
    /// Previous version's RID (`NO_RID` = none).
    pub prev: u64,
    /// The tuple's key (duplicated here so recovery can rebuild indexes
    /// from a table scan).
    pub key: u64,
}

impl VersionHeader {
    fn to_bytes(self) -> [u8; VERSION_HEADER] {
        let mut b = [0u8; VERSION_HEADER];
        b[0..8].copy_from_slice(&self.begin.to_le_bytes());
        b[8..16].copy_from_slice(&self.end.to_le_bytes());
        b[16..24].copy_from_slice(&self.read_ts.to_le_bytes());
        b[24..32].copy_from_slice(&self.prev.to_le_bytes());
        b[32..40].copy_from_slice(&self.key.to_le_bytes());
        b
    }

    fn from_bytes(b: &[u8; VERSION_HEADER]) -> Self {
        VersionHeader {
            begin: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            end: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            read_ts: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
            prev: u64::from_le_bytes(b[24..32].try_into().expect("8 bytes")),
            key: u64::from_le_bytes(b[32..40].try_into().expect("8 bytes")),
        }
    }
}

/// Catalog page layout: magic u64 | table u32 | tuple u32 | count u32 |
/// pad u32 | next u64 | page ids u64...
const CATALOG_MAGIC: u64 = 0x5350_4946_5441_424C; // "SPIFTABL"
const CATALOG_HEADER: usize = 32;

/// A versioned tuple table.
pub struct Table {
    bm: Arc<BufferManager>,
    /// Table id (stable across restarts).
    pub id: u32,
    /// Payload bytes per tuple.
    pub tuple_size: usize,
    slot_size: usize,
    slots_per_page: usize,
    /// Data pages in slot order.
    pages: RwLock<Vec<PageId>>,
    /// Catalog chain head (persisted); new page ids are appended here.
    catalog_head: PageId,
    next_slot: AtomicU64,
    /// Slots reclaimed by vacuum, reused before extending the table.
    free_slots: parking_lot::Mutex<Vec<u64>>,
}

impl Table {
    /// Create a new table, allocating its catalog head page.
    pub fn create(bm: Arc<BufferManager>, id: u32, tuple_size: usize) -> Result<Self> {
        let catalog_head = bm.allocate_page()?;
        let table = Table::with_layout(bm, id, tuple_size, catalog_head);
        table.write_catalog()?;
        Ok(table)
    }

    fn with_layout(
        bm: Arc<BufferManager>,
        id: u32,
        tuple_size: usize,
        catalog_head: PageId,
    ) -> Self {
        let slot_size = VERSION_HEADER + tuple_size;
        let slots_per_page = bm.page_size() / slot_size;
        assert!(slots_per_page > 0, "tuple larger than a page");
        Table {
            bm,
            id,
            tuple_size,
            slot_size,
            slots_per_page,
            pages: RwLock::new(Vec::new()),
            catalog_head,
            next_slot: AtomicU64::new(0),
            free_slots: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Reopen a table from its catalog chain (recovery). Scans data pages
    /// to restore the slot allocator (a used slot has a nonzero `begin`).
    pub fn open(
        bm: Arc<BufferManager>,
        id: u32,
        tuple_size: usize,
        catalog_head: PageId,
    ) -> Result<Self> {
        let table = Table::with_layout(bm, id, tuple_size, catalog_head);
        table.load_catalog()?;
        table.restore_slot_allocator()?;
        Ok(table)
    }

    /// Reopen a table with a known slot watermark (snapshot recovery).
    /// Skips the full-table allocator scan of [`Table::open`] — the
    /// manifest recorded `allocated_slots` at the checkpoint fence, and
    /// WAL-tail redo raises the watermark past it via
    /// [`Table::write_version`]'s `fetch_max`.
    pub fn open_with_slots(
        bm: Arc<BufferManager>,
        id: u32,
        tuple_size: usize,
        catalog_head: PageId,
        allocated_slots: u64,
    ) -> Result<Self> {
        let table = Table::with_layout(bm, id, tuple_size, catalog_head);
        table.load_catalog()?;
        table.next_slot.store(allocated_slots, Ordering::Release);
        Ok(table)
    }

    /// The catalog head page id (persist in the database root catalog).
    pub fn catalog_head(&self) -> PageId {
        self.catalog_head
    }

    /// Number of version slots per page.
    pub fn slots_per_page(&self) -> usize {
        self.slots_per_page
    }

    /// Number of slots allocated so far.
    pub fn allocated_slots(&self) -> u64 {
        self.next_slot.load(Ordering::Acquire)
    }

    /// Current data pages (snapshot).
    pub fn data_pages(&self) -> Vec<PageId> {
        self.pages.read().clone()
    }

    fn locate(&self, rid: u64) -> (usize, usize) {
        let page_idx = (rid / self.slots_per_page as u64) as usize;
        let offset = (rid % self.slots_per_page as u64) as usize * self.slot_size;
        (page_idx, offset)
    }

    fn page_for(&self, page_idx: usize) -> Result<PageId> {
        {
            let pages = self.pages.read();
            if let Some(pid) = pages.get(page_idx) {
                return Ok(*pid);
            }
        }
        // Grow the table (and the persistent catalog) up to page_idx.
        let mut pages = self.pages.write();
        while pages.len() <= page_idx {
            let pid = self.bm.allocate_page()?;
            pages.push(pid);
            self.append_to_catalog(pid)?;
        }
        Ok(pages[page_idx])
    }

    /// Reserve a fresh slot (recycled if available) and write a version
    /// into it. Returns the RID.
    pub fn insert_version(&self, header: VersionHeader, payload: &[u8]) -> Result<u64> {
        if payload.len() != self.tuple_size {
            return Err(TxnError::BadTupleSize {
                expected: self.tuple_size,
                got: payload.len(),
            });
        }
        let recycled = self.free_slots.lock().pop();
        let rid = recycled.unwrap_or_else(|| self.next_slot.fetch_add(1, Ordering::AcqRel));
        let (page_idx, offset) = self.locate(rid);
        let pid = self.page_for(page_idx)?;
        let guard = self.bm.fetch_write(pid)?;
        guard.write(offset, &header.to_bytes())?;
        guard.write(offset + VERSION_HEADER, payload)?;
        Ok(rid)
    }

    /// Read a version's header.
    pub fn read_header(&self, rid: u64) -> Result<VersionHeader> {
        let (page_idx, offset) = self.locate(rid);
        let pid = self.page_for(page_idx)?;
        let guard = self.bm.fetch_read(pid)?;
        let mut b = [0u8; VERSION_HEADER];
        guard.read(offset, &mut b)?;
        Ok(VersionHeader::from_bytes(&b))
    }

    /// Overwrite a version's header (commit stamping, abort marking,
    /// read-timestamp updates).
    pub fn write_header(&self, rid: u64, header: VersionHeader) -> Result<()> {
        let (page_idx, offset) = self.locate(rid);
        let pid = self.page_for(page_idx)?;
        let guard = self.bm.fetch_write(pid)?;
        guard.write(offset, &header.to_bytes())?;
        Ok(())
    }

    /// Read a version's payload into `buf` (must be `tuple_size` long).
    pub fn read_payload(&self, rid: u64, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.tuple_size {
            return Err(TxnError::BadTupleSize {
                expected: self.tuple_size,
                got: buf.len(),
            });
        }
        let (page_idx, offset) = self.locate(rid);
        let pid = self.page_for(page_idx)?;
        let guard = self.bm.fetch_read(pid)?;
        guard.read(offset + VERSION_HEADER, buf)?;
        Ok(())
    }

    /// Overwrite a version's payload in place (own re-update before
    /// commit, and redo during recovery).
    pub fn write_payload(&self, rid: u64, payload: &[u8]) -> Result<()> {
        if payload.len() != self.tuple_size {
            return Err(TxnError::BadTupleSize {
                expected: self.tuple_size,
                got: payload.len(),
            });
        }
        let (page_idx, offset) = self.locate(rid);
        let pid = self.page_for(page_idx)?;
        let guard = self.bm.fetch_write(pid)?;
        guard.write(offset + VERSION_HEADER, payload)?;
        Ok(())
    }

    /// Write a full version (header + payload) in one guard (redo).
    pub fn write_version(&self, rid: u64, header: VersionHeader, payload: &[u8]) -> Result<()> {
        if payload.len() != self.tuple_size {
            return Err(TxnError::BadTupleSize {
                expected: self.tuple_size,
                got: payload.len(),
            });
        }
        let (page_idx, offset) = self.locate(rid);
        let pid = self.page_for(page_idx)?;
        let guard = self.bm.fetch_write(pid)?;
        guard.write(offset, &header.to_bytes())?;
        guard.write(offset + VERSION_HEADER, payload)?;
        // Make sure the slot allocator never re-issues a redone RID.
        self.next_slot.fetch_max(rid + 1, Ordering::AcqRel);
        Ok(())
    }

    /// Return `rid` to the free list for reuse (vacuum). The caller must
    /// have already unlinked it from every version chain and marked its
    /// header invisible.
    pub fn recycle_slot(&self, rid: u64) {
        self.free_slots.lock().push(rid);
    }

    /// Number of slots currently awaiting reuse.
    pub fn recycled_slots(&self) -> usize {
        self.free_slots.lock().len()
    }

    // ---- catalog persistence -------------------------------------------

    fn write_catalog(&self) -> Result<()> {
        let guard = self.bm.fetch_write(self.catalog_head)?;
        let mut header = [0u8; CATALOG_HEADER];
        header[0..8].copy_from_slice(&CATALOG_MAGIC.to_le_bytes());
        header[8..12].copy_from_slice(&self.id.to_le_bytes());
        header[12..16].copy_from_slice(&(self.tuple_size as u32).to_le_bytes());
        header[16..20].copy_from_slice(&0u32.to_le_bytes());
        header[24..32].copy_from_slice(&NO_RID.to_le_bytes());
        guard.write(0, &header)?;
        drop(guard);
        self.bm.flush_page(self.catalog_head)?;
        Ok(())
    }

    fn catalog_capacity(&self) -> usize {
        (self.bm.page_size() - CATALOG_HEADER) / 8
    }

    /// Append a data page id to the catalog chain, growing it as needed.
    fn append_to_catalog(&self, pid: PageId) -> Result<()> {
        let cap = self.catalog_capacity();
        let mut cat = self.catalog_head;
        loop {
            let guard = self.bm.fetch_write(cat)?;
            let count = {
                let mut b = [0u8; 4];
                guard.read(16, &mut b)?;
                u32::from_le_bytes(b) as usize
            };
            if count < cap {
                guard.write_u64(CATALOG_HEADER + count * 8, pid.0)?;
                guard.write(16, &((count + 1) as u32).to_le_bytes())?;
                drop(guard);
                self.bm.flush_page(cat)?;
                return Ok(());
            }
            let next = guard.read_u64(24)?;
            if next != NO_RID {
                cat = PageId(next);
                continue;
            }
            // Chain a new catalog page.
            drop(guard);
            let new_cat = self.bm.allocate_page()?;
            {
                let g = self.bm.fetch_write(new_cat)?;
                let mut header = [0u8; CATALOG_HEADER];
                header[0..8].copy_from_slice(&CATALOG_MAGIC.to_le_bytes());
                header[8..12].copy_from_slice(&self.id.to_le_bytes());
                header[12..16].copy_from_slice(&(self.tuple_size as u32).to_le_bytes());
                header[24..32].copy_from_slice(&NO_RID.to_le_bytes());
                g.write(0, &header)?;
            }
            self.bm.flush_page(new_cat)?;
            let guard = self.bm.fetch_write(cat)?;
            guard.write_u64(24, new_cat.0)?;
            drop(guard);
            self.bm.flush_page(cat)?;
            cat = new_cat;
        }
    }

    /// Load the data page list from the catalog chain.
    fn load_catalog(&self) -> Result<()> {
        let mut pages = self.pages.write();
        pages.clear();
        let mut cat = self.catalog_head;
        loop {
            // Catalog references are durable, but a referenced page may
            // never have been synced to SSD before the crash (its durable
            // content is zeros). Raise the allocator floor so fetching it
            // cannot trip the unknown-page check.
            self.bm.admin().set_next_page_id(cat.0 + 1);
            let guard = self.bm.fetch_read(cat)?;
            let magic = guard.read_u64(0)?;
            if magic != CATALOG_MAGIC {
                return Err(TxnError::UnknownTable(self.id));
            }
            let count = {
                let mut b = [0u8; 4];
                guard.read(16, &mut b)?;
                u32::from_le_bytes(b) as usize
            };
            for i in 0..count.min(self.catalog_capacity()) {
                let pid = PageId(guard.read_u64(CATALOG_HEADER + i * 8)?);
                self.bm.admin().set_next_page_id(pid.0 + 1);
                pages.push(pid);
            }
            let next = guard.read_u64(24)?;
            if next == NO_RID {
                return Ok(());
            }
            cat = PageId(next);
        }
    }

    /// Find the highest used slot (nonzero `begin`) to restore the slot
    /// allocator after recovery.
    fn restore_slot_allocator(&self) -> Result<()> {
        let n_pages = self.pages.read().len();
        let mut max_used: Option<u64> = None;
        for page_idx in (0..n_pages).rev() {
            for slot in (0..self.slots_per_page).rev() {
                let rid = page_idx as u64 * self.slots_per_page as u64 + slot as u64;
                let hdr = self.read_header(rid)?;
                if hdr.begin != 0 {
                    max_used = Some(rid);
                    break;
                }
            }
            if max_used.is_some() {
                break;
            }
        }
        self.next_slot
            .store(max_used.map_or(0, |r| r + 1), Ordering::Release);
        Ok(())
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("tuple_size", &self.tuple_size)
            .field("slots", &self.allocated_slots())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitfire_core::BufferManagerConfig;
    use spitfire_device::TimeScale;

    fn bm() -> Arc<BufferManager> {
        let config = BufferManagerConfig::builder()
            .page_size(1024)
            .dram_capacity(32 * 1024)
            .nvm_capacity(64 * (1024 + 64))
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        Arc::new(BufferManager::new(config).unwrap())
    }

    fn hdr(begin: u64) -> VersionHeader {
        VersionHeader {
            begin,
            end: u64::MAX,
            read_ts: 0,
            prev: NO_RID,
            key: 7,
        }
    }

    #[test]
    fn header_bytes_round_trip() {
        let h = VersionHeader {
            begin: 1,
            end: 2,
            read_ts: 3,
            prev: 4,
            key: 5,
        };
        assert_eq!(VersionHeader::from_bytes(&h.to_bytes()), h);
    }

    #[test]
    fn insert_read_versions() {
        let t = Table::create(bm(), 1, 100).unwrap();
        assert_eq!(t.slots_per_page(), 1024 / 140);
        let r0 = t.insert_version(hdr(5), &[7u8; 100]).unwrap();
        let r1 = t.insert_version(hdr(6), &[8u8; 100]).unwrap();
        assert_eq!((r0, r1), (0, 1));
        assert_eq!(t.read_header(r0).unwrap().begin, 5);
        let mut buf = [0u8; 100];
        t.read_payload(r1, &mut buf).unwrap();
        assert_eq!(buf, [8u8; 100]);
    }

    #[test]
    fn payload_size_is_validated() {
        let t = Table::create(bm(), 1, 100).unwrap();
        assert!(matches!(
            t.insert_version(hdr(1), &[0u8; 99]),
            Err(TxnError::BadTupleSize {
                expected: 100,
                got: 99
            })
        ));
        let mut small = [0u8; 10];
        t.insert_version(hdr(1), &[0u8; 100]).unwrap();
        assert!(t.read_payload(0, &mut small).is_err());
    }

    #[test]
    fn table_grows_across_pages() {
        let t = Table::create(bm(), 2, 100).unwrap();
        let spp = t.slots_per_page() as u64;
        for i in 0..spp * 3 + 1 {
            let rid = t.insert_version(hdr(i + 1), &[i as u8; 100]).unwrap();
            assert_eq!(rid, i);
        }
        assert_eq!(t.data_pages().len(), 4);
        let mut buf = [0u8; 100];
        t.read_payload(spp * 2 + 1, &mut buf).unwrap();
        assert_eq!(buf[0], (spp * 2 + 1) as u8);
    }

    #[test]
    fn header_updates_persist() {
        let t = Table::create(bm(), 3, 64).unwrap();
        let rid = t.insert_version(hdr(1), &[0u8; 64]).unwrap();
        let mut h = t.read_header(rid).unwrap();
        h.read_ts = 99;
        h.end = 120;
        t.write_header(rid, h).unwrap();
        assert_eq!(t.read_header(rid).unwrap(), h);
    }

    #[test]
    fn reopen_restores_pages_and_slots() {
        let bm = bm();
        let t = Table::create(Arc::clone(&bm), 4, 100).unwrap();
        let spp = t.slots_per_page() as u64;
        for i in 0..spp + 3 {
            t.insert_version(hdr(i + 1), &[i as u8; 100]).unwrap();
        }
        let head = t.catalog_head();
        let next = t.allocated_slots();
        drop(t);
        let t2 = Table::open(bm, 4, 100, head).unwrap();
        assert_eq!(t2.allocated_slots(), next);
        assert_eq!(t2.data_pages().len(), 2);
        let mut buf = [0u8; 100];
        t2.read_payload(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 100]);
        // New inserts continue after the restored watermark.
        let rid = t2.insert_version(hdr(50), &[9u8; 100]).unwrap();
        assert_eq!(rid, next);
    }

    #[test]
    fn catalog_chains_over_many_pages() {
        // 1024-byte pages hold (1024-32)/8 = 124 page ids per catalog page;
        // grow past that to force chaining.
        let bm = bm();
        let t = Table::create(Arc::clone(&bm), 5, 960).unwrap();
        assert_eq!(t.slots_per_page(), 1); // 992-byte slots
        for i in 0..130u64 {
            t.insert_version(hdr(i + 1), &[i as u8; 960]).unwrap();
        }
        assert_eq!(t.data_pages().len(), 130);
        let head = t.catalog_head();
        drop(t);
        let t2 = Table::open(bm, 5, 960, head).unwrap();
        assert_eq!(t2.data_pages().len(), 130);
        assert_eq!(t2.allocated_slots(), 130);
        let mut buf = [0u8; 960];
        t2.read_payload(129, &mut buf).unwrap();
        assert_eq!(buf[0], 129);
    }
}
