//! Transactions, logging, and recovery for Spitfire (paper §5.2).
//!
//! This crate layers a transactional key-value database on top of the
//! Spitfire buffer manager:
//!
//! * **Versioned tables** ([`Table`]) store fixed-size tuples with on-page
//!   MVTO version headers, so concurrency-control metadata traffic flows
//!   through the storage hierarchy exactly as in the paper.
//! * **MVTO** (multi-version timestamp ordering, [`mvto`]) provides
//!   serializable transactions: each transaction gets one timestamp;
//!   reads record themselves on versions; writes abort when they would
//!   violate timestamp order.
//! * **NVM-aware WAL** ([`Wal`]) persists log records in a byte-addressable
//!   NVM buffer (`clwb`/`sfence`) — the commit path never touches SSD —
//!   and drains to an SSD log file in the background.
//! * **Recovery** ([`Database::recover`]) scans the persistent NVM buffer
//!   to rebuild the mapping table, treats the NVM log buffer as log tail,
//!   and runs analysis / redo / undo before rebuilding indexes.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod checkpoint;
mod db;
mod error;
mod maintenance;
pub mod mvto;
mod session;
mod table;
mod wal;

pub use checkpoint::{CheckpointStats, SnapshotConfig, SnapshotEngine};
pub use db::{Database, DbConfig, RecoveryStats, Transaction};
pub use error::TxnError;
pub use maintenance::{BackgroundFlusher, VacuumStats};
pub use session::Session;
pub use table::{Table, VersionHeader, NO_RID, VERSION_HEADER};
pub use wal::{LogRecord, RecordKind, Wal, WalFence, WalScanReport};

/// Result alias for transaction-layer operations.
pub type Result<T> = std::result::Result<T, TxnError>;
