//! Connection-scoped transaction handle for front ends.
//!
//! A network server maps one client connection to one [`Session`]: many
//! transactions over the connection's lifetime, at most one active at a
//! time, and a guarantee that a dropped connection never leaks an open
//! transaction — [`Session`]'s `Drop` aborts whatever is still active, so
//! its pending versions are rolled back and its key stripes released.
//!
//! Operations issued outside an explicit [`begin`](Session::begin) /
//! [`commit`](Session::commit) window run in *autocommit* mode: the
//! session wraps the single operation in its own transaction.

use std::sync::Arc;

use crate::db::{Database, Transaction};
use crate::error::TxnError;
use crate::Result;

/// One connection's transactional view of a [`Database`].
///
/// ```
/// # use std::sync::Arc;
/// # use spitfire_core::{BufferManager, BufferManagerConfig};
/// # use spitfire_txn::{Database, DbConfig, Session};
/// # let config = BufferManagerConfig::builder()
/// #     .page_size(4096)
/// #     .dram_capacity(64 * 4096)
/// #     .nvm_capacity(64 * 4096)
/// #     .build()
/// #     .unwrap();
/// # let bm = Arc::new(BufferManager::new(config).unwrap());
/// # let db = Arc::new(Database::create(
/// #     bm,
/// #     DbConfig { log_page_size: 4096, ..DbConfig::default() },
/// # ).unwrap());
/// db.create_table(1, 64).unwrap();
/// let mut session = Session::new(Arc::clone(&db));
/// session.put(1, 7, &[1u8; 64]).unwrap();          // autocommit
/// session.begin().unwrap();
/// session.put(1, 8, &[2u8; 64]).unwrap();
/// session.commit().unwrap();
/// assert_eq!(session.get(1, 7).unwrap()[0], 1);
/// ```
pub struct Session {
    db: Arc<Database>,
    txn: Option<Transaction>,
}

impl Session {
    /// A session with no transaction in progress.
    pub fn new(db: Arc<Database>) -> Self {
        Session { db, txn: None }
    }

    /// The underlying database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Whether an explicit transaction is in progress.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Id of the in-progress transaction, if any.
    pub fn txn_id(&self) -> Option<u64> {
        self.txn.as_ref().map(|t| t.id)
    }

    /// Start an explicit transaction; returns its id. Fails with
    /// [`TxnError::TransactionOpen`] if one is already in progress
    /// (protocols should make nesting an explicit client error rather
    /// than silently discarding work).
    pub fn begin(&mut self) -> Result<u64> {
        if self.txn.is_some() {
            return Err(TxnError::TransactionOpen);
        }
        let txn = self.db.begin();
        let id = txn.id;
        self.txn = Some(txn);
        Ok(id)
    }

    /// Commit the in-progress transaction. The transaction is finished
    /// afterwards even on error (a failed validation aborts it, matching
    /// [`Database::commit`]).
    pub fn commit(&mut self) -> Result<()> {
        let mut txn = self.txn.take().ok_or(TxnError::InactiveTransaction)?;
        self.db.commit(&mut txn)
    }

    /// Abort the in-progress transaction.
    pub fn abort(&mut self) -> Result<()> {
        let mut txn = self.txn.take().ok_or(TxnError::InactiveTransaction)?;
        self.db.abort(&mut txn)
    }

    /// Read the visible version of `key` (inside the open transaction, or
    /// autocommitted).
    pub fn get(&mut self, table_id: u32, key: u64) -> Result<Vec<u8>> {
        match &self.txn {
            Some(txn) => self.db.read(txn, table_id, key),
            None => {
                let mut txn = self.db.begin();
                let out = self.db.read(&txn, table_id, key);
                // Read-only: commit is free and cannot conflict, but an
                // abort keeps the timestamp bookkeeping honest on error.
                if out.is_ok() {
                    self.db.commit(&mut txn)?;
                } else {
                    let _ = self.db.abort(&mut txn);
                }
                out
            }
        }
    }

    /// Upsert `key`: update the existing version chain or insert a fresh
    /// one (inside the open transaction, or autocommitted).
    pub fn put(&mut self, table_id: u32, key: u64, payload: &[u8]) -> Result<()> {
        match &mut self.txn {
            Some(txn) => Self::upsert(&self.db, txn, table_id, key, payload),
            None => {
                let mut txn = self.db.begin();
                let out = Self::upsert(&self.db, &mut txn, table_id, key, payload);
                match out {
                    Ok(()) => self.db.commit(&mut txn),
                    Err(e) => {
                        let _ = self.db.abort(&mut txn);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Scan up to `limit` visible tuples with keys ≥ `start` (inside the
    /// open transaction, or autocommitted).
    pub fn scan(&mut self, table_id: u32, start: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        match &self.txn {
            Some(txn) => self.db.scan(txn, table_id, start, limit),
            None => {
                let mut txn = self.db.begin();
                let out = self.db.scan(&txn, table_id, start, limit);
                if out.is_ok() {
                    self.db.commit(&mut txn)?;
                } else {
                    let _ = self.db.abort(&mut txn);
                }
                out
            }
        }
    }

    fn upsert(
        db: &Database,
        txn: &mut Transaction,
        table_id: u32,
        key: u64,
        payload: &[u8],
    ) -> Result<()> {
        match db.update(txn, table_id, key, payload) {
            Err(TxnError::NotFound) => db.insert(txn, table_id, key, payload),
            other => other,
        }
    }
}

impl Drop for Session {
    /// A dropped session (disconnected client) aborts its open
    /// transaction so pending versions are rolled back rather than left
    /// as permanently-uncommitted markers blocking the key.
    fn drop(&mut self) {
        if let Some(mut txn) = self.txn.take() {
            let _ = self.db.abort(&mut txn);
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("in_txn", &self.in_txn())
            .field("txn_id", &self.txn_id())
            .finish()
    }
}
