//! NVM-aware write-ahead log (paper §5.2, Recovery).
//!
//! Log records are first persisted into a shared **NVM log buffer** — a
//! ring in byte-addressable persistent memory, written with `clwb` +
//! `sfence`. A transaction is considered committed as soon as its commit
//! record is persistent in this buffer; no SSD I/O sits on the commit
//! path. When the buffer fills past a threshold its contents are appended
//! to an on-SSD log file and the buffer is recycled.
//!
//! After a crash, the NVM buffer still holds the records that were not yet
//! appended (NVM is persistent); recovery first drains them to the log
//! file ("the NVM log buffer needs to be appended to the log file since
//! the buffer is persistent") and then replays the file.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spitfire_device::{
    AccessPattern, DeviceError, FaultInjector, NvmDevice, PersistenceTracking, SsdDevice, TimeScale,
};
use spitfire_sync::crc32;

use crate::error::TxnError;
use crate::Result;

/// Bounded retry for transient injected faults on the log devices (the
/// WAL has no buffer-manager metrics to charge, so this is a local,
/// lighter sibling of the core retry policy).
fn wal_retry<T>(mut f: impl FnMut() -> spitfire_device::Result<T>) -> spitfire_device::Result<T> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Err(e) if e.is_retryable() && attempt < 8 => {
                attempt += 1;
                std::thread::sleep(std::time::Duration::from_micros(1 << attempt.min(6)));
            }
            other => return other,
        }
    }
}

/// Types of log records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A new version was installed for a key.
    Update,
    /// A key was inserted.
    Insert,
    /// Transaction committed (carries the commit timestamp in `rid`).
    Commit,
    /// Transaction aborted.
    Abort,
    /// A checkpoint completed; records before this are redundant.
    Checkpoint,
}

impl RecordKind {
    fn to_byte(self) -> u8 {
        match self {
            RecordKind::Update => 1,
            RecordKind::Insert => 2,
            RecordKind::Commit => 3,
            RecordKind::Abort => 4,
            RecordKind::Checkpoint => 5,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => RecordKind::Update,
            2 => RecordKind::Insert,
            3 => RecordKind::Commit,
            4 => RecordKind::Abort,
            5 => RecordKind::Checkpoint,
            _ => return None,
        })
    }
}

/// One log record (paper: "a log record consists of (1) transaction
/// identifier and page identifier, (2) type of record, (3) log sequence
/// number of previous log record for this transaction, and (4) before and
/// after images").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Record type.
    pub kind: RecordKind,
    /// Transaction id.
    pub txn: u64,
    /// Table the write touched (0 for commit/abort).
    pub table: u32,
    /// Key within the table.
    pub key: u64,
    /// New version's record id (or commit timestamp for Commit records).
    pub rid: u64,
    /// Previous version's record id (`u64::MAX` = none).
    pub prev_rid: u64,
    /// LSN of this transaction's previous record (`u64::MAX` = first).
    pub prev_lsn: u64,
    /// After image (the new payload); before images are reachable through
    /// `prev_rid`, so they are not duplicated in the record.
    pub payload: Vec<u8>,
}

/// Framing: len u32 | crc u32 | kind u8 | pad 3 | txn u64 | table u32 |
/// pad 4 | key u64 | rid u64 | prev_rid u64 | prev_lsn u64 | payload.
const FRAME_HEADER: usize = 4 + 4 + 4 + 4 + 8 + 4 + 4 + 8 + 8 + 8 + 8;

impl LogRecord {
    /// Serialized length.
    pub fn frame_len(&self) -> usize {
        FRAME_HEADER + self.payload.len()
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.frame_len());
        buf.extend_from_slice(&(self.frame_len() as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // crc placeholder
        buf.push(self.kind.to_byte());
        buf.extend_from_slice(&[0u8; 3]);
        buf.extend_from_slice(&[0u8; 4]); // reserved
        buf.extend_from_slice(&self.txn.to_le_bytes());
        buf.extend_from_slice(&self.table.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        buf.extend_from_slice(&self.key.to_le_bytes());
        buf.extend_from_slice(&self.rid.to_le_bytes());
        buf.extend_from_slice(&self.prev_rid.to_le_bytes());
        buf.extend_from_slice(&self.prev_lsn.to_le_bytes());
        buf.extend_from_slice(&self.payload);
        let crc = crc32(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decode one record from `buf`; returns the record and bytes consumed.
    /// `None` on torn/invalid frames (end of log).
    fn decode(buf: &[u8]) -> Option<(LogRecord, usize)> {
        if buf.len() < FRAME_HEADER {
            return None;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().ok()?) as usize;
        if len < FRAME_HEADER || len > buf.len() {
            return None;
        }
        let crc_stored = u32::from_le_bytes(buf[4..8].try_into().ok()?);
        if crc32(&buf[8..len]) != crc_stored {
            return None;
        }
        let kind = RecordKind::from_byte(buf[8])?;
        let txn = u64::from_le_bytes(buf[16..24].try_into().ok()?);
        let table = u32::from_le_bytes(buf[24..28].try_into().ok()?);
        let key = u64::from_le_bytes(buf[32..40].try_into().ok()?);
        let rid = u64::from_le_bytes(buf[40..48].try_into().ok()?);
        let prev_rid = u64::from_le_bytes(buf[48..56].try_into().ok()?);
        let prev_lsn = u64::from_le_bytes(buf[56..64].try_into().ok()?);
        let payload = buf[FRAME_HEADER..len].to_vec();
        Some((
            LogRecord {
                kind,
                txn,
                table,
                key,
                rid,
                prev_rid,
                prev_lsn,
                payload,
            },
            len,
        ))
    }
}

/// The write-ahead log: NVM ring buffer + SSD log file.
pub struct Wal {
    /// Dedicated NVM region for the log buffer (separate from the buffer
    /// pool's NVM, as in the paper's shared log buffer).
    nvm: NvmDevice,
    /// Byte offset of the next append within the NVM buffer. The low
    /// region `[0, 8)` persistently stores this offset so recovery knows
    /// how much of the buffer is live.
    state: Mutex<WalState>,
    /// SSD log file: fixed-size pages appended in sequence.
    file: SsdDevice,
    next_file_page: AtomicU64,
    /// First live log-file page: pages below this were truncated away by a
    /// checkpoint fence ([`Wal::truncate_to`]). Persisted below
    /// [`DATA_BASE`] like the other cursors.
    file_base_page: AtomicU64,
    /// LSN of the first byte of `file_base_page` — the stream position the
    /// live log starts at. `log_bytes()` and per-record LSN assignment in
    /// [`Wal::read_all_checked`] are measured from here.
    base_lsn: AtomicU64,
    /// Drain threshold (fraction of the buffer).
    drain_at: usize,
    page_size: usize,
    /// Total bytes ever appended (monotonic LSN source).
    lsn: AtomicU64,
}

struct WalState {
    head: usize,
}

/// Byte offset where log records start in the NVM buffer (after the
/// persistent head word).
const DATA_BASE: usize = 64;

/// Byte offset of the persistent count of synced log-file pages. Like the
/// head word, this lives in the reserved region below [`DATA_BASE`] so a
/// restart can re-open the log file at the right length.
const FILE_PAGES_AT: usize = 8;

/// Byte offset of the persistent first-live-file-page cursor.
const FILE_BASE_AT: usize = 16;

/// Byte offset of the persistent base LSN (stream position of the first
/// live file page).
const BASE_LSN_AT: usize = 24;

/// A WAL fence: the durable log position captured by a checkpoint. All
/// records appended before the fence have `LSN < lsn` and live entirely in
/// file pages below `file_page` (the fence is taken after a full drain, so
/// the NVM buffer is empty and no record straddles it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalFence {
    /// First LSN past the fence.
    pub lsn: u64,
    /// First log-file page past the fence.
    pub file_page: u64,
}

/// Outcome of a checked log scan ([`Wal::read_all_checked`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalScanReport {
    /// Records decoded, in replay order (file portion, then NVM buffer).
    pub records: Vec<LogRecord>,
    /// Parallel to `records`: each record's LSN (stream offset of its
    /// first byte). Snapshot recovery replays only records with
    /// `lsn >= fence_lsn`.
    pub lsns: Vec<u64>,
    /// Bytes reassembled from the SSD log-file pages.
    pub file_bytes: usize,
    /// Bytes of the file stream consumed by CRC-valid frames.
    pub file_consumed: usize,
    /// Bytes in the live region of the NVM log buffer.
    pub nvm_bytes: usize,
    /// Bytes of the NVM region consumed by CRC-valid frames.
    pub nvm_consumed: usize,
    /// `true` when a region held trailing bytes that failed the CRC or
    /// framing checks — a torn or corrupted suffix was cut off and only
    /// the clean prefix was returned.
    pub corrupt: bool,
}

impl Wal {
    /// Create a WAL with an NVM buffer of `buffer_bytes` draining into an
    /// SSD log file with `page_size` pages.
    pub fn new(
        buffer_bytes: usize,
        page_size: usize,
        scale: TimeScale,
        tracking: PersistenceTracking,
    ) -> Result<Self> {
        assert!(buffer_bytes > DATA_BASE + 1024, "log buffer too small");
        let wal = Wal {
            nvm: NvmDevice::new(buffer_bytes, scale, tracking),
            state: Mutex::new(WalState { head: DATA_BASE }),
            file: SsdDevice::with_tracking(page_size, scale, tracking),
            next_file_page: AtomicU64::new(0),
            file_base_page: AtomicU64::new(0),
            base_lsn: AtomicU64::new(0),
            drain_at: buffer_bytes * 3 / 4,
            page_size,
            lsn: AtomicU64::new(0),
        };
        wal.persist_head(DATA_BASE)?;
        wal.persist_file_pages(0)?;
        wal.persist_word(FILE_BASE_AT, 0)?;
        wal.persist_word(BASE_LSN_AT, 0)?;
        Ok(wal)
    }

    /// Persist one u64 cursor in the reserved region below [`DATA_BASE`].
    fn persist_word(&self, at: usize, value: u64) -> Result<()> {
        wal_retry(|| {
            self.nvm
                .write(at, &value.to_le_bytes(), AccessPattern::Random)?;
            self.nvm.persist(at, 8)
        })?;
        Ok(())
    }

    fn persist_head(&self, head: usize) -> Result<()> {
        wal_retry(|| {
            self.nvm
                .write(0, &(head as u64).to_le_bytes(), AccessPattern::Random)?;
            self.nvm.persist(0, 8)
        })?;
        Ok(())
    }

    /// Persist the count of durably-synced log-file pages.
    fn persist_file_pages(&self, n: u64) -> Result<()> {
        wal_retry(|| {
            self.nvm
                .write(FILE_PAGES_AT, &n.to_le_bytes(), AccessPattern::Random)?;
            self.nvm.persist(FILE_PAGES_AT, 8)
        })?;
        Ok(())
    }

    /// Install (or clear) a fault injector on both log devices.
    pub fn set_fault_injector(&self, injector: Option<Arc<FaultInjector>>) {
        self.nvm.set_fault_injector(injector.clone());
        self.file.set_fault_injector(injector);
    }

    /// Append a record; durable when this returns (the paper's synchronous
    /// NVM persistence commit path). Returns the record's LSN.
    pub fn append(&self, record: &LogRecord) -> Result<u64> {
        let obs_t = spitfire_obs::op_start();
        let bytes = record.encode();
        let mut state = self.state.lock();
        if state.head + bytes.len() > self.nvm.capacity() {
            self.drain_locked(&mut state)?;
            if state.head + bytes.len() > self.nvm.capacity() {
                return Err(TxnError::LogRecordTooLarge(bytes.len()));
            }
        }
        let at = state.head;
        wal_retry(|| {
            self.nvm.write(at, &bytes, AccessPattern::Sequential)?;
            self.nvm.persist(at, bytes.len())
        })?;
        state.head = at + bytes.len();
        self.persist_head(state.head)?;
        let lsn = self.lsn.fetch_add(bytes.len() as u64, Ordering::AcqRel);
        if state.head >= self.drain_at {
            self.drain_locked(&mut state)?;
        }
        spitfire_obs::record_op(spitfire_obs::Op::WalAppend, obs_t, lsn, "nvm");
        Ok(lsn)
    }

    /// Move the NVM buffer's contents to the SSD log file and recycle it.
    fn drain_locked(&self, state: &mut WalState) -> Result<()> {
        let live = state.head - DATA_BASE;
        if live == 0 {
            return Ok(());
        }
        let mut buf = vec![0u8; live];
        wal_retry(|| {
            self.nvm
                .read(DATA_BASE, &mut buf, AccessPattern::Sequential)
        })?;
        // Append as page-sized chunks. Each file page starts with a 4-byte
        // valid-length header so partial pages from different drains can be
        // stitched back into one record stream.
        for chunk in buf.chunks(self.page_size - 4) {
            let mut page = vec![0u8; self.page_size];
            page[..4].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
            page[4..4 + chunk.len()].copy_from_slice(chunk);
            let pid = self.next_file_page.fetch_add(1, Ordering::AcqRel);
            wal_retry(|| self.file.append_page(pid, &page))?;
        }
        // Durability barrier before recycling the buffer: the file pages
        // must reach stable storage before the NVM copy of the records is
        // dropped. A crash between the sync and the head reset merely
        // replays the drained records twice — redo is idempotent.
        wal_retry(|| self.file.sync())?;
        self.persist_file_pages(self.next_file_page.load(Ordering::Acquire))?;
        state.head = DATA_BASE;
        self.persist_head(DATA_BASE)?;
        Ok(())
    }

    /// Force the NVM buffer into the log file (checkpoint, shutdown).
    pub fn drain(&self) -> Result<()> {
        let mut state = self.state.lock();
        self.drain_locked(&mut state)
    }

    /// Capture a fence: drain the NVM buffer so every appended record is
    /// in the log file, then record the durable log position. Used by the
    /// checkpointer; see [`WalFence`].
    pub fn fence(&self) -> Result<WalFence> {
        let mut state = self.state.lock();
        self.drain_locked(&mut state)?;
        Ok(WalFence {
            lsn: self.lsn.load(Ordering::Acquire),
            file_page: self.next_file_page.load(Ordering::Acquire),
        })
    }

    /// Logically truncate everything before `fence`: subsequent scans
    /// start at `fence.file_page` with LSNs measured from `fence.lsn`. No
    /// pages move — this only advances the persistent base cursors. A
    /// checkpoint truncates to the *previous* generation's fence so a
    /// CRC-mismatch fallback one generation still finds its WAL tail.
    ///
    /// The base LSN is persisted before the base page: a crash between the
    /// two makes the next scan label the leftover prefix with LSNs at or
    /// above the fence, so recovery replays extra (idempotent) records —
    /// never skips live ones.
    pub fn truncate_to(&self, fence: WalFence) -> Result<()> {
        let _state = self.state.lock();
        if fence.lsn <= self.base_lsn.load(Ordering::Acquire) {
            return Ok(());
        }
        self.base_lsn.store(fence.lsn, Ordering::Release);
        self.persist_word(BASE_LSN_AT, fence.lsn)?;
        self.file_base_page
            .store(fence.file_page, Ordering::Release);
        self.persist_word(FILE_BASE_AT, fence.file_page)?;
        Ok(())
    }

    /// Bytes of live log: everything appended past the last truncation
    /// point (including records still pending in the NVM buffer). The
    /// checkpoint trigger compares this against its threshold.
    pub fn log_bytes(&self) -> u64 {
        self.lsn.load(Ordering::Acquire) - self.base_lsn.load(Ordering::Acquire)
    }

    /// LSN one past the last appended byte.
    pub fn current_lsn(&self) -> u64 {
        self.lsn.load(Ordering::Acquire)
    }

    /// LSN the live log starts at (the last truncation point).
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn.load(Ordering::Acquire)
    }

    /// Truncate the log after a checkpoint: everything before the
    /// checkpoint record is obsolete.
    pub fn truncate(&self) -> Result<()> {
        let mut state = self.state.lock();
        // Recycle the SSD file by restarting the page sequence.
        self.next_file_page.store(0, Ordering::Release);
        self.persist_file_pages(0)?;
        self.file_base_page.store(0, Ordering::Release);
        self.persist_word(FILE_BASE_AT, 0)?;
        // Pending NVM records are discarded with the head reset below, but
        // their bytes were already counted into the LSN cursor: the empty
        // log logically starts at the current LSN.
        let lsn = self.lsn.load(Ordering::Acquire);
        self.base_lsn.store(lsn, Ordering::Release);
        self.persist_word(BASE_LSN_AT, lsn)?;
        state.head = DATA_BASE;
        self.persist_head(DATA_BASE)?;
        Ok(())
    }

    /// Simulate power loss on the log devices (volatile caches dropped),
    /// then remount: the volatile cursors are restored from their
    /// persistent images, exactly as a restart re-opening the log would.
    pub fn simulate_crash(&self) {
        self.nvm.simulate_crash();
        self.file.simulate_crash();
        let mut word = [0u8; 8];
        let mut read_word = |at: usize| -> Option<u64> {
            self.nvm
                .read(at, &mut word, AccessPattern::Random)
                .ok()
                .map(|()| u64::from_le_bytes(word))
        };
        if let Some(n) = read_word(FILE_PAGES_AT) {
            self.next_file_page.store(n, Ordering::Release);
        }
        if let Some(base) = read_word(FILE_BASE_AT) {
            self.file_base_page.store(base, Ordering::Release);
        }
        if let Some(base_lsn) = read_word(BASE_LSN_AT) {
            self.base_lsn.store(base_lsn, Ordering::Release);
        }
        if let Some(head) = read_word(0) {
            let head = (head as usize).clamp(DATA_BASE, self.nvm.capacity());
            self.state.lock().head = head;
        }
        // Recompute the volatile LSN cursor from the durable state: base
        // LSN plus the surviving file-stream bytes plus the live NVM
        // region. Un-synced file pages evaporated with the crash, but
        // their records still sit in the NVM buffer (the drain recycles it
        // only after the fsync), so they are counted exactly once.
        let mut lsn = self.base_lsn.load(Ordering::Acquire);
        let mut page = vec![0u8; self.page_size];
        let base = self.file_base_page.load(Ordering::Acquire);
        let n_pages = self.next_file_page.load(Ordering::Acquire);
        for pid in base..n_pages {
            if self.file.read_page(pid, &mut page).is_err() {
                break;
            }
            let valid = u32::from_le_bytes(page[..4].try_into().expect("4 bytes")) as usize;
            lsn += valid.min(self.page_size - 4) as u64;
        }
        lsn += (self.state.lock().head - DATA_BASE) as u64;
        self.lsn.store(lsn, Ordering::Release);
    }

    /// Read the full log back: SSD file pages in order, then the live
    /// region of the (persistent) NVM buffer, decoded until the first
    /// invalid frame per region. Used by recovery.
    pub fn read_all(&self) -> Result<Vec<LogRecord>> {
        Ok(self.read_all_checked()?.records)
    }

    /// Like [`Wal::read_all`], but reports how much of each region decoded
    /// cleanly. Every frame is CRC-checked; a torn or corrupted frame ends
    /// the stream at the last clean record and sets
    /// [`WalScanReport::corrupt`]. A file page missing because a crash hit
    /// between append and fsync is benign: the drain had not recycled the
    /// NVM buffer yet, so those records are still decoded from NVM.
    pub fn read_all_checked(&self) -> Result<WalScanReport> {
        let mut report = WalScanReport::default();
        let base_lsn = self.base_lsn.load(Ordering::Acquire);
        // SSD file portion. Pages are contiguous records chunked at page
        // boundaries, so reassemble the byte stream first. Pages below the
        // base cursor were truncated by a checkpoint fence.
        let file_base = self.file_base_page.load(Ordering::Acquire);
        let n_pages = self.next_file_page.load(Ordering::Acquire);
        let mut stream =
            Vec::with_capacity(n_pages.saturating_sub(file_base) as usize * self.page_size);
        let mut page = vec![0u8; self.page_size];
        for pid in file_base..n_pages {
            match wal_retry(|| self.file.read_page(pid, &mut page)) {
                Ok(()) => {}
                Err(DeviceError::PageNotFound(_)) => break,
                Err(e) => return Err(e.into()),
            }
            let valid = u32::from_le_bytes(page[..4].try_into().expect("4 bytes")) as usize;
            let valid = valid.min(self.page_size - 4);
            stream.extend_from_slice(&page[4..4 + valid]);
        }
        report.file_bytes = stream.len();
        report.file_consumed =
            decode_stream(&stream, base_lsn, &mut report.records, &mut report.lsns);
        if report.file_consumed < report.file_bytes {
            // Torn/corrupt bytes inside the file stream: everything after
            // them — including the NVM region, which is later in the log —
            // is past the clean prefix and must not be replayed.
            report.corrupt = true;
            return Ok(report);
        }
        // NVM buffer portion: head offset is persistent. Its records sit
        // in the stream directly after the drained file bytes.
        let mut head_bytes = [0u8; 8];
        wal_retry(|| self.nvm.read(0, &mut head_bytes, AccessPattern::Random))?;
        let head = (u64::from_le_bytes(head_bytes) as usize).clamp(DATA_BASE, self.nvm.capacity());
        if head > DATA_BASE {
            let mut buf = vec![0u8; head - DATA_BASE];
            wal_retry(|| {
                self.nvm
                    .read(DATA_BASE, &mut buf, AccessPattern::Sequential)
            })?;
            report.nvm_bytes = buf.len();
            let nvm_base = base_lsn + report.file_bytes as u64;
            report.nvm_consumed =
                decode_stream(&buf, nvm_base, &mut report.records, &mut report.lsns);
            if report.nvm_consumed < report.nvm_bytes {
                report.corrupt = true;
            }
        }
        Ok(report)
    }

    /// Bytes currently pending in the NVM buffer.
    pub fn pending_bytes(&self) -> usize {
        self.state.lock().head - DATA_BASE
    }

    /// Change the emulated-delay scale on the log devices.
    pub fn set_time_scale(&self, scale: TimeScale) {
        self.nvm.set_time_scale(scale);
        self.file.set_time_scale(scale);
    }

    /// Device statistics for the NVM log buffer.
    pub fn nvm_stats(&self) -> std::sync::Arc<spitfire_device::DeviceStats> {
        self.nvm.stats()
    }

    /// Device statistics for the SSD log file.
    pub fn file_stats(&self) -> std::sync::Arc<spitfire_device::DeviceStats> {
        self.file.stats()
    }
}

/// Decode frames from `buf` until the first invalid one; returns the
/// number of bytes consumed by valid frames. Each record's LSN is
/// `base_lsn` plus its offset in `buf`.
fn decode_stream(
    buf: &[u8],
    base_lsn: u64,
    out: &mut Vec<LogRecord>,
    lsns: &mut Vec<u64>,
) -> usize {
    let mut consumed = 0;
    while let Some((rec, used)) = LogRecord::decode(&buf[consumed..]) {
        out.push(rec);
        lsns.push(base_lsn + consumed as u64);
        consumed += used;
    }
    consumed
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("pending_bytes", &self.pending_bytes())
            // relaxed: debug snapshot; the allocator's RMW provides the uniqueness that matters.
            .field("file_pages", &self.next_file_page.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(txn: u64, kind: RecordKind, payload: &[u8]) -> LogRecord {
        LogRecord {
            kind,
            txn,
            table: 1,
            key: 42,
            rid: 7,
            prev_rid: u64::MAX,
            prev_lsn: u64::MAX,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = record(9, RecordKind::Update, b"hello world");
        let bytes = r.encode();
        let (decoded, used) = LogRecord::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, r);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let r = record(9, RecordKind::Commit, b"x");
        let mut bytes = r.encode();
        bytes[20] ^= 0xFF;
        assert!(LogRecord::decode(&bytes).is_none());
        // Truncated frame.
        let bytes = r.encode();
        assert!(LogRecord::decode(&bytes[..bytes.len() - 1]).is_none());
        // Empty/zero region (the padding case).
        assert!(LogRecord::decode(&[0u8; 128]).is_none());
    }

    fn wal() -> Wal {
        Wal::new(8192, 1024, TimeScale::ZERO, PersistenceTracking::Full).unwrap()
    }

    #[test]
    fn append_and_read_back() {
        let w = wal();
        let mut expect = Vec::new();
        for i in 0..10u64 {
            let r = record(i, RecordKind::Update, &[i as u8; 33]);
            w.append(&r).unwrap();
            expect.push(r);
        }
        assert_eq!(w.read_all().unwrap(), expect);
    }

    #[test]
    fn drain_moves_records_to_file_and_preserves_order() {
        let w = wal();
        let mut expect = Vec::new();
        for i in 0..8u64 {
            let r = record(i, RecordKind::Insert, &[0xAB; 100]);
            w.append(&r).unwrap();
            expect.push(r);
        }
        w.drain().unwrap();
        assert_eq!(w.pending_bytes(), 0);
        // More records after the drain land in the NVM buffer.
        let r = record(99, RecordKind::Commit, &[]);
        w.append(&r).unwrap();
        expect.push(r);
        assert_eq!(w.read_all().unwrap(), expect);
    }

    #[test]
    fn auto_drain_when_threshold_reached() {
        let w = wal();
        // Each record ~ 564 bytes; the 8 KB buffer drains automatically.
        for i in 0..40u64 {
            w.append(&record(i, RecordKind::Update, &[1u8; 500]))
                .unwrap();
        }
        assert_eq!(w.read_all().unwrap().len(), 40);
        assert!(w.pending_bytes() < 8192);
    }

    #[test]
    fn unpersisted_tail_lost_on_crash_but_persisted_survives() {
        let w = wal();
        for i in 0..5u64 {
            w.append(&record(i, RecordKind::Update, b"durable"))
                .unwrap();
        }
        // Crash: appended records were persisted record-by-record.
        w.simulate_crash();
        let recovered = w.read_all().unwrap();
        assert_eq!(recovered.len(), 5);
        assert!(recovered.iter().all(|r| r.payload == b"durable"));
    }

    #[test]
    fn truncate_empties_the_log() {
        let w = wal();
        for i in 0..5u64 {
            w.append(&record(i, RecordKind::Update, b"old")).unwrap();
        }
        w.drain().unwrap();
        w.truncate().unwrap();
        assert!(w.read_all().unwrap().is_empty());
        w.append(&record(77, RecordKind::Update, b"new")).unwrap();
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].txn, 77);
    }

    #[test]
    fn oversized_record_is_rejected() {
        let w = wal();
        let r = record(1, RecordKind::Update, &vec![0u8; 10_000]);
        assert!(matches!(w.append(&r), Err(TxnError::LogRecordTooLarge(_))));
    }

    #[test]
    fn torn_file_frame_is_caught_by_crc_and_prefix_survives() {
        use spitfire_device::{DeviceKind, FaultKind, FaultOp, FaultPlan, FaultRule, Trigger};
        let w = wal();
        // 6 records of 184 bytes: the drain produces one full file page and
        // one partial one.
        for i in 0..6u64 {
            w.append(&record(i, RecordKind::Update, &[i as u8; 120]))
                .unwrap();
        }
        // Tear the first file-page append of the drain: a full page always
        // loses at least one 256-byte media block, so the stream is cut
        // mid-record no matter which blocks survive.
        let plan = FaultPlan::new(7).rule(
            FaultRule::any(Trigger::NthOp(1), FaultKind::TornWrite)
                .on_device(DeviceKind::Ssd)
                .on_op(FaultOp::Write),
        );
        let inj = Arc::new(FaultInjector::new(plan));
        w.set_fault_injector(Some(Arc::clone(&inj)));
        // The torn write succeeds from the device's point of view.
        w.drain().unwrap();
        w.set_fault_injector(None);
        assert_eq!(inj.stats().torn, 1);
        let report = w.read_all_checked().unwrap();
        assert!(report.corrupt, "torn frame must be flagged");
        assert!(report.file_consumed < report.file_bytes);
        assert!(report.records.len() < 6, "some records must be cut off");
        // Whatever survived is the *clean prefix*, in order from the start.
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.txn, i as u64);
        }
    }

    #[test]
    fn drained_records_survive_crash_via_file_sync() {
        let w = wal();
        let mut expect = Vec::new();
        for i in 0..6u64 {
            let r = record(i, RecordKind::Update, &[i as u8; 120]);
            w.append(&r).unwrap();
            expect.push(r);
        }
        w.drain().unwrap();
        // One more record that persists only in the NVM buffer.
        let r = record(9, RecordKind::Commit, &[]);
        w.append(&r).unwrap();
        expect.push(r);
        // Power loss: the drained file pages were fsynced, the tail is in
        // persistent NVM, and the remounted cursors find both.
        w.simulate_crash();
        assert_eq!(w.read_all().unwrap(), expect);
    }

    #[test]
    fn failed_drain_sync_keeps_records_in_nvm() {
        use spitfire_device::{DeviceKind, FaultKind, FaultOp, FaultPlan, FaultRule, Trigger};
        let w = wal();
        let mut expect = Vec::new();
        for i in 0..6u64 {
            let r = record(i, RecordKind::Update, &[i as u8; 120]);
            w.append(&r).unwrap();
            expect.push(r);
        }
        let plan = FaultPlan::new(3).rule(
            FaultRule::any(Trigger::Always, FaultKind::Fatal)
                .on_device(DeviceKind::Ssd)
                .on_op(FaultOp::Sync),
        );
        w.set_fault_injector(Some(Arc::new(FaultInjector::new(plan))));
        // The fsync barrier fails fatally: the drain errors out *without*
        // recycling the NVM buffer.
        assert!(w.drain().is_err());
        w.set_fault_injector(None);
        assert_eq!(
            w.pending_bytes(),
            expect.iter().map(LogRecord::frame_len).sum::<usize>()
        );
        // Crash: the un-synced file pages evaporate, but every record is
        // still in the persistent NVM buffer.
        w.simulate_crash();
        assert_eq!(w.read_all().unwrap(), expect);
    }

    #[test]
    fn scan_reports_parallel_lsns() {
        let w = wal();
        let mut expect_lsns = Vec::new();
        let mut at = 0u64;
        for i in 0..6u64 {
            let r = record(i, RecordKind::Update, &[i as u8; 50]);
            let lsn = w.append(&r).unwrap();
            assert_eq!(lsn, at);
            expect_lsns.push(at);
            at += r.frame_len() as u64;
        }
        // LSNs survive the move from NVM to the file: drain mid-stream.
        w.drain().unwrap();
        w.append(&record(6, RecordKind::Commit, &[])).unwrap();
        expect_lsns.push(at);
        let report = w.read_all_checked().unwrap();
        assert_eq!(report.records.len(), report.lsns.len());
        assert_eq!(report.lsns, expect_lsns);
        assert_eq!(w.current_lsn(), w.log_bytes());
    }

    #[test]
    fn corrupt_mid_record_cuts_the_clean_prefix() {
        let w = wal();
        for i in 0..4u64 {
            w.append(&record(i, RecordKind::Update, &[i as u8; 40]))
                .unwrap();
        }
        // Flip one payload byte in the middle of the *second* record,
        // directly in the persistent NVM buffer.
        let second_at = DATA_BASE + record(0, RecordKind::Update, &[0u8; 40]).frame_len();
        let mut b = [0u8; 1];
        w.nvm
            .read(second_at + FRAME_HEADER + 10, &mut b, AccessPattern::Random)
            .unwrap();
        b[0] ^= 0x01;
        w.nvm
            .write(second_at + FRAME_HEADER + 10, &b, AccessPattern::Random)
            .unwrap();
        w.nvm.persist(second_at + FRAME_HEADER + 10, 1).unwrap();

        let report = w.read_all_checked().unwrap();
        assert!(report.corrupt, "mid-record corruption must be flagged");
        // Only the first record survives: the CRC failure ends the stream
        // even though records 3 and 4 are intact after the bad frame.
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.records[0].txn, 0);
        assert!(report.nvm_consumed < report.nvm_bytes);
    }

    #[test]
    fn clean_scan_consumes_both_regions_exactly() {
        let w = wal();
        for i in 0..5u64 {
            w.append(&record(i, RecordKind::Update, &[1u8; 80]))
                .unwrap();
        }
        w.drain().unwrap();
        w.append(&record(9, RecordKind::Commit, &[])).unwrap();
        let report = w.read_all_checked().unwrap();
        assert!(!report.corrupt);
        assert_eq!(report.file_consumed, report.file_bytes);
        assert_eq!(report.nvm_consumed, report.nvm_bytes);
        assert_eq!(report.records.len(), 6);
    }

    #[test]
    fn truncation_interplay_with_corrupt_tail() {
        let w = wal();
        for i in 0..5u64 {
            w.append(&record(i, RecordKind::Update, b"pre")).unwrap();
        }
        w.drain().unwrap();
        w.truncate().unwrap();
        // Post-truncation records only; the old file pages must not leak
        // back into the scan.
        for i in 10..13u64 {
            w.append(&record(i, RecordKind::Update, &[2u8; 30]))
                .unwrap();
        }
        let report = w.read_all_checked().unwrap();
        assert!(!report.corrupt);
        assert_eq!(
            report.records.iter().map(|r| r.txn).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        // LSNs keep counting across the truncation (monotonic stream).
        assert_eq!(report.lsns[0], w.base_lsn());
        // Now corrupt the newest record's tail: the clean prefix is the
        // post-truncation records minus the damaged one.
        let head = w.state.lock().head;
        let last_len = record(12, RecordKind::Update, &[2u8; 30]).frame_len();
        let at = head - last_len + FRAME_HEADER;
        w.nvm.write(at, &[0xEE], AccessPattern::Random).unwrap();
        w.nvm.persist(at, 1).unwrap();
        let report = w.read_all_checked().unwrap();
        assert!(report.corrupt);
        assert_eq!(
            report.records.iter().map(|r| r.txn).collect::<Vec<_>>(),
            vec![10, 11]
        );
    }

    #[test]
    fn fence_and_truncate_to_keep_only_the_tail() {
        let w = wal();
        for i in 0..5u64 {
            w.append(&record(i, RecordKind::Update, &[3u8; 60]))
                .unwrap();
        }
        let fence = w.fence().unwrap();
        assert_eq!(w.pending_bytes(), 0, "fence drains the buffer");
        for i in 5..8u64 {
            w.append(&record(i, RecordKind::Update, &[4u8; 60]))
                .unwrap();
        }
        // Before truncation the full stream is visible; the fence splits
        // it by LSN.
        let report = w.read_all_checked().unwrap();
        let past: Vec<u64> = report
            .records
            .iter()
            .zip(&report.lsns)
            .filter(|(_, &lsn)| lsn >= fence.lsn)
            .map(|(r, _)| r.txn)
            .collect();
        assert_eq!(past, vec![5, 6, 7]);

        w.truncate_to(fence).unwrap();
        let tail_len = 3 * record(0, RecordKind::Update, &[0u8; 60]).frame_len() as u64;
        assert_eq!(w.log_bytes(), tail_len);
        let report = w.read_all_checked().unwrap();
        assert_eq!(
            report.records.iter().map(|r| r.txn).collect::<Vec<_>>(),
            vec![5, 6, 7]
        );
        assert!(report.lsns.iter().all(|&l| l >= fence.lsn));

        // The cursors and the recomputed LSN survive a crash.
        w.simulate_crash();
        assert_eq!(w.base_lsn(), fence.lsn);
        assert_eq!(w.log_bytes(), tail_len);
        let report = w.read_all_checked().unwrap();
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.lsns[0], fence.lsn);
    }

    #[test]
    fn concurrent_appends_are_all_recovered() {
        use std::sync::Arc;
        let w =
            Arc::new(Wal::new(1 << 20, 4096, TimeScale::ZERO, PersistenceTracking::Full).unwrap());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        w.append(&record(t * 1000 + i, RecordKind::Update, &[t as u8; 64]))
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let recs = w.read_all().unwrap();
        assert_eq!(recs.len(), 400);
        // Per-thread order must be preserved.
        for t in 0..4u64 {
            let txns: Vec<u64> = recs
                .iter()
                .map(|r| r.txn)
                .filter(|x| x / 1000 == t)
                .collect();
            assert!(
                txns.windows(2).all(|w| w[0] < w[1]),
                "thread {t} out of order"
            );
        }
    }
}
