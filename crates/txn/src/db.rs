//! The transactional database: MVTO over versioned tables, indexed by
//! B+Trees, logged through the NVM-aware WAL, recovered ARIES-style.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spitfire_core::{BufferManager, PageId};
use spitfire_index::BTree;

use crate::error::TxnError;
use crate::mvto::{is_marker, marker_txn, visible, KeyLocks, ABORTED, INF, MARK};
use crate::table::{Table, VersionHeader, NO_RID};
use crate::wal::{LogRecord, RecordKind, Wal};
use crate::Result;

/// Root catalog layout: magic u64 | n u32 | pad u32 | entries of
/// (table u32, tuple u32, catalog_head u64).
const ROOT_MAGIC: u64 = 0x5350_4946_5245_4442; // "SPIFREDB"
const ROOT_HEADER: usize = 16;
const ROOT_ENTRY: usize = 16;

/// Database construction options.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// NVM log buffer capacity in bytes.
    pub log_buffer_bytes: usize,
    /// Page size of the SSD log file.
    pub log_page_size: usize,
    /// Persistence tracking for the log's NVM buffer.
    pub log_tracking: spitfire_device::PersistenceTracking,
    /// Number of key-lock stripes.
    pub lock_stripes: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            log_buffer_bytes: 1 << 20,
            log_page_size: 16 * 1024,
            log_tracking: spitfire_device::PersistenceTracking::Counters,
            lock_stripes: 1024,
        }
    }
}

/// What a transaction did to one key (undo/stamping information).
#[derive(Debug, Clone, Copy)]
struct WriteEntry {
    table: u32,
    key: u64,
    new_rid: u64,
    old_rid: u64, // NO_RID for inserts
}

/// A transaction handle. Obtain with [`Database::begin`]; finish with
/// [`Database::commit`] or [`Database::abort`]. Dropping an unfinished
/// transaction leaks its markers until abort — always finish explicitly.
#[derive(Debug)]
pub struct Transaction {
    /// Transaction id (distinct from the timestamp).
    pub id: u64,
    /// MVTO timestamp: orders both reads and writes.
    pub ts: u64,
    writes: Vec<WriteEntry>,
    last_lsn: u64,
    active: bool,
}

impl Transaction {
    /// Whether the transaction is still active.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of writes performed so far.
    pub fn write_count(&self) -> usize {
        self.writes.len()
    }
}

/// Counters reported by [`Database::recover`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed transactions found in the log (tail only on the
    /// snapshot path).
    pub committed: usize,
    /// Loser transactions (no commit record).
    pub losers: usize,
    /// Write records redone.
    pub redone: usize,
    /// Loser write records undone (marked aborted).
    pub undone: usize,
    /// Pages reconstructed from the NVM buffer scan.
    pub nvm_pages: usize,
    /// Index entries rebuilt (table scans on the legacy path, snapshot
    /// dump bulk-loads on the instant-restart path).
    pub index_entries: usize,
    /// Snapshot generation restored (0 = full-history recovery).
    pub snapshot_generation: u64,
    /// Page images installed from the snapshot chain.
    pub snapshot_pages: usize,
}

/// A transactional multi-table database over one buffer manager.
pub struct Database {
    pub(crate) bm: Arc<BufferManager>,
    pub(crate) wal: Wal,
    /// Timestamp oracle (assigns begin timestamps, single-ts MVTO).
    pub(crate) oracle: AtomicU64,
    pub(crate) txn_ids: AtomicU64,
    pub(crate) root_catalog: PageId,
    pub(crate) tables: RwLock<HashMap<u32, Arc<Table>>>,
    pub(crate) indexes: RwLock<HashMap<u32, Arc<BTree>>>,
    locks: KeyLocks,
    commits: AtomicU64,
    aborts: AtomicU64,
    /// Timestamps of in-flight transactions (vacuum watermark).
    pub(crate) active: parking_lot::Mutex<std::collections::BTreeSet<u64>>,
    /// Checkpoint fence gate: [`Database::begin`] holds it shared for an
    /// instant; the checkpointer holds it exclusively while it waits for
    /// the active set to drain and captures its fence (see `checkpoint`).
    pub(crate) fence_gate: RwLock<()>,
    /// Attached snapshot engine (None = legacy checkpoints).
    pub(crate) snapshots: RwLock<Option<Arc<crate::checkpoint::SnapshotEngine>>>,
    /// Serializes checkpoints (one writer streams into the store at a
    /// time).
    pub(crate) ckpt_serial: parking_lot::Mutex<()>,
}

impl Database {
    /// Create a fresh database on `bm`. Must be called on a buffer manager
    /// with no allocated pages (the root catalog claims the first page,
    /// whose id recovery relies on).
    pub fn create(bm: Arc<BufferManager>, config: DbConfig) -> Result<Self> {
        assert_eq!(
            bm.page_count(),
            0,
            "Database::create needs a fresh buffer manager"
        );
        let root_catalog = bm.allocate_page()?;
        {
            let guard = bm.fetch_write(root_catalog)?;
            let mut header = [0u8; ROOT_HEADER];
            header[..8].copy_from_slice(&ROOT_MAGIC.to_le_bytes());
            guard.write(0, &header)?;
        }
        bm.flush_page(root_catalog)?;
        let wal = Wal::new(
            config.log_buffer_bytes,
            config.log_page_size,
            bm.config().time_scale,
            config.log_tracking,
        )?;
        Ok(Database {
            bm,
            wal,
            oracle: AtomicU64::new(2),
            txn_ids: AtomicU64::new(1),
            root_catalog,
            tables: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            locks: KeyLocks::new(config.lock_stripes),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            active: parking_lot::Mutex::new(std::collections::BTreeSet::new()),
            fence_gate: RwLock::new(()),
            snapshots: RwLock::new(None),
            ckpt_serial: parking_lot::Mutex::new(()),
        })
    }

    /// The buffer manager backing this database.
    pub fn buffer_manager(&self) -> &Arc<BufferManager> {
        &self.bm
    }

    /// The write-ahead log (metrics access).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Change the emulated-delay scale across the buffer manager and the
    /// WAL devices (load phases run with delays off).
    pub fn set_time_scale(&self, scale: spitfire_device::TimeScale) {
        self.bm.admin().set_time_scale(scale);
        self.wal.set_time_scale(scale);
        if let Some(engine) = self.snapshot_engine() {
            engine.store().set_time_scale(scale);
        }
    }

    /// Committed / aborted transaction counts.
    pub fn txn_stats(&self) -> (u64, u64) {
        (
            // relaxed: advisory transaction statistics.
            self.commits.load(Ordering::Relaxed),
            self.aborts.load(Ordering::Relaxed),
        )
    }

    /// Add this database's transaction counters and the underlying buffer
    /// manager's counters and gauges to an observability report.
    pub fn fill_obs_report(&self, report: &mut spitfire_obs::Report) {
        let (commits, aborts) = self.txn_stats();
        report.add_counter("txn_commits", commits);
        report.add_counter("txn_aborts", aborts);
        report.add_gauge("wal_bytes", self.wal.log_bytes() as f64);
        if let Some(engine) = self.snapshot_engine() {
            report.add_gauge("snapshot_generation", engine.generation() as f64);
            report.add_gauge(
                "last_checkpoint_ms",
                engine.last_checkpoint_micros() as f64 / 1000.0,
            );
            report.add_gauge(
                "last_checkpoint_pages",
                engine.last_checkpoint_pages() as f64,
            );
        }
        self.bm.fill_obs_report(report);
    }

    /// Register observability gauges for this database (in-flight
    /// transaction count) and its buffer manager. Gauges hold weak
    /// references and disappear once the database is dropped.
    pub fn register_obs_gauges(self: &Arc<Self>) {
        self.bm.register_obs_gauges();
        let w = Arc::downgrade(self);
        spitfire_obs::register_gauge("active_txns", move || {
            w.upgrade().map(|db| db.active.lock().len() as f64)
        });
        let w = Arc::downgrade(self);
        spitfire_obs::register_gauge("wal_bytes", move || {
            w.upgrade().map(|db| db.wal.log_bytes() as f64)
        });
        let w = Arc::downgrade(self);
        spitfire_obs::register_gauge("snapshot_generation", move || {
            w.upgrade()
                .map(|db| db.snapshot_engine().map_or(0.0, |e| e.generation() as f64))
        });
        let w = Arc::downgrade(self);
        spitfire_obs::register_gauge("last_checkpoint_ms", move || {
            w.upgrade().map(|db| {
                db.snapshot_engine()
                    .map_or(0.0, |e| e.last_checkpoint_micros() as f64 / 1000.0)
            })
        });
        let w = Arc::downgrade(self);
        spitfire_obs::register_gauge("last_checkpoint_pages", move || {
            w.upgrade().map(|db| {
                db.snapshot_engine()
                    .map_or(0.0, |e| e.last_checkpoint_pages() as f64)
            })
        });
    }

    /// Create a table with `tuple_size`-byte tuples and a primary index.
    pub fn create_table(&self, table_id: u32, tuple_size: usize) -> Result<()> {
        let table = Arc::new(Table::create(Arc::clone(&self.bm), table_id, tuple_size)?);
        let index = Arc::new(BTree::new(Arc::clone(&self.bm))?);
        // Persist the table in the root catalog.
        {
            let guard = self.bm.fetch_write(self.root_catalog)?;
            let mut nb = [0u8; 4];
            guard.read(8, &mut nb)?;
            let n = u32::from_le_bytes(nb) as usize;
            let at = ROOT_HEADER + n * ROOT_ENTRY;
            let mut entry = [0u8; ROOT_ENTRY];
            entry[..4].copy_from_slice(&table_id.to_le_bytes());
            entry[4..8].copy_from_slice(&(tuple_size as u32).to_le_bytes());
            entry[8..16].copy_from_slice(&table.catalog_head().0.to_le_bytes());
            guard.write(at, &entry)?;
            guard.write(8, &((n + 1) as u32).to_le_bytes())?;
        }
        self.bm.flush_page(self.root_catalog)?;
        self.tables.write().insert(table_id, table);
        self.indexes.write().insert(table_id, index);
        Ok(())
    }

    fn table(&self, id: u32) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or(TxnError::UnknownTable(id))
    }

    fn index(&self, id: u32) -> Result<Arc<BTree>> {
        self.indexes
            .read()
            .get(&id)
            .cloned()
            .ok_or(TxnError::UnknownTable(id))
    }

    pub(crate) fn table_ids(&self) -> Vec<u32> {
        self.tables.read().keys().copied().collect()
    }

    pub(crate) fn table_handle(&self, id: u32) -> Result<Arc<Table>> {
        self.table(id)
    }

    /// Data-page ids of a table, for residency inspection (e.g. asking the
    /// buffer manager which of a tenant's pages are DRAM-resident).
    pub fn table_data_pages(&self, table_id: u32) -> Result<Vec<spitfire_core::PageId>> {
        Ok(self.table(table_id)?.data_pages())
    }

    pub(crate) fn index_handle(&self, id: u32) -> Result<Arc<BTree>> {
        self.index(id)
    }

    pub(crate) fn lock_key(&self, table: u32, key: u64) -> parking_lot::MutexGuard<'_, ()> {
        self.locks.lock(table, key)
    }

    /// Begin a transaction. Briefly holds the checkpoint fence gate
    /// shared: a checkpoint that is waiting for the active set to drain
    /// blocks new transactions here until its fence is captured.
    pub fn begin(&self) -> Transaction {
        let _gate = self.fence_gate.read();
        let ts = self.oracle.fetch_add(1, Ordering::AcqRel);
        self.active.lock().insert(ts);
        Transaction {
            id: self.txn_ids.fetch_add(1, Ordering::AcqRel),
            ts,
            writes: Vec::new(),
            last_lsn: u64::MAX,
            active: true,
        }
    }

    fn retire(&self, txn: &Transaction) {
        self.active.lock().remove(&txn.ts);
    }

    /// The vacuum watermark: no active transaction has a timestamp below
    /// this, so versions superseded before it are unreachable.
    pub fn oldest_active_ts(&self) -> u64 {
        self.active
            .lock()
            .first()
            .copied()
            .unwrap_or_else(|| self.oracle.load(Ordering::Acquire))
    }

    /// Read the visible version of `key` into `buf`.
    pub fn read_into(
        &self,
        txn: &Transaction,
        table_id: u32,
        key: u64,
        buf: &mut [u8],
    ) -> Result<()> {
        if !txn.active {
            return Err(TxnError::InactiveTransaction);
        }
        let table = self.table(table_id)?;
        let index = self.index(table_id)?;
        let _stripe = self.locks.lock(table_id, key);
        let Some(mut rid) = index.get(key)? else {
            return Err(TxnError::NotFound);
        };
        loop {
            let mut hdr = table.read_header(rid)?;
            if visible(&hdr, txn.ts, txn.id) {
                // Record the read timestamp (MVTO bookkeeping, a page
                // write even on read-only workloads — paper §6.4).
                if !is_marker(hdr.begin) && hdr.read_ts < txn.ts {
                    hdr.read_ts = txn.ts;
                    table.write_header(rid, hdr)?;
                }
                table.read_payload(rid, buf)?;
                return Ok(());
            }
            if hdr.prev == NO_RID {
                return Err(TxnError::NotFound);
            }
            rid = hdr.prev;
        }
    }

    /// Read the visible version of `key` (allocating).
    pub fn read(&self, txn: &Transaction, table_id: u32, key: u64) -> Result<Vec<u8>> {
        let table = self.table(table_id)?;
        let mut buf = vec![0u8; table.tuple_size];
        self.read_into(txn, table_id, key, &mut buf)?;
        Ok(buf)
    }

    /// Install a new version of `key`. Fails with [`TxnError::Conflict`]
    /// when MVTO ordering would be violated (caller aborts and retries).
    pub fn update(
        &self,
        txn: &mut Transaction,
        table_id: u32,
        key: u64,
        payload: &[u8],
    ) -> Result<()> {
        if !txn.active {
            return Err(TxnError::InactiveTransaction);
        }
        let table = self.table(table_id)?;
        let index = self.index(table_id)?;
        let _stripe = self.locks.lock(table_id, key);
        let Some(rid) = index.get(key)? else {
            return Err(TxnError::NotFound);
        };
        let mut hdr = table.read_header(rid)?;

        if is_marker(hdr.begin) {
            if marker_txn(hdr.begin) == txn.id {
                // Our own pending version: overwrite in place.
                table.write_payload(rid, payload)?;
                let lsn = self.wal.append(&LogRecord {
                    kind: RecordKind::Update,
                    txn: txn.id,
                    table: table_id,
                    key,
                    rid,
                    prev_rid: hdr.prev,
                    prev_lsn: txn.last_lsn,
                    payload: payload.to_vec(),
                })?;
                txn.last_lsn = lsn;
                return Ok(());
            }
            return Err(TxnError::Conflict); // write-write conflict
        }
        if hdr.begin == ABORTED || hdr.begin > txn.ts {
            return Err(TxnError::Conflict); // newer committed version
        }
        if hdr.end != INF {
            return Err(TxnError::Conflict); // superseded concurrently
        }
        if hdr.read_ts > txn.ts {
            return Err(TxnError::Conflict); // read by a later transaction
        }

        let new_hdr = VersionHeader {
            begin: MARK | txn.id,
            end: INF,
            read_ts: 0,
            prev: rid,
            key,
        };
        let new_rid = table.insert_version(new_hdr, payload)?;
        hdr.end = MARK | txn.id;
        table.write_header(rid, hdr)?;
        index.insert(key, new_rid)?;
        let lsn = self.wal.append(&LogRecord {
            kind: RecordKind::Update,
            txn: txn.id,
            table: table_id,
            key,
            rid: new_rid,
            prev_rid: rid,
            prev_lsn: txn.last_lsn,
            payload: payload.to_vec(),
        })?;
        txn.last_lsn = lsn;
        txn.writes.push(WriteEntry {
            table: table_id,
            key,
            new_rid,
            old_rid: rid,
        });
        Ok(())
    }

    /// Insert a fresh key. Fails with [`TxnError::Duplicate`] if a version
    /// chain already exists.
    pub fn insert(
        &self,
        txn: &mut Transaction,
        table_id: u32,
        key: u64,
        payload: &[u8],
    ) -> Result<()> {
        if !txn.active {
            return Err(TxnError::InactiveTransaction);
        }
        let table = self.table(table_id)?;
        let index = self.index(table_id)?;
        let _stripe = self.locks.lock(table_id, key);
        if index.get(key)?.is_some() {
            return Err(TxnError::Duplicate);
        }
        let new_hdr = VersionHeader {
            begin: MARK | txn.id,
            end: INF,
            read_ts: 0,
            prev: NO_RID,
            key,
        };
        let new_rid = table.insert_version(new_hdr, payload)?;
        index.insert(key, new_rid)?;
        let lsn = self.wal.append(&LogRecord {
            kind: RecordKind::Insert,
            txn: txn.id,
            table: table_id,
            key,
            rid: new_rid,
            prev_rid: NO_RID,
            prev_lsn: txn.last_lsn,
            payload: payload.to_vec(),
        })?;
        txn.last_lsn = lsn;
        txn.writes.push(WriteEntry {
            table: table_id,
            key,
            new_rid,
            old_rid: NO_RID,
        });
        Ok(())
    }

    /// Scan up to `limit` visible tuples with keys ≥ `start`, in key order.
    pub fn scan(
        &self,
        txn: &Transaction,
        table_id: u32,
        start: u64,
        limit: usize,
    ) -> Result<Vec<(u64, Vec<u8>)>> {
        if !txn.active {
            return Err(TxnError::InactiveTransaction);
        }
        let index = self.index(table_id)?;
        let mut out = Vec::with_capacity(limit.min(256));
        // Over-fetch from the index; invisible chains are filtered below.
        let candidates = index.scan_from(start, limit.saturating_mul(2).max(limit))?;
        for (key, _) in candidates {
            match self.read(txn, table_id, key) {
                Ok(payload) => {
                    out.push((key, payload));
                    if out.len() >= limit {
                        break;
                    }
                }
                Err(TxnError::NotFound) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Commit: validate MVTO read timestamps, persist the commit record in
    /// the NVM log buffer (the durability point, paper §5.2), then stamp
    /// all versions with the commit timestamp.
    pub fn commit(&self, txn: &mut Transaction) -> Result<()> {
        if !txn.active {
            return Err(TxnError::InactiveTransaction);
        }
        let obs_t = spitfire_obs::op_start();
        txn.active = false;
        self.retire(txn);
        if txn.writes.is_empty() {
            // relaxed: commit statistic.
            self.commits.fetch_add(1, Ordering::Relaxed);
            spitfire_obs::record_op(spitfire_obs::Op::TxnCommit, obs_t, txn.id, "");
            return Ok(()); // read-only: nothing to log or stamp
        }
        // Lock every touched stripe in sorted order (deadlock freedom).
        let mut stripes: Vec<usize> = txn
            .writes
            .iter()
            .map(|w| self.locks.stripe_of(w.table, w.key))
            .collect();
        stripes.sort_unstable();
        stripes.dedup();
        let _guards = self.locks.lock_many(&stripes);

        // Validation: a later transaction may have read a version we are
        // about to supersede; committing would break timestamp order.
        for w in &txn.writes {
            if w.old_rid == NO_RID {
                continue;
            }
            let table = self.table(w.table)?;
            let hdr = table.read_header(w.old_rid)?;
            if hdr.read_ts > txn.ts {
                drop(_guards);
                self.rollback(txn)?;
                return Err(TxnError::Conflict);
            }
        }

        // Durability point.
        self.wal.append(&LogRecord {
            kind: RecordKind::Commit,
            txn: txn.id,
            table: 0,
            key: 0,
            rid: txn.ts,
            prev_rid: NO_RID,
            prev_lsn: txn.last_lsn,
            payload: Vec::new(),
        })?;

        // Stamp versions with the commit timestamp.
        for w in &txn.writes {
            let table = self.table(w.table)?;
            let mut new_hdr = table.read_header(w.new_rid)?;
            new_hdr.begin = txn.ts;
            table.write_header(w.new_rid, new_hdr)?;
            if w.old_rid != NO_RID {
                let mut old_hdr = table.read_header(w.old_rid)?;
                old_hdr.end = txn.ts;
                table.write_header(w.old_rid, old_hdr)?;
            }
        }
        // relaxed: commit statistic.
        self.commits.fetch_add(1, Ordering::Relaxed);
        spitfire_obs::record_op(spitfire_obs::Op::TxnCommit, obs_t, txn.id, "");
        Ok(())
    }

    /// Abort: restore index entries and mark installed versions aborted.
    pub fn abort(&self, txn: &mut Transaction) -> Result<()> {
        if !txn.active {
            return Err(TxnError::InactiveTransaction);
        }
        let obs_t = spitfire_obs::op_start();
        txn.active = false;
        self.retire(txn);
        let result = self.rollback(txn);
        if result.is_ok() {
            spitfire_obs::record_op(spitfire_obs::Op::TxnAbort, obs_t, txn.id, "");
        }
        result
    }

    fn rollback(&self, txn: &Transaction) -> Result<()> {
        for w in txn.writes.iter().rev() {
            let table = self.table(w.table)?;
            let index = self.index(w.table)?;
            let _stripe = self.locks.lock(w.table, w.key);
            // Unhook the new version.
            let mut new_hdr = table.read_header(w.new_rid)?;
            new_hdr.begin = ABORTED;
            table.write_header(w.new_rid, new_hdr)?;
            if w.old_rid != NO_RID {
                let mut old_hdr = table.read_header(w.old_rid)?;
                if old_hdr.end == (MARK | txn.id) {
                    old_hdr.end = INF;
                    table.write_header(w.old_rid, old_hdr)?;
                }
                index.insert(w.key, w.old_rid)?;
            } else {
                index.remove(w.key)?;
            }
        }
        if !txn.writes.is_empty() {
            self.wal.append(&LogRecord {
                kind: RecordKind::Abort,
                txn: txn.id,
                table: 0,
                key: 0,
                rid: NO_RID,
                prev_rid: NO_RID,
                prev_lsn: txn.last_lsn,
                payload: Vec::new(),
            })?;
        }
        // relaxed: abort statistic.
        self.aborts.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Install (or clear) a fault injector on every device the database
    /// touches: all buffer-manager tiers, both WAL devices, and the
    /// snapshot store when one is attached.
    pub fn set_fault_injector(&self, injector: Option<Arc<spitfire_device::FaultInjector>>) {
        self.bm.admin().set_fault_injector(injector.clone());
        self.wal.set_fault_injector(injector.clone());
        if let Some(engine) = self.snapshot_engine() {
            engine.store().set_fault_injector(injector);
        }
    }

    /// Simulate a crash: volatile state everywhere is dropped, unflushed
    /// NVM lines roll back, and the snapshot store drops unsynced blocks.
    pub fn simulate_crash(&self) {
        self.bm.simulate_crash();
        self.wal.simulate_crash();
        if let Some(engine) = self.snapshot_engine() {
            engine.store().simulate_crash();
        }
        self.tables.write().clear();
        self.indexes.write().clear();
        // In-flight transactions died with the process; without this,
        // their abandoned timestamps would pin the vacuum watermark and
        // make every future checkpoint report contention.
        self.active.lock().clear();
    }

    /// Recover after a crash (paper §5.2, Recovery):
    ///
    /// 1. scan the NVM buffer to rebuild the mapping table;
    /// 2. treat the (persistent) NVM log buffer as part of the log;
    /// 3. analysis — split transactions into winners and losers;
    /// 4. redo — re-apply winners' writes with their commit timestamps;
    /// 5. undo — mark losers' versions aborted;
    /// 6. rebuild the per-table indexes from table scans.
    pub fn recover(&self) -> Result<RecoveryStats> {
        let mut stats = RecoveryStats {
            nvm_pages: self.bm.recover_nvm_buffer().len(),
            ..RecoveryStats::default()
        };
        self.bm.recover_page_allocator();

        // Instant restart: restore the newest valid snapshot chain and
        // replay only the WAL tail past its fence. Falls through to the
        // full-history path when no generation is restorable.
        if let Some(engine) = self.snapshot_engine() {
            if self.recover_from_snapshot(&engine, &mut stats)?.is_some() {
                return Ok(stats);
            }
        }

        // Reload the table catalog.
        {
            let guard = self.bm.fetch_read(self.root_catalog)?;
            let magic = guard.read_u64(0)?;
            assert_eq!(magic, ROOT_MAGIC, "root catalog corrupted");
            let mut nb = [0u8; 4];
            guard.read(8, &mut nb)?;
            let n = u32::from_le_bytes(nb) as usize;
            let mut entries = Vec::with_capacity(n);
            for i in 0..n {
                let at = ROOT_HEADER + i * ROOT_ENTRY;
                let mut e = [0u8; ROOT_ENTRY];
                guard.read(at, &mut e)?;
                let table_id = u32::from_le_bytes(e[..4].try_into().expect("4 bytes"));
                let tuple = u32::from_le_bytes(e[4..8].try_into().expect("4 bytes")) as usize;
                let head = u64::from_le_bytes(e[8..16].try_into().expect("8 bytes"));
                entries.push((table_id, tuple, PageId(head)));
            }
            drop(guard);
            let mut tables = self.tables.write();
            for (table_id, tuple, head) in entries {
                let table = Table::open(Arc::clone(&self.bm), table_id, tuple, head)?;
                tables.insert(table_id, Arc::new(table));
            }
        }

        // Analysis, redo, and undo over the full log.
        let records = self.wal.read_all()?;
        let outcome = self.replay_records(&records, &mut stats)?;
        let mut max_ts = outcome.max_ts;

        // Also clear any dangling markers left by transactions that never
        // reached the log for some writes (stamping raced the crash) —
        // without a commit record they are losers by definition; committed
        // transactions' slots were rewritten by redo above.
        // (Handled implicitly: markers only survive on slots whose log
        // records exist, because every install appends before returning.)

        // Rebuild indexes from table scans.
        {
            let tables = self.tables.read();
            let mut indexes = self.indexes.write();
            for (id, table) in tables.iter() {
                let index = Arc::new(BTree::new(Arc::clone(&self.bm))?);
                for rid in 0..table.allocated_slots() {
                    let hdr = table.read_header(rid)?;
                    if hdr.begin == 0 || hdr.begin == ABORTED || is_marker(hdr.begin) {
                        continue;
                    }
                    max_ts = max_ts.max(hdr.begin + 1).max(hdr.read_ts + 1);
                    // Newest committed version: open-ended interval.
                    if hdr.end == INF || is_marker(hdr.end) {
                        index.insert(hdr.key, rid)?;
                        stats.index_entries += 1;
                    }
                }
                indexes.insert(*id, index);
            }
        }

        self.oracle.fetch_max(max_ts, Ordering::AcqRel);
        self.txn_ids.fetch_max(outcome.max_txn, Ordering::AcqRel);
        Ok(stats)
    }

    /// Analysis + redo + undo over `records`, in log order. Shared by
    /// full-history recovery (every surviving record) and instant restart
    /// (the tail past the snapshot fence). Updates `stats` and returns
    /// the winner map and timestamp watermarks.
    pub(crate) fn replay_records(
        &self,
        records: &[LogRecord],
        stats: &mut RecoveryStats,
    ) -> Result<ReplayOutcome> {
        // Analysis.
        let mut commit_ts: HashMap<u64, u64> = HashMap::new();
        let mut seen: HashMap<u64, bool> = HashMap::new(); // txn -> has writes
        for r in records {
            match r.kind {
                RecordKind::Commit => {
                    commit_ts.insert(r.txn, r.rid);
                }
                RecordKind::Update | RecordKind::Insert => {
                    seen.entry(r.txn).or_insert(true);
                }
                _ => {}
            }
        }
        stats.committed = commit_ts.len();
        stats.losers = seen.keys().filter(|t| !commit_ts.contains_key(t)).count();

        // Redo winners / undo losers, in log order.
        let mut max_ts = 2u64;
        let mut max_txn = 1u64;
        for r in records {
            max_txn = max_txn.max(r.txn + 1);
            match r.kind {
                RecordKind::Update | RecordKind::Insert => {
                    let Some(table) = self.tables.read().get(&r.table).cloned() else {
                        continue;
                    };
                    if let Some(&ts) = commit_ts.get(&r.txn) {
                        max_ts = max_ts.max(ts + 1);
                        let hdr = VersionHeader {
                            begin: ts,
                            end: INF,
                            read_ts: 0,
                            prev: r.prev_rid,
                            key: r.key,
                        };
                        table.write_version(r.rid, hdr, &r.payload)?;
                        if r.prev_rid != NO_RID {
                            let mut prev = table.read_header(r.prev_rid)?;
                            prev.end = ts;
                            table.write_header(r.prev_rid, prev)?;
                        }
                        stats.redone += 1;
                    } else {
                        // Loser: make the slot permanently invisible.
                        let mut hdr = table.read_header(r.rid)?;
                        hdr.begin = ABORTED;
                        hdr.key = r.key;
                        table.write_header(r.rid, hdr)?;
                        // Reopen the superseded version if the marker
                        // survived on it.
                        if r.prev_rid != NO_RID {
                            let mut prev = table.read_header(r.prev_rid)?;
                            if is_marker(prev.end) && marker_txn(prev.end) == r.txn {
                                prev.end = INF;
                                table.write_header(r.prev_rid, prev)?;
                            }
                        }
                        stats.undone += 1;
                    }
                }
                _ => {}
            }
        }
        Ok(ReplayOutcome {
            commit_ts,
            max_ts,
            max_txn,
        })
    }
}

/// What [`Database::replay_records`] learned from one replay pass.
pub(crate) struct ReplayOutcome {
    /// Winner transactions and their commit timestamps.
    pub commit_ts: HashMap<u64, u64>,
    /// One past the largest timestamp observed (oracle floor).
    pub max_ts: u64,
    /// One past the largest transaction id observed.
    pub max_txn: u64,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.read().len())
            // relaxed: debug snapshot of advisory statistics.
            .field("commits", &self.commits.load(Ordering::Relaxed))
            .field("aborts", &self.aborts.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}
