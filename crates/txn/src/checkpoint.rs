//! Incremental crash-consistent checkpoints (instant restart).
//!
//! A [`SnapshotEngine`] attached via [`Database::enable_snapshots`] turns
//! [`Database::checkpoint`] from "flush everything and truncate the log"
//! into a *fuzzy incremental checkpoint*:
//!
//! 1. **Fence.** Under the database's fence gate (new transactions
//!    blocked) the checkpointer waits — bounded — for in-flight
//!    transactions to drain, captures a [`WalFence`] (every appended
//!    record durable in the log file), and drains the buffer manager's
//!    dirty-epoch set. A non-quiescent database yields the *retryable*
//!    [`TxnError::CheckpointContended`] instead of silently corrupting
//!    state.
//! 2. **Fuzzy copy.** The gate drops and transactions resume while the
//!    generation's payload is produced. An *incremental* generation
//!    copies the drained dirty-epoch pages under short read guards into
//!    the snapshot store. A *full* generation is **SSD-backed**: it
//!    flushes both buffer tiers and syncs the main SSD instead of
//!    copying O(database) images, so the chain base lives where the data
//!    already belongs and recovery never re-installs it. Either way the
//!    copied/flushed state may contain *post-fence* effects; that is
//!    fine because recovery replays the WAL tail from the fence, and
//!    redo rewrites whole version slots idempotently.
//! 3. **Install + truncate.** The generation's manifest (fence LSN,
//!    catalog root, oracle state, per-table watermarks) is written,
//!    CRC-checked, and atomically installed. The WAL is then truncated to
//!    the *previous* generation's fence — one generation of slack, so a
//!    CRC-mismatch fallback one generation back still finds its tail.
//!
//! Recovery ([`Database::recover`]) loads the newest generation whose
//! whole chain validates, installs its (bounded) delta page images over
//! the SSD-backed base, reopens tables from the manifest (no allocator
//! scans), bulk-loads indexes from the dumped runs, and replays only the
//! WAL tail past the fence — recovery work is bounded by the checkpoint
//! interval, not by database size or history.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use spitfire_core::PageId;
use spitfire_index::BTree;
use spitfire_snapshot::{SnapshotStore, TableMeta};

use crate::db::Database;
use crate::error::TxnError;
use crate::table::{Table, NO_RID};
use crate::wal::{RecordKind, WalFence};
use crate::{RecoveryStats, Result};

/// Tuning knobs for the snapshot engine.
#[derive(Debug, Clone)]
pub struct SnapshotConfig {
    /// Live WAL bytes that arm the periodic checkpoint trigger
    /// ([`Database::checkpoint_if_due`]).
    pub wal_threshold_bytes: u64,
    /// Every `full_every`-th checkpoint writes a full generation (chain
    /// base); the rest are incremental deltas over the dirty-epoch set.
    pub full_every: u64,
    /// How long a checkpoint waits for in-flight transactions to drain
    /// before giving up with [`TxnError::CheckpointContended`].
    pub quiesce_wait: Duration,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            wal_threshold_bytes: 4 << 20,
            full_every: 8,
            quiesce_wait: Duration::from_millis(250),
        }
    }
}

/// Counters from one [`Database::checkpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Generation installed (0 on the legacy flush-and-truncate path).
    pub generation: u64,
    /// Page images captured (legacy path: pages flushed).
    pub pages: usize,
    /// Index entries dumped.
    pub index_entries: usize,
    /// Whether this generation is a full chain base.
    pub full: bool,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

/// The checkpointer state attached to a [`Database`].
pub struct SnapshotEngine {
    store: SnapshotStore,
    cfg: SnapshotConfig,
    /// Checkpoints completed by this engine (drives the full/incremental
    /// cadence).
    checkpoints: AtomicU64,
    /// Fence of the newest installed generation; the *next* install
    /// truncates the WAL here. `None` right after recovery (no truncation
    /// until a new generation exists).
    last_fence: Mutex<Option<WalFence>>,
    /// Force the next generation to be a full chain base (set by
    /// recovery: the dirty-epoch set does not span the crash).
    force_full: AtomicBool,
    last_micros: AtomicU64,
    last_pages: AtomicU64,
}

impl SnapshotEngine {
    /// The snapshot store (test and chaos access: fault injection,
    /// corruption, crash simulation).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Newest installed generation number (0 = none).
    pub fn generation(&self) -> u64 {
        self.store.latest().map_or(0, |e| e.generation)
    }

    /// Wall-clock microseconds of the last completed checkpoint.
    pub fn last_checkpoint_micros(&self) -> u64 {
        // relaxed: advisory gauge.
        self.last_micros.load(Ordering::Relaxed)
    }

    /// Page images captured by the last completed checkpoint.
    pub fn last_checkpoint_pages(&self) -> u64 {
        // relaxed: advisory gauge.
        self.last_pages.load(Ordering::Relaxed)
    }

    /// Checkpoints completed by this engine instance.
    pub fn checkpoints(&self) -> u64 {
        // relaxed: advisory counter.
        self.checkpoints.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SnapshotEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotEngine")
            .field("generation", &self.generation())
            .field("checkpoints", &self.checkpoints())
            .finish_non_exhaustive()
    }
}

impl Database {
    /// Attach a snapshot engine: checkpoints become incremental snapshot
    /// generations and recovery gains the instant-restart path. The store
    /// lives on its own (simulated) SSD device sized to the database page.
    pub fn enable_snapshots(&self, cfg: SnapshotConfig) -> Arc<SnapshotEngine> {
        let store = SnapshotStore::new(
            self.bm.page_size(),
            self.bm.config().time_scale,
            spitfire_device::PersistenceTracking::Counters,
        );
        let engine = Arc::new(SnapshotEngine {
            store,
            cfg,
            checkpoints: AtomicU64::new(0),
            last_fence: Mutex::new(None),
            force_full: AtomicBool::new(false),
            last_micros: AtomicU64::new(0),
            last_pages: AtomicU64::new(0),
        });
        *self.snapshots.write() = Some(Arc::clone(&engine));
        engine
    }

    /// The attached snapshot engine, if any.
    pub fn snapshot_engine(&self) -> Option<Arc<SnapshotEngine>> {
        self.snapshots.read().clone()
    }

    /// Install (or clear) a fault injector on the snapshot store only
    /// (chaos: crash-mid-checkpoint schedules fault snapshot writes
    /// without touching the data or log devices).
    pub fn set_snapshot_fault_injector(
        &self,
        injector: Option<Arc<spitfire_device::FaultInjector>>,
    ) {
        if let Some(engine) = self.snapshot_engine() {
            engine.store.set_fault_injector(injector);
        }
    }

    /// Checkpoint the database.
    ///
    /// With a [`SnapshotEngine`] attached this writes a snapshot
    /// generation (see the module docs); without one it falls back to the
    /// legacy flush-everything-and-truncate protocol. Both paths require
    /// a quiescent database: new transactions are blocked at the fence
    /// gate and, if in-flight transactions do not drain within the
    /// configured wait, the call fails with the *retryable*
    /// [`TxnError::CheckpointContended`] — it never runs concurrently
    /// with live transactions' durability window.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        let engine = self.snapshot_engine();
        let _serial = self.ckpt_serial.lock();
        let started = Instant::now();
        let obs_t = spitfire_obs::op_start();
        let gate = self.fence_gate.write();
        let wait = engine
            .as_ref()
            .map_or(Duration::from_millis(250), |e| e.cfg.quiesce_wait);
        let deadline = Instant::now() + wait;
        while !self.active.lock().is_empty() {
            if Instant::now() >= deadline {
                drop(gate);
                return Err(TxnError::CheckpointContended);
            }
            std::thread::yield_now();
        }
        match engine {
            None => {
                // Legacy: flush both tiers, truncate, stamp a checkpoint
                // record. Runs entirely under the gate.
                let mut flushed = self.bm.flush_all_dirty()?;
                let batch = self.bm.config().maintenance.batch.max(1);
                loop {
                    let n = self.bm.flush_nvm_dirty(batch)?;
                    if n == 0 {
                        break;
                    }
                    flushed += n;
                }
                self.wal.truncate()?;
                self.wal.append(&crate::wal::LogRecord {
                    kind: RecordKind::Checkpoint,
                    txn: 0,
                    table: 0,
                    key: 0,
                    rid: NO_RID,
                    prev_rid: NO_RID,
                    prev_lsn: NO_RID,
                    payload: Vec::new(),
                })?;
                drop(gate);
                spitfire_obs::record_op(spitfire_obs::Op::Checkpoint, obs_t, 0, "legacy");
                Ok(CheckpointStats {
                    generation: 0,
                    pages: flushed,
                    index_entries: 0,
                    full: true,
                    micros: started.elapsed().as_micros() as u64,
                })
            }
            Some(engine) => {
                // Capture everything fence-consistent while quiescent.
                let fence = self.wal.fence()?;
                // relaxed: cadence counter; serialized by ckpt_serial.
                let n = engine.checkpoints.load(Ordering::Relaxed);
                let full = n.is_multiple_of(engine.cfg.full_every.max(1))
                    || engine.force_full.swap(false, Ordering::AcqRel);
                let dirty = self.bm.drain_dirty_epoch();
                let oracle_ts = self.oracle.load(Ordering::Acquire);
                let next_txn_id = self.txn_ids.load(Ordering::Acquire);
                let next_page_id = self.bm.page_count();
                let tables: Vec<Arc<Table>> = self.tables.read().values().cloned().collect();
                let metas: Vec<TableMeta> = tables
                    .iter()
                    .map(|t| TableMeta {
                        id: t.id,
                        tuple_size: t.tuple_size as u32,
                        catalog_head: t.catalog_head().0,
                        allocated_slots: t.allocated_slots(),
                    })
                    .collect();
                drop(gate); // transactions resume; the copy below is fuzzy

                let result = self.write_generation(
                    &engine,
                    fence,
                    full,
                    &dirty,
                    (oracle_ts, next_txn_id, next_page_id),
                    metas,
                );
                match result {
                    Ok((generation, pages, index_entries, full)) => {
                        let micros = started.elapsed().as_micros() as u64;
                        // relaxed: advisory gauges/counters.
                        engine.checkpoints.fetch_add(1, Ordering::Relaxed);
                        engine.last_micros.store(micros, Ordering::Relaxed);
                        engine.last_pages.store(pages as u64, Ordering::Relaxed);
                        spitfire_obs::record_op(
                            spitfire_obs::Op::Checkpoint,
                            obs_t,
                            generation,
                            "snapshot",
                        );
                        Ok(CheckpointStats {
                            generation,
                            pages,
                            index_entries,
                            full,
                            micros,
                        })
                    }
                    Err(e) => {
                        // The generation was never installed; put the
                        // drained pids back so the next attempt still
                        // covers them.
                        self.bm.merge_dirty_epoch(&dirty);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Checkpoint when the live WAL has outgrown the configured
    /// threshold. Contention is not an error here — the caller is a
    /// background loop that simply tries again next period.
    pub fn checkpoint_if_due(&self) -> Result<Option<CheckpointStats>> {
        let Some(engine) = self.snapshot_engine() else {
            return Ok(None);
        };
        if self.wal.log_bytes() < engine.cfg.wal_threshold_bytes {
            return Ok(None);
        }
        match self.checkpoint() {
            Ok(stats) => Ok(Some(stats)),
            Err(TxnError::CheckpointContended) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Stream one snapshot generation: page images (the drained dirty set
    /// for a delta; a full generation is *SSD-backed* instead), full index
    /// dumps, manifest, install, then WAL truncation to the previous fence.
    ///
    /// A full generation copies no page images into the store. It flushes
    /// both buffer tiers — DRAM dirty pages reconcile into their NVM
    /// copies or the SSD, NVM dirty pages write back to the SSD — and
    /// syncs the SSD *before* the generation installs, so the durable
    /// base state lives where it already belongs: the main SSD plus the
    /// persistent NVM buffer. Recovery therefore installs only the
    /// (bounded) delta images and stays O(checkpoint interval), not
    /// O(database). Crash-consistency of the in-place flush: home-slot
    /// overwrites only add effects newer than every fence the WAL still
    /// covers, and tail redo rewrites whole version slots idempotently,
    /// so a half-flushed, never-installed full generation cannot corrupt
    /// the fallback chain.
    fn write_generation(
        &self,
        engine: &SnapshotEngine,
        fence: WalFence,
        full: bool,
        dirty: &[PageId],
        (oracle_ts, next_txn_id, next_page_id): (u64, u64, u64),
        metas: Vec<TableMeta>,
    ) -> Result<(u64, usize, usize, bool)> {
        let mut writer = engine.store.begin(full, fence.lsn);
        let full = writer.is_full(); // the store forces full when empty
        let pages = if full {
            let mut flushed = self.bm.flush_all_dirty()?;
            let batch = self.bm.config().maintenance.batch.max(1);
            loop {
                let n = self.bm.flush_nvm_dirty(batch)?;
                if n == 0 {
                    break;
                }
                flushed += n;
            }
            self.bm.sync_ssd()?;
            flushed
        } else {
            let mut pids: Vec<u64> = dirty.iter().map(|p| p.0).collect();
            pids.sort_unstable();
            let mut buf = vec![0u8; self.bm.page_size()];
            for &pid in &pids {
                {
                    let guard = self.bm.fetch_read(PageId(pid))?;
                    guard.read(0, &mut buf)?;
                }
                writer.page_image(pid, &buf)?;
            }
            pids.len()
        };
        let mut index_entries = 0usize;
        for meta in &metas {
            let index = self.index_handle(meta.id)?;
            let mut start = 0u64;
            loop {
                let chunk = index.scan_from(start, 1024)?;
                let Some(&(last, _)) = chunk.last() else {
                    break;
                };
                writer.index_entries(meta.id, &chunk)?;
                index_entries += chunk.len();
                if last == u64::MAX {
                    break;
                }
                start = last + 1;
            }
        }
        let info = writer.finish(
            self.root_catalog.0,
            next_page_id,
            oracle_ts,
            next_txn_id,
            metas,
        )?;
        // Truncate to the *previous* generation's fence: the newest
        // generation's own tail must stay replayable, and one generation
        // of extra slack keeps the CRC-mismatch fallback recoverable.
        let prev = engine.last_fence.lock().replace(fence);
        if let Some(prev) = prev {
            self.wal.truncate_to(prev)?;
        }
        Ok((info.generation, pages, index_entries, full))
    }

    /// Instant-restart recovery: load the newest valid snapshot chain and
    /// replay only the WAL tail past its fence. Returns `Ok(None)` when
    /// there is nothing to restore (no generation ever installed, or all
    /// chains corrupt) — the caller falls back to full-history recovery.
    pub(crate) fn recover_from_snapshot(
        &self,
        engine: &SnapshotEngine,
        stats: &mut RecoveryStats,
    ) -> Result<Option<()>> {
        engine.store.reload()?;
        let Some(gen) = engine.store.newest_valid() else {
            return Ok(None);
        };

        // Install page images (chain base first; newer deltas overwrite).
        let mut page_err: Option<spitfire_core::BufferError> = None;
        let mut pages_installed = 0usize;
        let mut index_dumps: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
        let manifest = engine.store.load(
            gen,
            |pid, image| {
                if page_err.is_none() {
                    match self.bm.install_page_image(PageId(pid), image) {
                        Ok(()) => pages_installed += 1,
                        Err(e) => page_err = Some(e),
                    }
                }
            },
            |table, entries| {
                index_dumps
                    .entry(table)
                    .or_default()
                    .extend_from_slice(entries);
            },
        )?;
        if let Some(e) = page_err {
            return Err(e.into());
        }
        stats.snapshot_generation = gen;
        stats.snapshot_pages = pages_installed;
        self.bm.sync_ssd()?;
        self.bm.admin().set_next_page_id(manifest.next_page_id);

        // Reopen tables from the manifest: catalog chains only, no
        // allocator scans (the manifest carries the slot watermarks).
        {
            let mut tables = self.tables.write();
            tables.clear();
            for meta in &manifest.tables {
                let table = Table::open_with_slots(
                    Arc::clone(&self.bm),
                    meta.id,
                    meta.tuple_size as usize,
                    PageId(meta.catalog_head),
                    meta.allocated_slots,
                )?;
                tables.insert(meta.id, Arc::new(table));
            }
        }

        // Replay only the tail past the fence.
        let report = self.wal.read_all_checked()?;
        let tail: Vec<crate::wal::LogRecord> = report
            .records
            .into_iter()
            .zip(report.lsns)
            .filter(|&(_, lsn)| lsn >= manifest.fence_lsn)
            .map(|(r, _)| r)
            .collect();
        let outcome = self.replay_records(&tail, stats)?;

        // Rebuild indexes: bulk-load the dumped runs, then fix up the
        // keys the tail touched, in log order (a winner's newest record
        // points the key at its slot; a loser's points back at the
        // version it superseded, or removes a fresh insert).
        {
            let tables = self.tables.read();
            let mut indexes = self.indexes.write();
            indexes.clear();
            for meta in &manifest.tables {
                let entries = index_dumps.remove(&meta.id).unwrap_or_default();
                stats.index_entries += entries.len();
                let tree = BTree::bulk_load(Arc::clone(&self.bm), &entries)?;
                indexes.insert(meta.id, Arc::new(tree));
            }
            // BTreeMap, not HashMap: the application order below shapes
            // the rebuilt tree's split history, and recovery must be
            // deterministic (the chaos explorer's replay-equality
            // invariant depends on it).
            let mut fix: std::collections::BTreeMap<(u32, u64), u64> =
                std::collections::BTreeMap::new();
            for r in &tail {
                match r.kind {
                    RecordKind::Update | RecordKind::Insert => {
                        if outcome.commit_ts.contains_key(&r.txn) {
                            fix.insert((r.table, r.key), r.rid);
                        } else {
                            fix.insert((r.table, r.key), r.prev_rid);
                        }
                    }
                    _ => {}
                }
            }
            for ((table, key), rid) in fix {
                let Some(index) = indexes.get(&table) else {
                    continue;
                };
                if !tables.contains_key(&table) {
                    continue;
                }
                if rid == NO_RID {
                    index.remove(key)?;
                } else {
                    index.insert(key, rid)?;
                }
            }
        }

        self.oracle
            .fetch_max(manifest.oracle_ts.max(outcome.max_ts), Ordering::AcqRel);
        self.txn_ids
            .fetch_max(manifest.next_txn_id.max(outcome.max_txn), Ordering::AcqRel);

        // The dirty-epoch set does not span the crash; force the next
        // generation to re-base. No WAL truncation until it installs.
        engine.force_full.store(true, Ordering::Release);
        *engine.last_fence.lock() = None;
        Ok(Some(()))
    }
}
