//! Background maintenance: version-chain vacuum and the dirty-page
//! flusher.
//!
//! MVTO version chains grow with every update. [`Database::vacuum`]
//! truncates each key's chain below the *watermark* — the oldest active
//! transaction timestamp — and recycles the freed slots, bounding the
//! table footprint of long write-heavy runs.
//!
//! [`BackgroundFlusher`] periodically writes dirty DRAM pages down (the
//! paper's §5.2 background flushing that enables log truncation) and,
//! since the buffer manager grew batched NVM write-back
//! ([`spitfire_core::BufferManager::flush_nvm_dirty`]), also drains dirty
//! NVM-resident pages to SSD a batch at a time — one fsync per batch.
//! NVM pages are persistent, so this is not needed for correctness; it is
//! what lets [`Database::checkpoint`] truncate the WAL past NVM-resident
//! dirty pages and lets evictions discard them without inline I/O.

use std::sync::Arc;
use std::time::Duration;

use crate::db::Database;
use crate::mvto::{is_marker, ABORTED};
use crate::table::{VersionHeader, NO_RID};
use crate::Result;

/// Counters from one [`Database::vacuum`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Version chains inspected.
    pub chains: usize,
    /// Versions unlinked and recycled.
    pub freed: usize,
}

impl Database {
    /// Truncate version chains below the oldest active transaction
    /// timestamp and recycle the freed slots.
    ///
    /// A version is unreachable once a newer *committed* version exists
    /// with `begin ≤ watermark`: every active or future transaction reads
    /// that newer version (or something newer still). Vacuum walks each
    /// chain under its key stripe, cuts at the first such keeper, and
    /// returns everything below the cut to the table's slot free list.
    ///
    /// Note: recycled slots may still be named as `prev` by pre-vacuum log
    /// records. Recovery rebuilds indexes from newest-committed versions
    /// only and fresh transactions never walk below them, so this is
    /// harmless; run [`Database::checkpoint`] before vacuum to truncate
    /// those records entirely.
    pub fn vacuum(&self) -> Result<VacuumStats> {
        let watermark = self.oldest_active_ts();
        let mut stats = VacuumStats::default();
        for table_id in self.table_ids() {
            let table = self.table_handle(table_id)?;
            let index = self.index_handle(table_id)?;
            let mut start = 0u64;
            loop {
                let chunk = index.scan_from(start, 1024)?;
                let Some(&(last_key, _)) = chunk.last() else {
                    break;
                };
                for &(key, _) in &chunk {
                    let _stripe = self.lock_key(table_id, key);
                    // Re-read the head under the stripe (it may have moved).
                    let Some(head) = index.get(key)? else {
                        continue;
                    };
                    stats.chains += 1;
                    let mut rid = head;
                    loop {
                        let hdr = table.read_header(rid)?;
                        let keeper = !is_marker(hdr.begin)
                            && hdr.begin != ABORTED
                            && hdr.begin != 0
                            && hdr.begin <= watermark;
                        if keeper {
                            if hdr.prev != NO_RID {
                                let mut cut = hdr;
                                let tail = cut.prev;
                                cut.prev = NO_RID;
                                table.write_header(rid, cut)?;
                                stats.freed += self.free_chain(&table, tail)?;
                            }
                            break;
                        }
                        if hdr.prev == NO_RID {
                            break;
                        }
                        rid = hdr.prev;
                    }
                }
                if last_key == u64::MAX {
                    break;
                }
                start = last_key + 1;
            }
        }
        Ok(stats)
    }

    fn free_chain(&self, table: &crate::table::Table, mut rid: u64) -> Result<usize> {
        let mut freed = 0;
        while rid != NO_RID {
            let hdr = table.read_header(rid)?;
            // begin = 0 marks the slot as unused for the recovery
            // slot-allocator scan.
            table.write_header(
                rid,
                VersionHeader {
                    begin: 0,
                    end: 0,
                    read_ts: 0,
                    prev: NO_RID,
                    key: 0,
                },
            )?;
            table.recycle_slot(rid);
            freed += 1;
            rid = hdr.prev;
        }
        Ok(freed)
    }
}

/// Periodically flushes dirty DRAM pages to their home location (paper
/// §5.2) and drains dirty NVM pages to SSD in batches. Stops when
/// dropped.
pub struct BackgroundFlusher {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundFlusher {
    /// Start flushing `db`'s buffer manager every `period`. Each pass
    /// flushes dirty DRAM pages, then writes back one batch of dirty NVM
    /// pages (batch size from the buffer manager's maintenance config) —
    /// spreading the NVM drain over passes instead of stalling one pass
    /// on a full sweep. When a snapshot engine is attached, each pass
    /// also checkpoints if the live WAL has crossed the configured
    /// threshold ([`Database::checkpoint_if_due`]); a contended
    /// checkpoint is simply retried next period.
    pub fn start(db: Arc<Database>, period: Duration) -> Self {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let bm = Arc::clone(db.buffer_manager());
            let batch = bm.config().maintenance.batch.max(1);
            // relaxed: shutdown hint; the flusher may run one extra batch.
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(period);
                let _ = bm.flush_all_dirty();
                let _ = bm.flush_nvm_dirty(batch);
                let _ = db.checkpoint_if_due();
            }
        });
        BackgroundFlusher {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for BackgroundFlusher {
    fn drop(&mut self) {
        // relaxed: shutdown hint (see the worker loop).
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for BackgroundFlusher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundFlusher").finish_non_exhaustive()
    }
}
