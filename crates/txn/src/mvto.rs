//! Multi-version timestamp ordering (MVTO) primitives (paper §5.2 \[39\]).
//!
//! Each transaction receives one timestamp at begin. A version is a
//! half-open timestamp interval `[begin, end)`:
//!
//! * transaction `T` **reads** the version whose interval contains
//!   `TS(T)`, recording `TS(T)` in the version's read timestamp;
//! * `T` **writes** a key by superseding its newest version — allowed only
//!   if that version was neither created after `TS(T)` nor read by a
//!   later transaction (otherwise `T` aborts: timestamp ordering would be
//!   violated).
//!
//! Uncommitted versions carry a txn *marker* (`MARK | txn_id`) in their
//! `begin` (and the superseded version's `end`); commit replaces markers
//! with the commit timestamp, abort replaces the new version's `begin`
//! with `ABORTED`.

use parking_lot::{Mutex, MutexGuard};

use crate::table::VersionHeader;

/// Bit distinguishing a txn marker from a committed timestamp.
pub const MARK: u64 = 1 << 63;

/// `end` value of a current (not superseded) version.
pub const INF: u64 = u64::MAX;

/// `begin` value of an aborted version (never visible).
pub const ABORTED: u64 = u64::MAX;

/// Whether `v` is a txn marker.
#[inline]
pub fn is_marker(v: u64) -> bool {
    v != ABORTED && v & MARK != 0
}

/// The txn id inside a marker.
#[inline]
pub fn marker_txn(v: u64) -> u64 {
    v & !MARK
}

/// Visibility of a version to a transaction with timestamp `ts` and id
/// `id` (single-timestamp MVTO).
pub fn visible(h: &VersionHeader, ts: u64, id: u64) -> bool {
    // Begin check: committed before ts, or our own uncommitted write.
    let begin_ok = if h.begin == ABORTED {
        false
    } else if is_marker(h.begin) {
        marker_txn(h.begin) == id
    } else {
        h.begin <= ts
    };
    if !begin_ok {
        return false;
    }
    // End check: still open, or closed after ts. A marker in `end` means a
    // concurrent uncommitted writer superseded it: still visible to others,
    // invisible to the writer itself (it must see its own new version).
    if h.end == INF {
        true
    } else if is_marker(h.end) {
        marker_txn(h.end) != id
    } else {
        ts < h.end
    }
}

/// Striped per-key mutexes serializing MVTO chain manipulation.
///
/// Chain reads, version installs, commit stamping, and abort rollback for
/// one key all run under its stripe. The stripe count bounds false
/// sharing; multi-key commits acquire stripes in sorted order to stay
/// deadlock-free.
pub struct KeyLocks {
    stripes: Vec<Mutex<()>>,
}

impl KeyLocks {
    /// `n` stripes (rounded up to a power of two).
    pub fn new(n: usize) -> Self {
        let n = n.next_power_of_two().max(64);
        KeyLocks {
            stripes: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Stripe index for `(table, key)`.
    pub fn stripe_of(&self, table: u32, key: u64) -> usize {
        // Fibonacci hashing of the pair.
        let h = (key ^ ((table as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.stripes.len() - 1)
    }

    /// Lock the stripe for one key.
    pub fn lock(&self, table: u32, key: u64) -> MutexGuard<'_, ()> {
        self.stripes[self.stripe_of(table, key)].lock()
    }

    /// Lock a *sorted, deduplicated* set of stripe indices.
    pub fn lock_many(&self, sorted_stripes: &[usize]) -> Vec<MutexGuard<'_, ()>> {
        debug_assert!(sorted_stripes.windows(2).all(|w| w[0] < w[1]));
        sorted_stripes
            .iter()
            .map(|&i| self.stripes[i].lock())
            .collect()
    }
}

impl std::fmt::Debug for KeyLocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyLocks")
            .field("stripes", &self.stripes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::NO_RID;

    fn h(begin: u64, end: u64) -> VersionHeader {
        VersionHeader {
            begin,
            end,
            read_ts: 0,
            prev: NO_RID,
            key: 1,
        }
    }

    #[test]
    fn committed_interval_visibility() {
        let v = h(10, 20);
        assert!(!visible(&v, 9, 1));
        assert!(visible(&v, 10, 1));
        assert!(visible(&v, 19, 1));
        assert!(!visible(&v, 20, 1));
        let current = h(10, INF);
        assert!(visible(&current, 10_000, 1));
    }

    #[test]
    fn own_uncommitted_write_is_visible_only_to_self() {
        let v = h(MARK | 7, INF);
        assert!(visible(&v, 100, 7));
        assert!(!visible(&v, 100, 8));
    }

    #[test]
    fn superseded_by_uncommitted_writer() {
        // Old version closed with writer 7's marker: still visible to
        // others, not to 7 (who must read its own new version).
        let v = h(10, MARK | 7);
        assert!(visible(&v, 50, 8));
        assert!(!visible(&v, 50, 7));
    }

    #[test]
    fn aborted_versions_are_never_visible() {
        let v = h(ABORTED, INF);
        assert!(!visible(&v, u64::MAX - 1, 1));
        // ABORTED is not a marker even though its high bit is set.
        assert!(!is_marker(ABORTED));
        assert!(is_marker(MARK | 3));
        assert_eq!(marker_txn(MARK | 3), 3);
    }

    #[test]
    fn stripes_are_stable_and_bounded() {
        let locks = KeyLocks::new(100); // rounds to 128
        let a = locks.stripe_of(1, 42);
        assert_eq!(a, locks.stripe_of(1, 42));
        assert!(a < 128);
        // Locking works and is exclusive per stripe.
        let g = locks.lock(1, 42);
        drop(g);
        let stripes = vec![1usize, 5, 9];
        let guards = locks.lock_many(&stripes);
        assert_eq!(guards.len(), 3);
    }
}
