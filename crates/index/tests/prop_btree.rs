//! Property test: the B+Tree must agree with `std::collections::BTreeMap`
//! for arbitrary operation sequences.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::TimeScale;
use spitfire_index::BTree;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
    Scan(u64, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key universe maximizes collisions, updates, and removes.
    let key = 0..400u64;
    prop_oneof![
        5 => (key.clone(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => key.clone().prop_map(Op::Get),
        2 => key.clone().prop_map(Op::Remove),
        1 => (key, 1..50usize).prop_map(|(k, n)| Op::Scan(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_std_model(
        ops in proptest::collection::vec(op_strategy(), 1..400),
        dram_pages in 4..32usize,
    ) {
        let config = BufferManagerConfig::builder()
            .page_size(512)
            .dram_capacity(dram_pages * 512)
            .nvm_capacity(32 * (512 + 64))
            .policy(MigrationPolicy::lazy())
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        let tree = BTree::new(Arc::new(BufferManager::new(config).unwrap())).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v).unwrap(), model.insert(k, v));
                }
                Op::Get(k) => {
                    prop_assert_eq!(tree.get(k).unwrap(), model.get(&k).copied());
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k).unwrap(), model.remove(&k));
                }
                Op::Scan(start, n) => {
                    let got = tree.scan_from(start, n).unwrap();
                    let want: Vec<(u64, u64)> =
                        model.range(start..).take(n).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
    }
}
