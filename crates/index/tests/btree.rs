//! B+Tree correctness: model comparison, splits, scans, concurrency.

use std::collections::BTreeMap;
use std::sync::Arc;

use spitfire_core::{BufferManager, BufferManagerConfig, MigrationPolicy};
use spitfire_device::TimeScale;
use spitfire_index::BTree;

/// Tiny pages (512 B → 31-key nodes) force deep trees and many splits.
fn small_page_tree() -> BTree {
    let config = BufferManagerConfig::builder()
        .page_size(512)
        .dram_capacity(64 * 512)
        .nvm_capacity(256 * (512 + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    BTree::new(Arc::new(BufferManager::new(config).unwrap())).unwrap()
}

#[test]
fn insert_get_sequential_keys() {
    let t = small_page_tree();
    for k in 0..2000u64 {
        assert_eq!(t.insert(k, k * 10).unwrap(), None);
    }
    for k in 0..2000u64 {
        assert_eq!(t.get(k).unwrap(), Some(k * 10), "key {k}");
    }
    assert_eq!(t.get(2000).unwrap(), None);
    assert!(
        t.height().unwrap() >= 3,
        "2000 keys in 31-key nodes must be deep"
    );
}

#[test]
fn insert_get_reverse_and_random_order() {
    let t = small_page_tree();
    // Reverse order stresses splits at the left edge.
    for k in (0..1000u64).rev() {
        t.insert(k, k + 1).unwrap();
    }
    // Pseudo-random permutation (multiplicative hash) for the second batch.
    for i in 0..1000u64 {
        let k = 1000 + (i.wrapping_mul(2654435761) % 1000);
        t.insert(k, k + 1).unwrap();
    }
    for k in 0..1000u64 {
        assert_eq!(t.get(k).unwrap(), Some(k + 1));
    }
}

#[test]
fn upsert_returns_previous_value() {
    let t = small_page_tree();
    assert_eq!(t.insert(7, 70).unwrap(), None);
    assert_eq!(t.insert(7, 71).unwrap(), Some(70));
    assert_eq!(t.insert(7, 72).unwrap(), Some(71));
    assert_eq!(t.get(7).unwrap(), Some(72));
}

#[test]
fn remove_deletes_and_tolerates_missing() {
    let t = small_page_tree();
    for k in 0..500u64 {
        t.insert(k, k).unwrap();
    }
    for k in (0..500u64).step_by(2) {
        assert_eq!(t.remove(k).unwrap(), Some(k));
    }
    for k in 0..500u64 {
        let expect = if k % 2 == 0 { None } else { Some(k) };
        assert_eq!(t.get(k).unwrap(), expect, "key {k}");
    }
    assert_eq!(t.remove(9999).unwrap(), None);
    assert_eq!(t.remove(0).unwrap(), None, "double remove");
}

#[test]
fn matches_btreemap_model() {
    let t = small_page_tree();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut x = 0x243F_6A88_85A3_08D3u64; // deterministic xorshift
    for step in 0..6000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = x % 1500;
        match step % 5 {
            0..=2 => {
                let expected = model.insert(key, step as u64);
                assert_eq!(
                    t.insert(key, step as u64).unwrap(),
                    expected,
                    "insert {key}"
                );
            }
            3 => {
                assert_eq!(t.get(key).unwrap(), model.get(&key).copied(), "get {key}");
            }
            _ => {
                assert_eq!(t.remove(key).unwrap(), model.remove(&key), "remove {key}");
            }
        }
    }
    for (k, v) in &model {
        assert_eq!(t.get(*k).unwrap(), Some(*v));
    }
}

#[test]
fn scan_returns_sorted_ranges() {
    let t = small_page_tree();
    for k in (0..1000u64).step_by(3) {
        t.insert(k, k * 2).unwrap();
    }
    let hits = t.scan_from(300, 10).unwrap();
    assert_eq!(hits.len(), 10);
    assert_eq!(hits[0], (300, 600));
    for w in hits.windows(2) {
        assert!(w[0].0 < w[1].0, "scan must be sorted");
        assert_eq!(w[1].0 - w[0].0, 3);
    }
    // Scan starting between keys begins at the next key.
    let hits = t.scan_from(301, 2).unwrap();
    assert_eq!(hits[0].0, 303);
    // Scan past the end is empty.
    assert!(t.scan_from(10_000, 5).unwrap().is_empty());
    // Scan crossing many leaves.
    let all = t.scan_from(0, 10_000).unwrap();
    assert_eq!(all.len(), 334);
}

#[test]
fn concurrent_inserts_disjoint_ranges() {
    let t = Arc::new(small_page_tree());
    const THREADS: u64 = 8;
    const PER: u64 = 800;
    let handles: Vec<_> = (0..THREADS)
        .map(|tid| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..PER {
                    let k = tid * PER + i;
                    t.insert(k, k ^ 0xFF).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for k in 0..THREADS * PER {
        assert_eq!(t.get(k).unwrap(), Some(k ^ 0xFF), "key {k}");
    }
    let all = t.scan_from(0, usize::MAX).unwrap();
    assert_eq!(all.len() as u64, THREADS * PER);
}

#[test]
fn concurrent_readers_and_writers() {
    let t = Arc::new(small_page_tree());
    for k in 0..2000u64 {
        t.insert(k, 1).unwrap();
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..2u64)
        .map(|tid| {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut round = 1u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for k in (tid * 1000)..(tid * 1000 + 200) {
                        t.insert(k, round).unwrap();
                    }
                    round += 1;
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4u64)
        .map(|_| {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for k in 0..2000u64 {
                    let v = t.get(k).unwrap();
                    assert!(v.is_some(), "key {k} must always be present");
                }
            })
        })
        .collect();
    for h in readers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in writers {
        h.join().unwrap();
    }
}

#[test]
fn tree_survives_buffer_churn_to_ssd() {
    // Buffers far smaller than the tree: nodes round-trip through SSD.
    let config = BufferManagerConfig::builder()
        .page_size(512)
        .dram_capacity(8 * 512)
        .nvm_capacity(16 * (512 + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let t = BTree::new(Arc::new(BufferManager::new(config).unwrap())).unwrap();
    for k in 0..3000u64 {
        t.insert(k, k + 7).unwrap();
    }
    for k in 0..3000u64 {
        assert_eq!(t.get(k).unwrap(), Some(k + 7), "key {k}");
    }
}

#[test]
fn reopen_from_root_page() {
    let config = BufferManagerConfig::builder()
        .page_size(512)
        .dram_capacity(32 * 512)
        .nvm_capacity(64 * (512 + 64))
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = Arc::new(BufferManager::new(config).unwrap());
    let t = BTree::new(Arc::clone(&bm)).unwrap();
    for k in 0..800u64 {
        t.insert(k, k).unwrap();
    }
    let root = t.root_page();
    drop(t);
    let t2 = BTree::open(bm, root);
    for k in 0..800u64 {
        assert_eq!(t2.get(k).unwrap(), Some(k));
    }
}

fn small_page_bm() -> Arc<BufferManager> {
    let config = BufferManagerConfig::builder()
        .page_size(512)
        .dram_capacity(64 * 512)
        .nvm_capacity(256 * (512 + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    Arc::new(BufferManager::new(config).unwrap())
}

#[test]
fn bulk_load_matches_model_and_scans() {
    let entries: Vec<(u64, u64)> = (0..5000u64).map(|k| (k * 3, k * 3 + 1)).collect();
    let t = BTree::bulk_load(small_page_bm(), &entries).unwrap();
    for &(k, v) in &entries {
        assert_eq!(t.get(k).unwrap(), Some(v), "key {k}");
    }
    assert_eq!(t.get(1).unwrap(), None);
    assert!(t.height().unwrap() >= 3, "5000 keys in 31-key nodes");
    // Full range scan through the leaf sibling chain.
    let mut got = Vec::new();
    let mut start = 0u64;
    loop {
        let chunk = t.scan_from(start, 700).unwrap();
        let Some(&(last, _)) = chunk.last() else {
            break;
        };
        got.extend_from_slice(&chunk);
        if last == u64::MAX {
            break;
        }
        start = last + 1;
    }
    assert_eq!(got, entries);
}

#[test]
fn bulk_load_edge_sizes() {
    // Empty.
    let t = BTree::bulk_load(small_page_bm(), &[]).unwrap();
    assert_eq!(t.get(0).unwrap(), None);
    assert_eq!(t.insert(5, 50).unwrap(), None);
    assert_eq!(t.get(5).unwrap(), Some(50));
    // Single entry.
    let t = BTree::bulk_load(small_page_bm(), &[(9, 90)]).unwrap();
    assert_eq!(t.get(9).unwrap(), Some(90));
    // Exactly one full leaf plus one spilled key (31-key nodes).
    let entries: Vec<(u64, u64)> = (0..28u64).map(|k| (k, k)).collect();
    let t = BTree::bulk_load(small_page_bm(), &entries).unwrap();
    for &(k, v) in &entries {
        assert_eq!(t.get(k).unwrap(), Some(v));
    }
}

#[test]
fn bulk_loaded_tree_accepts_mutations() {
    let entries: Vec<(u64, u64)> = (0..2000u64).map(|k| (k * 2, k)).collect();
    let t = BTree::bulk_load(small_page_bm(), &entries).unwrap();
    // Insert between the bulk-loaded keys, forcing splits in packed leaves.
    for k in 0..2000u64 {
        assert_eq!(t.insert(k * 2 + 1, k + 1_000_000).unwrap(), None);
    }
    for k in 0..2000u64 {
        assert_eq!(t.get(k * 2).unwrap(), Some(k));
        assert_eq!(t.get(k * 2 + 1).unwrap(), Some(k + 1_000_000));
    }
    // Overwrite and remove still behave.
    assert_eq!(t.insert(0, 77).unwrap(), Some(0));
    assert_eq!(t.remove(2).unwrap(), Some(1));
    assert_eq!(t.get(2).unwrap(), None);
}
