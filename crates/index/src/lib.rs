//! Concurrent B+Tree with optimistic lock coupling over Spitfire pages.
//!
//! The paper (§5.2) implements "a concurrent B+Tree with optimistic lock
//! coupling on top of Spitfire \[24\]" because, once NVM removes most of the
//! I/O bottleneck, index synchronization becomes the next contention point.
//! This crate is that index:
//!
//! * every node is a buffer-managed page, so the tree spans the whole
//!   DRAM–NVM–SSD hierarchy and hot nodes migrate upward like any other
//!   page;
//! * readers descend optimistically, validating per-node version latches
//!   ([`spitfire_sync::VersionLatch`]) instead of taking shared locks;
//! * writers take a write latch only on the leaf they modify; structural
//!   changes (splits) restart the descent pessimistically, splitting full
//!   nodes top-down while never holding more than two write latches.
//!
//! Keys and values are `u64` — the workloads in `spitfire-wkld` map YCSB
//! primary keys and TPC-C composite keys onto `u64` and store tuple
//! locations as values.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod node;
mod tree;

pub use tree::{BTree, IndexError};

/// Result alias for index operations.
pub type Result<T> = std::result::Result<T, IndexError>;
