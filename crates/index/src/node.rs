//! On-page B+Tree node layout.
//!
//! ```text
//! offset  size  field
//! 0       1     tag: 1 = leaf, 2 = inner
//! 2..4    2     count (number of keys)
//! 8..16   8     leaf: right-sibling page id (u64::MAX = none)
//!               inner: leftmost child page id
//! 16..    16·i  entries: (key u64, value-or-right-child u64)
//! ```
//!
//! All node reads and writes go through a [`spitfire_core::PageGuard`], so
//! every probe is charged to the device the node currently resides on —
//! index traversals on NVM-resident nodes pay NVM latency, exactly the
//! effect the paper measures.
//!
//! Readers parse nodes *optimistically* (a concurrent writer may be
//! mid-modification); every accessor therefore clamps counts and tolerates
//! garbage, and the caller validates the node's version latch before
//! trusting any value read.

use spitfire_core::{PageGuard, PageId};

use crate::Result;

/// Byte offset of the entry array.
pub(crate) const HEADER: usize = 16;
/// Bytes per entry (key + value/child).
pub(crate) const ENTRY: usize = 16;

/// Sentinel page id meaning "no sibling".
pub(crate) const NO_SIBLING: u64 = u64::MAX;

/// Node type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeTag {
    /// Key → value entries.
    Leaf,
    /// Key → child separators.
    Inner,
}

/// A parsed view over a node page. Holds the page guard for its lifetime.
pub(crate) struct Node<'a> {
    pub(crate) guard: PageGuard<'a>,
    capacity: usize,
}

impl<'a> Node<'a> {
    /// Wrap a fetched page.
    pub(crate) fn new(guard: PageGuard<'a>) -> Self {
        let capacity = (guard.page_size() - HEADER) / ENTRY;
        Node { guard, capacity }
    }

    /// Maximum number of keys a node holds.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Initialize this page as an empty node of the given kind.
    pub(crate) fn format(&self, tag: NodeTag, sibling_or_child: u64) -> Result<()> {
        let tag_byte = match tag {
            NodeTag::Leaf => 1u8,
            NodeTag::Inner => 2u8,
        };
        let mut header = [0u8; HEADER];
        header[0] = tag_byte;
        header[8..16].copy_from_slice(&sibling_or_child.to_le_bytes());
        self.guard.write(0, &header)?;
        Ok(())
    }

    /// The node's tag; `None` if the byte is torn garbage (caller
    /// restarts).
    pub(crate) fn tag(&self) -> Result<Option<NodeTag>> {
        let mut b = [0u8; 1];
        self.guard.read(0, &mut b)?;
        Ok(match b[0] {
            1 => Some(NodeTag::Leaf),
            2 => Some(NodeTag::Inner),
            _ => None,
        })
    }

    /// Number of keys, clamped to capacity (a torn read may exceed it).
    pub(crate) fn count(&self) -> Result<usize> {
        let mut b = [0u8; 2];
        self.guard.read(2, &mut b)?;
        Ok((u16::from_le_bytes(b) as usize).min(self.capacity))
    }

    pub(crate) fn set_count(&self, count: usize) -> Result<()> {
        self.guard.write(2, &(count as u16).to_le_bytes())?;
        Ok(())
    }

    /// Leaf: right sibling. Inner: leftmost child.
    pub(crate) fn aux(&self) -> Result<u64> {
        Ok(self.guard.read_u64(8)?)
    }

    pub(crate) fn set_aux(&self, v: u64) -> Result<()> {
        Ok(self.guard.write_u64(8, v)?)
    }

    pub(crate) fn key(&self, i: usize) -> Result<u64> {
        Ok(self.guard.read_u64(HEADER + i * ENTRY)?)
    }

    /// Leaf: value of entry `i`. Inner: child to the right of key `i`.
    pub(crate) fn value(&self, i: usize) -> Result<u64> {
        Ok(self.guard.read_u64(HEADER + i * ENTRY + 8)?)
    }

    pub(crate) fn set_entry(&self, i: usize, key: u64, value: u64) -> Result<()> {
        let mut e = [0u8; ENTRY];
        e[..8].copy_from_slice(&key.to_le_bytes());
        e[8..].copy_from_slice(&value.to_le_bytes());
        self.guard.write(HEADER + i * ENTRY, &e)?;
        Ok(())
    }

    /// Read entries `[from, to)` as `(key, value)` pairs in one transfer.
    pub(crate) fn entries(&self, from: usize, to: usize) -> Result<Vec<(u64, u64)>> {
        let n = to.saturating_sub(from);
        let mut buf = vec![0u8; n * ENTRY];
        self.guard.read(HEADER + from * ENTRY, &mut buf)?;
        Ok(buf
            .chunks_exact(ENTRY)
            .map(|c| {
                (
                    u64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                    u64::from_le_bytes(c[8..].try_into().expect("8 bytes")),
                )
            })
            .collect())
    }

    /// Write entries starting at index `at` in one transfer.
    pub(crate) fn write_entries(&self, at: usize, entries: &[(u64, u64)]) -> Result<()> {
        let mut buf = vec![0u8; entries.len() * ENTRY];
        for (chunk, (k, v)) in buf.chunks_exact_mut(ENTRY).zip(entries) {
            chunk[..8].copy_from_slice(&k.to_le_bytes());
            chunk[8..].copy_from_slice(&v.to_le_bytes());
        }
        self.guard.write(HEADER + at * ENTRY, &buf)?;
        Ok(())
    }

    /// Binary search for `key` among the node's keys: `Ok(i)` exact match,
    /// `Err(i)` insertion point.
    pub(crate) fn search(
        &self,
        key: u64,
        count: usize,
    ) -> Result<std::result::Result<usize, usize>> {
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = self.key(mid)?;
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(Ok(mid)),
            }
        }
        Ok(Err(lo))
    }

    /// Inner node: the child page covering `key`.
    pub(crate) fn child_for(&self, key: u64, count: usize) -> Result<PageId> {
        let slot = match self.search(key, count)? {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        };
        let child = match slot {
            // Exact match or in the range of key i: right child of key i.
            Some(i) => self.value(i)?,
            // Before the first key: leftmost child.
            None => self.aux()?,
        };
        Ok(PageId(child))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spitfire_core::{AccessIntent, BufferManager, BufferManagerConfig};
    use spitfire_device::TimeScale;

    fn bm() -> BufferManager {
        let config = BufferManagerConfig::builder()
            .page_size(1024)
            .dram_capacity(16 * 1024)
            .nvm_capacity(0)
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        BufferManager::new(config).unwrap()
    }

    #[test]
    fn format_and_parse_round_trip() {
        let bm = bm();
        let pid = bm.allocate_page().unwrap();
        let guard = bm.fetch(pid, AccessIntent::Write).unwrap();
        let node = Node::new(guard);
        assert_eq!(node.capacity(), (1024 - HEADER) / ENTRY);
        node.format(NodeTag::Leaf, NO_SIBLING).unwrap();
        assert_eq!(node.tag().unwrap(), Some(NodeTag::Leaf));
        assert_eq!(node.count().unwrap(), 0);
        assert_eq!(node.aux().unwrap(), NO_SIBLING);

        node.set_entry(0, 10, 100).unwrap();
        node.set_entry(1, 20, 200).unwrap();
        node.set_count(2).unwrap();
        assert_eq!(node.key(0).unwrap(), 10);
        assert_eq!(node.value(1).unwrap(), 200);
        assert_eq!(node.entries(0, 2).unwrap(), vec![(10, 100), (20, 200)]);
    }

    #[test]
    fn search_finds_positions() {
        let bm = bm();
        let pid = bm.allocate_page().unwrap();
        let node = Node::new(bm.fetch(pid, AccessIntent::Write).unwrap());
        node.format(NodeTag::Leaf, NO_SIBLING).unwrap();
        node.write_entries(0, &[(10, 1), (20, 2), (30, 3)]).unwrap();
        node.set_count(3).unwrap();
        assert_eq!(node.search(20, 3).unwrap(), Ok(1));
        assert_eq!(node.search(5, 3).unwrap(), Err(0));
        assert_eq!(node.search(25, 3).unwrap(), Err(2));
        assert_eq!(node.search(35, 3).unwrap(), Err(3));
    }

    #[test]
    fn child_for_picks_correct_subtree() {
        let bm = bm();
        let pid = bm.allocate_page().unwrap();
        let node = Node::new(bm.fetch(pid, AccessIntent::Write).unwrap());
        // Children: [left=7] 10 [8] 20 [9]
        node.format(NodeTag::Inner, 7).unwrap();
        node.write_entries(0, &[(10, 8), (20, 9)]).unwrap();
        node.set_count(2).unwrap();
        assert_eq!(node.child_for(5, 2).unwrap(), PageId(7));
        assert_eq!(node.child_for(10, 2).unwrap(), PageId(8));
        assert_eq!(node.child_for(15, 2).unwrap(), PageId(8));
        assert_eq!(node.child_for(20, 2).unwrap(), PageId(9));
        assert_eq!(node.child_for(99, 2).unwrap(), PageId(9));
    }

    #[test]
    fn count_is_clamped_to_capacity() {
        let bm = bm();
        let pid = bm.allocate_page().unwrap();
        let node = Node::new(bm.fetch(pid, AccessIntent::Write).unwrap());
        node.format(NodeTag::Leaf, NO_SIBLING).unwrap();
        // Simulate a torn count read.
        node.guard.write(2, &u16::MAX.to_le_bytes()).unwrap();
        assert_eq!(node.count().unwrap(), node.capacity());
    }

    #[test]
    fn unknown_tag_reports_none() {
        let bm = bm();
        let pid = bm.allocate_page().unwrap();
        let node = Node::new(bm.fetch(pid, AccessIntent::Write).unwrap());
        node.guard.write(0, &[0xFF]).unwrap();
        assert_eq!(node.tag().unwrap(), None);
    }
}
