//! The concurrent B+Tree (optimistic lock coupling).
//!
//! Reads descend without taking locks: each node has a version latch; the
//! reader samples the version, reads the node through its page guard, and
//! re-validates. Writers bump the version, forcing concurrent readers to
//! restart (Leis et al., the paper's \[24\]).
//!
//! Inserts use the optimistic path while the target leaf has room. When a
//! split is needed they fall back to a pessimistic top-down descent that
//! holds at most two write latches (parent + child) and splits every full
//! node on the way down, so the leaf insert itself never propagates
//! upward. Root splits additionally hold the tree's root pointer lock;
//! since splits are amortized-rare this serialization is invisible in the
//! workloads.

use std::sync::Arc;

use parking_lot::RwLock;
use spitfire_core::{AccessIntent, BufferError, BufferManager, PageId};
use spitfire_sync::{ConcurrentMap, VersionLatch};

use crate::node::{Node, NodeTag, NO_SIBLING};
use crate::Result;

/// Maximum optimistic restarts before reporting a corrupted tree.
const MAX_RESTARTS: usize = 1_000_000;

/// Restart backoff: on hosts with fewer cores than workers, a reader can
/// burn its entire scheduler quantum restarting against a write latch whose
/// holder is descheduled — yield, then sleep, so the writer (or whatever
/// else starves the core) can finish.
#[inline]
fn backoff(attempt: usize) {
    if attempt < 4 {
        std::hint::spin_loop();
    } else if attempt < 512 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
}

/// Errors surfaced by the index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The underlying buffer manager failed.
    Buffer(BufferError),
    /// An operation restarted too many times (corrupted structure or a
    /// livelock — never expected in healthy trees).
    RestartLimit,
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Buffer(e) => write!(f, "buffer error: {e}"),
            IndexError::RestartLimit => write!(f, "optimistic restart limit exceeded"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Buffer(e) => Some(e),
            IndexError::RestartLimit => None,
        }
    }
}

impl From<BufferError> for IndexError {
    fn from(e: BufferError) -> Self {
        IndexError::Buffer(e)
    }
}

/// Outcome of one optimistic attempt.
enum Attempt<T> {
    Done(T),
    Restart,
}

/// A concurrent B+Tree mapping `u64` keys to `u64` values, stored in
/// buffer-managed pages.
pub struct BTree {
    bm: Arc<BufferManager>,
    root: RwLock<PageId>,
    latches: ConcurrentMap<u64, Arc<VersionLatch>>,
}

impl BTree {
    /// Create an empty tree (allocates the root leaf).
    pub fn new(bm: Arc<BufferManager>) -> Result<Self> {
        let root = bm.allocate_page()?;
        {
            let guard = bm.fetch(root, AccessIntent::Write)?;
            let node = Node::new(guard);
            node.format(NodeTag::Leaf, NO_SIBLING)?;
        }
        Ok(BTree {
            bm,
            root: RwLock::new(root),
            latches: ConcurrentMap::new(),
        })
    }

    /// Re-open a tree whose root page is already known (after recovery).
    pub fn open(bm: Arc<BufferManager>, root: PageId) -> Self {
        BTree {
            bm,
            root: RwLock::new(root),
            latches: ConcurrentMap::new(),
        }
    }

    /// Build a tree in one pass from sorted, strictly-ascending
    /// `(key, value)` entries — snapshot recovery's index rebuild path.
    /// Leaves are packed directly and inner levels assembled bottom-up:
    /// no per-key descent, no latching (the tree is private until
    /// returned). Panics in debug builds if `entries` is not sorted with
    /// unique keys.
    pub fn bulk_load(bm: Arc<BufferManager>, entries: &[(u64, u64)]) -> Result<Self> {
        if entries.is_empty() {
            return Self::new(bm);
        }
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires sorted unique keys"
        );
        let capacity = (bm.config().page_size - crate::node::HEADER) / crate::node::ENTRY;
        // Pack to ~7/8 so early post-recovery inserts do not split every
        // node they touch.
        let fill = (capacity - capacity / 8).max(1);

        // Leaves: allocate ids up front so each can name its right sibling.
        let n_leaves = entries.len().div_ceil(fill);
        let leaf_pids = (0..n_leaves)
            .map(|_| bm.allocate_page())
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let mut level: Vec<(u64, PageId)> = Vec::with_capacity(n_leaves);
        for (i, chunk) in entries.chunks(fill).enumerate() {
            let pid = leaf_pids[i];
            let sibling = leaf_pids.get(i + 1).map_or(NO_SIBLING, |p| p.0);
            let guard = bm.fetch(pid, AccessIntent::Write)?;
            let node = Node::new(guard);
            node.format(NodeTag::Leaf, sibling)?;
            node.write_entries(0, chunk)?;
            node.set_count(chunk.len())?;
            level.push((chunk[0].0, pid));
        }
        // Inner levels bottom-up until one node remains. Each inner node
        // takes `fill + 1` children: the leftmost via `aux`, the rest as
        // (first-key, child) separator entries — matching `child_for`.
        while level.len() > 1 {
            let mut next: Vec<(u64, PageId)> = Vec::with_capacity(level.len().div_ceil(fill + 1));
            for group in level.chunks(fill + 1) {
                let pid = bm.allocate_page()?;
                let guard = bm.fetch(pid, AccessIntent::Write)?;
                let node = Node::new(guard);
                node.format(NodeTag::Inner, group[0].1 .0)?;
                let seps: Vec<(u64, u64)> = group[1..].iter().map(|&(k, p)| (k, p.0)).collect();
                node.write_entries(0, &seps)?;
                node.set_count(seps.len())?;
                next.push((group[0].0, pid));
            }
            level = next;
        }
        Ok(BTree {
            bm,
            root: RwLock::new(level[0].1),
            latches: ConcurrentMap::new(),
        })
    }

    /// The current root page id (persist this to reopen the tree).
    pub fn root_page(&self) -> PageId {
        *self.root.read()
    }

    /// The buffer manager backing this tree.
    pub fn buffer_manager(&self) -> &BufferManager {
        &self.bm
    }

    fn latch(&self, pid: PageId) -> Arc<VersionLatch> {
        self.latches
            .get_or_insert_with(pid.0, || Arc::new(VersionLatch::new()))
    }

    /// Point lookup.
    pub fn get(&self, key: u64) -> Result<Option<u64>> {
        for attempt in 0..MAX_RESTARTS {
            match self.try_get(key)? {
                Attempt::Done(v) => return Ok(v),
                Attempt::Restart => backoff(attempt),
            }
        }
        Err(IndexError::RestartLimit)
    }

    fn try_get(&self, key: u64) -> Result<Attempt<Option<u64>>> {
        let mut pid = *self.root.read();
        let mut latch = self.latch(pid);
        let Ok(mut version) = latch.read_lock() else {
            return Ok(Attempt::Restart);
        };
        if *self.root.read() != pid {
            return Ok(Attempt::Restart);
        }
        loop {
            let guard = match self.bm.fetch(pid, AccessIntent::Read) {
                Ok(g) => g,
                // A torn child pointer can reference an unallocated page.
                Err(BufferError::UnknownPage(_)) => return Ok(Attempt::Restart),
                Err(e) => return Err(e.into()),
            };
            let node = Node::new(guard);
            let Some(tag) = node.tag()? else {
                return Ok(Attempt::Restart);
            };
            let count = node.count()?;
            match tag {
                NodeTag::Inner => {
                    let child = node.child_for(key, count)?;
                    let child_latch = self.latch(child);
                    let Ok(child_version) = child_latch.read_lock() else {
                        return Ok(Attempt::Restart);
                    };
                    if latch.read_unlock(version).is_err() {
                        return Ok(Attempt::Restart);
                    }
                    pid = child;
                    latch = child_latch;
                    version = child_version;
                }
                NodeTag::Leaf => {
                    let result = match node.search(key, count)? {
                        Ok(i) => Some(node.value(i)?),
                        Err(_) => None,
                    };
                    if latch.read_unlock(version).is_err() {
                        return Ok(Attempt::Restart);
                    }
                    return Ok(Attempt::Done(result));
                }
            }
        }
    }

    /// Insert or update; returns the previous value for `key`, if any.
    pub fn insert(&self, key: u64, value: u64) -> Result<Option<u64>> {
        for attempt in 0..MAX_RESTARTS {
            match self.try_insert_optimistic(key, value)? {
                Attempt::Done(Some(outcome)) => return Ok(outcome),
                // Leaf full: go pessimistic (splits on the way down).
                Attempt::Done(None) => match self.insert_pessimistic(key, value)? {
                    Attempt::Done(outcome) => return Ok(outcome),
                    Attempt::Restart => backoff(attempt),
                },
                Attempt::Restart => backoff(attempt),
            }
        }
        Err(IndexError::RestartLimit)
    }

    /// Optimistic insert. `Done(Some(old))` on success; `Done(None)` when
    /// the leaf is full (caller switches to the pessimistic path).
    #[allow(clippy::type_complexity)]
    fn try_insert_optimistic(&self, key: u64, value: u64) -> Result<Attempt<Option<Option<u64>>>> {
        let mut pid = *self.root.read();
        let mut latch = self.latch(pid);
        let Ok(mut version) = latch.read_lock() else {
            return Ok(Attempt::Restart);
        };
        if *self.root.read() != pid {
            return Ok(Attempt::Restart);
        }
        loop {
            let guard = match self.bm.fetch(pid, AccessIntent::Write) {
                Ok(g) => g,
                Err(BufferError::UnknownPage(_)) => return Ok(Attempt::Restart),
                Err(e) => return Err(e.into()),
            };
            let node = Node::new(guard);
            let Some(tag) = node.tag()? else {
                return Ok(Attempt::Restart);
            };
            let count = node.count()?;
            match tag {
                NodeTag::Inner => {
                    let child = node.child_for(key, count)?;
                    let child_latch = self.latch(child);
                    let Ok(child_version) = child_latch.read_lock() else {
                        return Ok(Attempt::Restart);
                    };
                    if latch.read_unlock(version).is_err() {
                        return Ok(Attempt::Restart);
                    }
                    pid = child;
                    latch = child_latch;
                    version = child_version;
                }
                NodeTag::Leaf => {
                    if latch.upgrade(version).is_err() {
                        return Ok(Attempt::Restart);
                    }
                    // Write latch held: the parse is now stable. All
                    // fallible work happens inside the closure so the latch
                    // is always released below.
                    let result = (|| -> Result<Option<Option<u64>>> {
                        let count = node.count()?;
                        match node.search(key, count)? {
                            Ok(i) => {
                                let old = node.value(i)?;
                                node.set_entry(i, key, value)?;
                                Ok(Some(Some(old)))
                            }
                            Err(pos) => {
                                if count >= node.capacity() {
                                    return Ok(None); // full: pessimistic path
                                }
                                let tail = node.entries(pos, count)?;
                                node.write_entries(pos + 1, &tail)?;
                                node.set_entry(pos, key, value)?;
                                node.set_count(count + 1)?;
                                Ok(Some(None))
                            }
                        }
                    })();
                    latch.write_unlock();
                    return Ok(Attempt::Done(result?));
                }
            }
        }
    }

    /// Pessimistic top-down insert: hold the root pointer lock, write-latch
    /// parent + child, split every full node encountered. Write latches are
    /// held by RAII guards so transient buffer errors (`?`) cannot leak a
    /// locked latch and livelock the subtree.
    fn insert_pessimistic(&self, key: u64, value: u64) -> Result<Attempt<Option<u64>>> {
        /// RAII write latch: unlocks (bumping the version) on drop.
        struct Held(Option<Arc<VersionLatch>>);
        impl Held {
            fn acquire(latch: Arc<VersionLatch>) -> Option<Held> {
                latch.write_lock().ok()?;
                Some(Held(Some(latch)))
            }
        }
        impl Drop for Held {
            fn drop(&mut self) {
                if let Some(latch) = self.0.take() {
                    latch.write_unlock();
                }
            }
        }

        let mut root_guard = self.root.write();
        let mut pid = *root_guard;
        let Some(mut held) = Held::acquire(self.latch(pid)) else {
            return Ok(Attempt::Restart);
        };

        // Split the root first if it is full (grows the tree by one level).
        {
            let guard = self.bm.fetch(pid, AccessIntent::Write)?;
            let node = Node::new(guard);
            let count = node.count()?;
            if count >= node.capacity() {
                let new_root_pid = self.bm.allocate_page()?;
                {
                    let nr_guard = self.bm.fetch(new_root_pid, AccessIntent::Write)?;
                    let new_root = Node::new(nr_guard);
                    new_root.format(NodeTag::Inner, pid.0)?;
                    self.split_child(&new_root, 0, &node, pid)?;
                }
                let Some(new_held) = Held::acquire(self.latch(new_root_pid)) else {
                    return Ok(Attempt::Restart);
                };
                held = new_held; // old root unlocks via drop
                *root_guard = new_root_pid;
                pid = new_root_pid;
            }
        }

        // Descend holding parent write latch; child is split before entry.
        loop {
            let guard = self.bm.fetch(pid, AccessIntent::Write)?;
            let node = Node::new(guard);
            let tag = node.tag()?.expect("write-latched node has a valid tag");
            let count = node.count()?;
            match tag {
                NodeTag::Inner => {
                    let child_pid = node.child_for(key, count)?;
                    let Some(child_held) = Held::acquire(self.latch(child_pid)) else {
                        return Ok(Attempt::Restart);
                    };
                    let child_guard = self.bm.fetch(child_pid, AccessIntent::Write)?;
                    let child = Node::new(child_guard);
                    let child_count = child.count()?;
                    if child_count >= child.capacity() {
                        // Parent is guaranteed non-full (split on the way
                        // down), so the separator insert cannot overflow.
                        let child_pos = match node.search(key, count)? {
                            Ok(i) => i + 1,
                            Err(i) => i,
                        };
                        self.split_child(&node, child_pos, &child, child_pid)?;
                        // The split may have moved our key's range to the
                        // new right node; re-route.
                        let new_child_pid = node.child_for(key, node.count()?)?;
                        if new_child_pid != child_pid {
                            drop(child_held);
                            let Some(new_held) = Held::acquire(self.latch(new_child_pid)) else {
                                return Ok(Attempt::Restart);
                            };
                            held = new_held; // parent unlocks via drop
                            pid = new_child_pid;
                            continue;
                        }
                    }
                    held = child_held; // parent unlocks via drop
                    pid = child_pid;
                }
                NodeTag::Leaf => {
                    debug_assert!(count < node.capacity(), "leaf split preemptively");
                    let outcome = match node.search(key, count)? {
                        Ok(i) => {
                            let old = node.value(i)?;
                            node.set_entry(i, key, value)?;
                            Some(old)
                        }
                        Err(pos) => {
                            let tail = node.entries(pos, count)?;
                            node.write_entries(pos + 1, &tail)?;
                            node.set_entry(pos, key, value)?;
                            node.set_count(count + 1)?;
                            None
                        }
                    };
                    drop(held);
                    return Ok(Attempt::Done(outcome));
                }
            }
        }
    }

    /// Split write-latched `child` (at `child_pos` within the write-latched
    /// `parent`), publishing the separator and new right node.
    fn split_child(
        &self,
        parent: &Node<'_>,
        child_pos: usize,
        child: &Node<'_>,
        _child_pid: PageId,
    ) -> Result<()> {
        let tag = child.tag()?.expect("write-latched node has a valid tag");
        let count = child.count()?;
        let mid = count / 2;
        let new_pid = self.bm.allocate_page()?;
        let new_guard = self.bm.fetch(new_pid, AccessIntent::Write)?;
        let new_node = Node::new(new_guard);

        let separator = match tag {
            NodeTag::Leaf => {
                let sep = child.key(mid)?;
                // Right half moves; sibling chain: child -> new -> old next.
                new_node.format(NodeTag::Leaf, child.aux()?)?;
                let moved = child.entries(mid, count)?;
                new_node.write_entries(0, &moved)?;
                new_node.set_count(moved.len())?;
                child.set_aux(new_pid.0)?;
                child.set_count(mid)?;
                sep
            }
            NodeTag::Inner => {
                // The middle key is promoted; its right child becomes the
                // new node's leftmost child.
                let sep = child.key(mid)?;
                new_node.format(NodeTag::Inner, child.value(mid)?)?;
                let moved = child.entries(mid + 1, count)?;
                new_node.write_entries(0, &moved)?;
                new_node.set_count(moved.len())?;
                child.set_count(mid)?;
                sep
            }
        };

        // Insert (separator, new_pid) into the parent at child_pos.
        let pcount = parent.count()?;
        debug_assert!(pcount < parent.capacity(), "parent split preemptively");
        let tail = parent.entries(child_pos, pcount)?;
        parent.write_entries(child_pos + 1, &tail)?;
        parent.set_entry(child_pos, separator, new_pid.0)?;
        parent.set_count(pcount + 1)?;
        Ok(())
    }

    /// Remove `key`; returns its value if present. Leaves are not
    /// rebalanced (lazy deletion, as in LeanStore): under-full leaves are
    /// absorbed by future inserts.
    pub fn remove(&self, key: u64) -> Result<Option<u64>> {
        for attempt in 0..MAX_RESTARTS {
            match self.try_remove(key)? {
                Attempt::Done(v) => return Ok(v),
                Attempt::Restart => backoff(attempt),
            }
        }
        Err(IndexError::RestartLimit)
    }

    fn try_remove(&self, key: u64) -> Result<Attempt<Option<u64>>> {
        let mut pid = *self.root.read();
        let mut latch = self.latch(pid);
        let Ok(mut version) = latch.read_lock() else {
            return Ok(Attempt::Restart);
        };
        if *self.root.read() != pid {
            return Ok(Attempt::Restart);
        }
        loop {
            let guard = match self.bm.fetch(pid, AccessIntent::Write) {
                Ok(g) => g,
                Err(BufferError::UnknownPage(_)) => return Ok(Attempt::Restart),
                Err(e) => return Err(e.into()),
            };
            let node = Node::new(guard);
            let Some(tag) = node.tag()? else {
                return Ok(Attempt::Restart);
            };
            let count = node.count()?;
            match tag {
                NodeTag::Inner => {
                    let child = node.child_for(key, count)?;
                    let child_latch = self.latch(child);
                    let Ok(child_version) = child_latch.read_lock() else {
                        return Ok(Attempt::Restart);
                    };
                    if latch.read_unlock(version).is_err() {
                        return Ok(Attempt::Restart);
                    }
                    pid = child;
                    latch = child_latch;
                    version = child_version;
                }
                NodeTag::Leaf => {
                    if latch.upgrade(version).is_err() {
                        return Ok(Attempt::Restart);
                    }
                    let outcome = (|| -> Result<Option<u64>> {
                        let count = node.count()?;
                        match node.search(key, count)? {
                            Ok(i) => {
                                let old = node.value(i)?;
                                let tail = node.entries(i + 1, count)?;
                                node.write_entries(i, &tail)?;
                                node.set_count(count - 1)?;
                                Ok(Some(old))
                            }
                            Err(_) => Ok(None),
                        }
                    })();
                    latch.write_unlock();
                    return Ok(Attempt::Done(outcome?));
                }
            }
        }
    }

    /// Collect up to `limit` entries with keys in `[start, ∞)`, in key
    /// order (used by TPC-C order scans).
    pub fn scan_from(&self, start: u64, limit: usize) -> Result<Vec<(u64, u64)>> {
        'restart: for attempt in 0..MAX_RESTARTS {
            if attempt > 0 {
                backoff(attempt);
            }
            let mut out = Vec::with_capacity(limit.min(1024));
            // Descend to the leaf containing `start`.
            let mut pid = *self.root.read();
            let mut latch = self.latch(pid);
            let Ok(mut version) = latch.read_lock() else {
                continue 'restart;
            };
            if *self.root.read() != pid {
                continue 'restart;
            }
            loop {
                let guard = match self.bm.fetch(pid, AccessIntent::Read) {
                    Ok(g) => g,
                    Err(BufferError::UnknownPage(_)) => continue 'restart,
                    Err(e) => return Err(e.into()),
                };
                let node = Node::new(guard);
                let Some(tag) = node.tag()? else {
                    continue 'restart;
                };
                let count = node.count()?;
                match tag {
                    NodeTag::Inner => {
                        let child = node.child_for(start, count)?;
                        let child_latch = self.latch(child);
                        let Ok(child_version) = child_latch.read_lock() else {
                            continue 'restart;
                        };
                        if latch.read_unlock(version).is_err() {
                            continue 'restart;
                        }
                        pid = child;
                        latch = child_latch;
                        version = child_version;
                    }
                    NodeTag::Leaf => {
                        // Walk the sibling chain collecting entries.
                        let mut leaf = node;
                        loop {
                            let count = leaf.count()?;
                            let from = match leaf.search(start, count)? {
                                Ok(i) => i,
                                Err(i) => i,
                            };
                            let entries = leaf.entries(from, count)?;
                            let sibling = leaf.aux()?;
                            if latch.read_unlock(version).is_err() {
                                continue 'restart;
                            }
                            for e in entries {
                                if out.len() >= limit {
                                    return Ok(out);
                                }
                                out.push(e);
                            }
                            if sibling == NO_SIBLING || out.len() >= limit {
                                return Ok(out);
                            }
                            let next = PageId(sibling);
                            let next_latch = self.latch(next);
                            let Ok(next_version) = next_latch.read_lock() else {
                                continue 'restart;
                            };
                            let guard = match self.bm.fetch(next, AccessIntent::Read) {
                                Ok(g) => g,
                                Err(BufferError::UnknownPage(_)) => continue 'restart,
                                Err(e) => return Err(e.into()),
                            };
                            latch = next_latch;
                            version = next_version;
                            leaf = Node::new(guard);
                            if leaf.tag()? != Some(NodeTag::Leaf) {
                                continue 'restart;
                            }
                        }
                    }
                }
            }
        }
        Err(IndexError::RestartLimit)
    }

    /// Height of the tree (levels from root to leaf), for diagnostics.
    pub fn height(&self) -> Result<usize> {
        let mut pid = *self.root.read();
        let mut h = 1;
        loop {
            let guard = self.bm.fetch(pid, AccessIntent::Read)?;
            let node = Node::new(guard);
            match node.tag()? {
                Some(NodeTag::Inner) => {
                    pid = PageId(node.aux()?);
                    h += 1;
                }
                _ => return Ok(h),
            }
        }
    }
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTree")
            .field("root", &self.root_page())
            .finish_non_exhaustive()
    }
}
