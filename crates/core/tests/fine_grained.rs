//! Tests for cache-line-grained loading and mini pages (paper §2.1,
//! Figures 2, 11, 12).

use spitfire_core::{
    AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, PageId, Tier,
};
use spitfire_device::TimeScale;

const PAGE: usize = 4096;
const GRANULE: usize = 256;

/// Granule used for mini-page tests: sixteen 128 B slots plus the header
/// fit inside one 4 KB slab frame (16 × 128 + 64 = 2112 ≤ 4096).
const MINI_GRANULE: usize = 128;

fn fg_manager(mini: bool) -> BufferManager {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(8 * PAGE)
        .nvm_capacity(16 * (PAGE + 64))
        .policy(MigrationPolicy::eager()) // promote immediately, like HyMem
        .fine_grained(if mini { MINI_GRANULE } else { GRANULE })
        .mini_pages(mini)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    BufferManager::new(config).unwrap()
}

/// Write a recognizable pattern over the whole page via NVM, so granule
/// loads have distinct content to fetch.
fn seed_page(bm: &BufferManager, pid: PageId) {
    let g = bm.fetch(pid, AccessIntent::Write).unwrap();
    // First write-intent fetch promotes to a fine/mini DRAM copy; write the
    // full page so all granules exist (forcing residency).
    let mut page = vec![0u8; PAGE];
    for (i, b) in page.iter_mut().enumerate() {
        *b = (i / GRANULE) as u8;
    }
    g.write(0, &page).unwrap();
}

#[test]
fn fine_page_reads_load_granules_on_demand() {
    let bm = fg_manager(false);
    let pid = bm.allocate_page().unwrap();
    // Load into NVM and dirty it there so SSD is stale: contents must come
    // from the NVM copy, proving the fine page reads its backing page.
    {
        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Nvm, "first touch lands in NVM (N_r = 1)");
    }
    // Write via the promoted fine-grained copy.
    seed_page(&bm, pid);
    // Fresh read of scattered granules.
    let nvm_reads_before = bm.device_stats(Tier::Nvm).unwrap().snapshot().bytes_read;
    let g = bm.fetch(pid, AccessIntent::Read).unwrap();
    assert_eq!(g.tier(), Tier::Dram, "fine-grained copies serve from DRAM");
    let mut buf = [0u8; 16];
    g.read(5 * GRANULE, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 5));
    g.read(15 * GRANULE + 100, &mut buf).unwrap();
    assert!(buf.iter().all(|&b| b == 15));
    let nvm_reads_after = bm.device_stats(Tier::Nvm).unwrap().snapshot().bytes_read;
    // The page stayed promoted the whole time, so no whole-page transfer
    // happened after seeding.
    assert!(nvm_reads_after - nvm_reads_before < PAGE as u64);
}

#[test]
fn fine_page_partial_write_read_back() {
    let bm = fg_manager(false);
    let pid = bm.allocate_page().unwrap();
    let _ = bm.fetch(pid, AccessIntent::Read).unwrap(); // SSD -> NVM
    let g = bm.fetch(pid, AccessIntent::Write).unwrap(); // promote fine
                                                         // Write spanning a granule boundary (partially covering both).
    g.write(GRANULE - 8, &[0xCD; 16]).unwrap();
    let mut buf = [0u8; 16];
    g.read(GRANULE - 8, &mut buf).unwrap();
    assert_eq!(buf, [0xCD; 16]);
    // Un-written bytes of the same granules read back as zero (from NVM).
    let mut before = [0u8; 8];
    g.read(GRANULE - 16, &mut before).unwrap();
    assert_eq!(before, [0u8; 8]);
}

#[test]
fn fine_page_eviction_writes_back_dirty_granules_only() {
    let bm = fg_manager(false);
    let pid = bm.allocate_page().unwrap();
    let _ = bm.fetch(pid, AccessIntent::Read).unwrap(); // SSD -> NVM
    {
        let g = bm.fetch(pid, AccessIntent::Write).unwrap(); // promote fine
        g.write(3 * GRANULE, &[0xEE; GRANULE]).unwrap(); // dirty granule 3
    }
    let nvm_written_before = bm.device_stats(Tier::Nvm).unwrap().snapshot().bytes_written;
    // Force eviction of the fine copy by filling DRAM with other pages.
    let fillers: Vec<PageId> = (0..24).map(|_| bm.allocate_page().unwrap()).collect();
    for f in &fillers {
        let g = bm.fetch(*f, AccessIntent::Write).unwrap();
        g.write(0, &[1u8; 64]).unwrap();
    }
    let nvm_written_after = bm.device_stats(Tier::Nvm).unwrap().snapshot().bytes_written;
    // After eviction the page content must still be correct (served from
    // NVM, which received the dirty granule).
    let g = bm.fetch(pid, AccessIntent::Read).unwrap();
    let mut buf = [0u8; GRANULE];
    g.read(3 * GRANULE, &mut buf).unwrap();
    assert_eq!(buf, [0xEE; GRANULE]);
    assert!(
        nvm_written_after > nvm_written_before,
        "dirty granule must be written back to NVM"
    );
}

#[test]
fn mini_page_serves_up_to_sixteen_granules() {
    let bm = fg_manager(true);
    let pid = bm.allocate_page().unwrap();
    let _ = bm.fetch(pid, AccessIntent::Read).unwrap(); // SSD -> NVM
    let g = bm.fetch(pid, AccessIntent::Write).unwrap(); // promote mini
    assert_eq!(g.tier(), Tier::Dram);
    // Touch granules 0..16 (exactly sixteen): stays a mini page.
    for i in 0..16 {
        g.write(i * MINI_GRANULE, &[i as u8 + 1; 32]).unwrap();
    }
    for i in 0..16 {
        let mut buf = [0u8; 32];
        g.read(i * MINI_GRANULE, &mut buf).unwrap();
        assert_eq!(buf, [i as u8 + 1; 32], "granule {i}");
    }
}

#[test]
fn mini_page_overflow_promotes_to_fine_page() {
    let bm = fg_manager(true);
    let pid = bm.allocate_page().unwrap();
    let _ = bm.fetch(pid, AccessIntent::Read).unwrap();
    let g = bm.fetch(pid, AccessIntent::Write).unwrap();
    // Sixteen granules fill the mini page...
    for i in 0..16 {
        g.write(i * MINI_GRANULE, &[i as u8 + 1; 32]).unwrap();
    }
    // ...the seventeenth overflows it into a fine page, transparently.
    g.write(15 * MINI_GRANULE + MINI_GRANULE, &[0x77; 32])
        .unwrap();
    // Everything written before the promotion must survive it.
    for i in 0..16 {
        let mut buf = [0u8; 32];
        g.read(i * MINI_GRANULE, &mut buf).unwrap();
        assert_eq!(buf, [i as u8 + 1; 32], "granule {i} lost in promotion");
    }
    let mut buf = [0u8; 32];
    g.read(16 * MINI_GRANULE, &mut buf).unwrap();
    assert_eq!(buf, [0x77; 32]);
}

#[test]
fn mini_pages_share_slab_frames() {
    let bm = fg_manager(true);
    // Eight pages, each touched lightly: as minis they share slab frames,
    // so DRAM frame usage stays below one-frame-per-page.
    let pids: Vec<PageId> = (0..8).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &pids {
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap(); // SSD -> NVM
        let g = bm.fetch(*pid, AccessIntent::Write).unwrap(); // mini
        g.write(0, &[7u8; 16]).unwrap();
    }
    for pid in &pids {
        let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
        let mut buf = [0u8; 16];
        g.read(0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 16]);
    }
    // stride = 16*128 + 64 = 2112, so a 4 KB slab hosts one mini page
    // (16 KB pages host three; see fgpage unit tests for sharing).
    let (dram_resident, _) = bm.resident_pages();
    assert!(dram_resident >= 1);
}

#[test]
fn mini_page_roundtrip_under_eviction_pressure() {
    // Small DRAM pool with mini pages: constant churn through slabs.
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(4 * PAGE)
        .nvm_capacity(32 * (PAGE + 64))
        .policy(MigrationPolicy::eager())
        .fine_grained(64) // slab stride = 16*64+64 = 1088 -> 3 minis/slab
        .mini_pages(true)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..24).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
        let g = bm.fetch(*pid, AccessIntent::Write).unwrap();
        g.write(128, &[i as u8; 64]).unwrap();
    }
    for (i, pid) in pids.iter().enumerate() {
        let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
        let mut buf = [0u8; 64];
        g.read(128, &mut buf).unwrap();
        assert_eq!(buf, [i as u8; 64], "page {i} corrupted under mini churn");
    }
}

#[test]
fn concurrent_fine_grained_access() {
    use std::sync::Arc;
    let bm = Arc::new(fg_manager(false));
    let pids: Vec<PageId> = (0..16).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &pids {
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
    }
    let pids = Arc::new(pids);
    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                for round in 0..10u8 {
                    for chunk in 0..4 {
                        let pid = pids[t + chunk * 4];
                        let g = bm.fetch(pid, AccessIntent::Write).unwrap();
                        g.write((t * GRANULE) % PAGE, &[round; 32]).unwrap();
                        let mut buf = [0u8; 32];
                        g.read((t * GRANULE) % PAGE, &mut buf).unwrap();
                        assert_eq!(buf, [round; 32]);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
