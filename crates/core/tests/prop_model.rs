//! Property-based model checking: the buffer manager must behave exactly
//! like a flat in-memory array of pages, for any sequence of operations,
//! any migration policy, and any hierarchy — migrations and evictions must
//! never lose or corrupt bytes.

use proptest::prelude::*;
use spitfire_core::{AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, PageId};
use spitfire_device::TimeScale;

const PAGE: usize = 1024;
const MAX_PAGES: usize = 24;

#[derive(Debug, Clone)]
enum Op {
    /// Write `len` copies of `byte` at `offset` in page `page`.
    Write {
        page: usize,
        offset: usize,
        len: usize,
        byte: u8,
    },
    /// Read `len` bytes at `offset` of page `page` and compare to model.
    Read {
        page: usize,
        offset: usize,
        len: usize,
    },
    /// Flush all dirty DRAM pages.
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..MAX_PAGES, 0..PAGE, 1..128usize, any::<u8>()).prop_map(|(page, offset, len, byte)| {
            let len = len.min(PAGE - offset);
            Op::Write { page, offset, len, byte }
        }),
        4 => (0..MAX_PAGES, 0..PAGE, 1..128usize).prop_map(|(page, offset, len)| {
            let len = len.min(PAGE - offset);
            Op::Read { page, offset, len }
        }),
        1 => Just(Op::Flush),
    ]
}

#[derive(Debug, Clone)]
struct Config {
    dram_pages: usize,
    nvm_pages: usize,
    policy: MigrationPolicy,
    fine: Option<usize>,
    mini: bool,
}

fn config_strategy() -> impl Strategy<Value = Config> {
    let policy = prop_oneof![
        Just(MigrationPolicy::eager()),
        Just(MigrationPolicy::lazy()),
        Just(MigrationPolicy::hymem()),
        (0.0..=1.0, 0.0..=1.0, 0.0..=1.0, 0.0..=1.0)
            .prop_map(|(a, b, c, d)| MigrationPolicy::new(a, b, c, d)),
    ];
    (
        2..6usize,
        0..10usize,
        policy,
        prop_oneof![Just(None), Just(Some(64usize))],
    )
        .prop_map(|(dram_pages, nvm_pages, policy, fine)| Config {
            dram_pages,
            nvm_pages,
            policy,
            // Fine-grained loading requires an NVM buffer to back partial
            // pages. Mini pages (16 × 64 + 64 = 1088 B) do not fit in this
            // test's 1 KB slab frames, so they are exercised in
            // `fine_grained.rs` instead.
            fine: if nvm_pages > 0 { fine } else { None },
            mini: false,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn buffer_manager_matches_flat_model(
        cfg in config_strategy(),
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let config = BufferManagerConfig::builder()
            .page_size(PAGE)
            .dram_capacity(cfg.dram_pages * PAGE)
            .nvm_capacity(cfg.nvm_pages * (PAGE + 64))
            .policy(cfg.policy)
            .seed(seed)
            .time_scale(TimeScale::ZERO);
        let config = match cfg.fine {
            Some(g) => config.fine_grained(g).mini_pages(cfg.mini),
            None => config,
        };
        let bm = BufferManager::new(config.build().unwrap()).unwrap();
        let pids: Vec<PageId> = (0..MAX_PAGES).map(|_| bm.allocate_page().unwrap()).collect();
        let mut model = vec![vec![0u8; PAGE]; MAX_PAGES];

        for op in &ops {
            match *op {
                Op::Write { page, offset, len, byte } => {
                    let g = bm.fetch(pids[page], AccessIntent::Write).unwrap();
                    g.write(offset, &vec![byte; len]).unwrap();
                    model[page][offset..offset + len].fill(byte);
                }
                Op::Read { page, offset, len } => {
                    let g = bm.fetch(pids[page], AccessIntent::Read).unwrap();
                    let mut buf = vec![0u8; len];
                    g.read(offset, &mut buf).unwrap();
                    prop_assert_eq!(
                        &buf[..],
                        &model[page][offset..offset + len],
                        "page {} range [{}, {}) diverged under policy {}",
                        page, offset, offset + len, cfg.policy
                    );
                }
                Op::Flush => {
                    bm.flush_all_dirty().unwrap();
                }
            }
        }
        // Final full verification of every page.
        for (i, pid) in pids.iter().enumerate() {
            let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
            let mut buf = vec![0u8; PAGE];
            g.read(0, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[i][..], "final state of page {} diverged", i);
        }
    }

    #[test]
    fn crash_recovery_preserves_flushed_state(
        seed in any::<u64>(),
        writes in proptest::collection::vec(
            (0..8usize, 0..PAGE, 1..64usize, any::<u8>()), 1..40),
    ) {
        // NVM-heavy policy so most state lives in the persistent tier.
        let config = BufferManagerConfig::builder()
            .page_size(PAGE)
            .dram_capacity(2 * PAGE)
            .nvm_capacity(16 * (PAGE + 64))
            .policy(MigrationPolicy::new(0.0, 0.0, 1.0, 1.0))
            .persistence(spitfire_device::PersistenceTracking::Full)
            .seed(seed)
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        let bm = BufferManager::new(config).unwrap();
        let pids: Vec<PageId> = (0..8).map(|_| bm.allocate_page().unwrap()).collect();
        let mut model = vec![vec![0u8; PAGE]; 8];
        for &(page, offset, len, byte) in &writes {
            let len = len.min(PAGE - offset);
            let g = bm.fetch(pids[page], AccessIntent::Write).unwrap();
            g.write(offset, &vec![byte; len]).unwrap();
            model[page][offset..offset + len].fill(byte);
        }
        // Everything written went to NVM (D = 0) and NVM guard writes are
        // persisted immediately, so a crash + NVM scan must lose nothing.
        bm.simulate_crash();
        let recovered = bm.recover_nvm_buffer();
        bm.admin().set_next_page_id(8);
        prop_assert!(recovered.len() <= 8);
        for (i, pid) in pids.iter().enumerate() {
            let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
            let mut buf = vec![0u8; PAGE];
            g.read(0, &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &model[i][..], "page {} lost data across crash", i);
        }
    }
}
