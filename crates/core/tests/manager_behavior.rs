//! Behavioural tests for the buffer manager: migration paths, eviction
//! plans, policy effects, hierarchies, crash recovery.

use spitfire_core::{
    AccessIntent, BufferError, BufferManager, BufferManagerConfig, MigrationPath, MigrationPolicy,
    PageId, Tier,
};
use spitfire_device::{PersistenceTracking, TimeScale};

const PAGE: usize = 4096;

fn manager(dram_pages: usize, nvm_pages: usize, policy: MigrationPolicy) -> BufferManager {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(dram_pages * PAGE)
        // The NVM pool carves a 64 B header per frame out of its budget, so
        // over-provision slightly to get exactly `nvm_pages` frames.
        .nvm_capacity(nvm_pages * (PAGE + 64))
        .policy(policy)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    BufferManager::new(config).unwrap()
}

fn fill_page(bm: &BufferManager, pid: PageId, byte: u8) {
    let g = bm.fetch(pid, AccessIntent::Write).unwrap();
    g.write(0, &vec![byte; PAGE]).unwrap();
}

fn check_page(bm: &BufferManager, pid: PageId, byte: u8) {
    let g = bm.fetch(pid, AccessIntent::Read).unwrap();
    let mut buf = vec![0u8; PAGE];
    g.read(0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == byte),
        "page {pid} corrupted (expected {byte:#x})"
    );
}

#[test]
fn read_your_writes_under_eviction_pressure() {
    // 4 DRAM + 8 NVM frames, 64 pages: every access cycles through SSD.
    let bm = manager(4, 8, MigrationPolicy::lazy());
    let pids: Vec<PageId> = (0..64).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8);
    }
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8);
    }
    // Second round of updates to catch stale-copy bugs.
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, (i as u8).wrapping_add(100));
    }
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, (i as u8).wrapping_add(100));
    }
}

#[test]
fn eager_policy_promotes_to_dram() {
    let bm = manager(4, 8, MigrationPolicy::eager());
    let pid = bm.allocate_page().unwrap();
    // Eager N_r = 1: the SSD miss lands in NVM; eager D_r promotes next.
    {
        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Nvm, "eager N_r admits SSD reads to NVM");
    }
    {
        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Dram, "eager D_r promotes NVM pages to DRAM");
    }
    {
        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Dram, "subsequent reads hit DRAM");
    }
    let m = bm.metrics();
    assert_eq!(m.path(MigrationPath::SsdToNvm), 1);
    assert_eq!(m.path(MigrationPath::NvmToDram), 1);
    assert_eq!(m.dram_hits, 1);
    assert_eq!(
        m.nvm_hits, 0,
        "the second fetch promoted rather than served from NVM"
    );
}

#[test]
fn fully_lazy_policy_reads_nvm_in_place() {
    let bm = manager(4, 8, MigrationPolicy::new(0.0, 0.0, 1.0, 1.0));
    let pid = bm.allocate_page().unwrap();
    for _ in 0..10 {
        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Nvm, "D_r = 0 never promotes");
    }
    assert_eq!(bm.metrics().path(MigrationPath::NvmToDram), 0);
    assert_eq!(bm.metrics().nvm_hits, 9);
}

#[test]
fn nr_zero_bypasses_nvm_on_reads() {
    let bm = manager(4, 8, MigrationPolicy::new(1.0, 1.0, 0.0, 1.0));
    let pid = bm.allocate_page().unwrap();
    let g = bm.fetch(pid, AccessIntent::Read).unwrap();
    assert_eq!(
        g.tier(),
        Tier::Dram,
        "N_r = 0 loads SSD pages straight to DRAM"
    );
    drop(g);
    let m = bm.metrics();
    assert_eq!(m.path(MigrationPath::SsdToDram), 1);
    assert_eq!(m.path(MigrationPath::SsdToNvm), 0);
}

#[test]
fn clean_dram_evictions_are_discarded() {
    let bm = manager(2, 4, MigrationPolicy::new(1.0, 1.0, 0.0, 1.0));
    let pids: Vec<PageId> = (0..6).map(|_| bm.allocate_page().unwrap()).collect();
    // Read-only traffic: all pages go SSD->DRAM and are evicted clean.
    for pid in &pids {
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
    }
    let m = bm.metrics();
    assert!(
        m.discards >= 4,
        "clean pages must be discarded, got {}",
        m.discards
    );
    assert_eq!(
        m.path(MigrationPath::DramToSsd),
        0,
        "no clean page is written back"
    );
    assert_eq!(m.path(MigrationPath::DramToNvm), 0);
}

#[test]
fn dirty_eviction_with_nw_zero_writes_straight_to_ssd() {
    let bm = manager(2, 4, MigrationPolicy::new(1.0, 1.0, 0.0, 0.0));
    let pids: Vec<PageId> = (0..8).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8);
    }
    let m = bm.metrics();
    assert!(m.path(MigrationPath::DramToSsd) >= 6);
    assert_eq!(
        m.path(MigrationPath::DramToNvm),
        0,
        "N_w = 0 never admits to NVM"
    );
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8);
    }
}

#[test]
fn dirty_eviction_with_nw_one_admits_to_nvm() {
    let bm = manager(2, 8, MigrationPolicy::new(1.0, 1.0, 0.0, 1.0));
    let pids: Vec<PageId> = (0..6).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8);
    }
    let m = bm.metrics();
    assert!(
        m.path(MigrationPath::DramToNvm) >= 4,
        "N_w = 1 admits dirty evictions to NVM"
    );
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8);
    }
}

#[test]
fn dirty_dram_eviction_merges_into_existing_nvm_copy() {
    let bm = manager(1, 4, MigrationPolicy::new(1.0, 1.0, 1.0, 1.0));
    let a = bm.allocate_page().unwrap();
    let b = bm.allocate_page().unwrap();
    // Load a via NVM (N_r = 1) and promote it (D_w = 1): copies in both.
    let _ = bm.fetch(a, AccessIntent::Read).unwrap(); // SSD -> NVM
    fill_page(&bm, a, 0xAB); // promoted to DRAM, then dirtied
                             // Dirty b in DRAM (D_w = 1 places writes there) to evict a from the
                             // 1-frame DRAM buffer.
    fill_page(&bm, b, 0x01);
    // a's newer bytes must have been merged into its NVM copy.
    check_page(&bm, a, 0xAB);
    assert!(bm.metrics().path(MigrationPath::DramToNvm) >= 1);
}

#[test]
fn hymem_admission_queue_admits_on_second_eviction() {
    let mut policy = MigrationPolicy::hymem();
    policy.nr = 0.0;
    let bm = manager(1, 8, policy);
    let a = bm.allocate_page().unwrap();
    let b = bm.allocate_page().unwrap();
    // First dirty eviction of a: denied (queued), goes to SSD.
    fill_page(&bm, a, 1);
    fill_page(&bm, b, 2); // evicts a
    let m = bm.metrics();
    assert_eq!(m.path(MigrationPath::DramToSsd), 1);
    assert_eq!(m.path(MigrationPath::DramToNvm), 0);
    // Second dirty eviction of a: admitted to NVM.
    fill_page(&bm, a, 3); // evicts b (b is now queued)
    fill_page(&bm, b, 4); // evicts a -> admitted
    let m = bm.metrics();
    assert_eq!(
        m.path(MigrationPath::DramToNvm),
        1,
        "second consideration admits"
    );
    check_page(&bm, a, 3);
    check_page(&bm, b, 4);
}

#[test]
fn dram_ssd_hierarchy_works_without_nvm() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(4 * PAGE)
        .nvm_capacity(0)
        .policy(MigrationPolicy::eager())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..12).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8);
        let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Dram);
    }
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8);
    }
    assert_eq!(bm.metrics().path(MigrationPath::SsdToNvm), 0);
}

#[test]
fn nvm_ssd_hierarchy_works_without_dram() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(0)
        .nvm_capacity(6 * (PAGE + 64))
        .policy(MigrationPolicy::lazy())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..12).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8);
        let g = bm.fetch(*pid, AccessIntent::Read).unwrap();
        assert_eq!(g.tier(), Tier::Nvm);
    }
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8);
    }
}

#[test]
fn memory_mode_round_trips_and_counts_cache() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .memory_mode(true)
        .dram_capacity(4 * PAGE) // DRAM cache
        .nvm_capacity(16 * PAGE) // visible capacity
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..8).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8);
    }
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8);
    }
    let (hits, misses) = bm.memory_mode_cache().expect("memory mode active");
    assert!(hits > 0 && misses > 0, "hits {hits}, misses {misses}");
}

#[test]
fn unknown_page_is_rejected() {
    let bm = manager(2, 2, MigrationPolicy::lazy());
    let err = bm.fetch(PageId(99), AccessIntent::Read).unwrap_err();
    assert_eq!(err, BufferError::UnknownPage(PageId(99)));
}

#[test]
fn exhausted_pins_report_no_frames() {
    // Two-tier DRAM-SSD: no fallback tier exists, so pinning every frame
    // must surface NoFrames.
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(2 * PAGE)
        .nvm_capacity(0)
        .policy(MigrationPolicy::eager())
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..3).map(|_| bm.allocate_page().unwrap()).collect();
    let _g0 = bm.fetch(pids[0], AccessIntent::Read).unwrap();
    let _g1 = bm.fetch(pids[1], AccessIntent::Read).unwrap();
    let err = bm.fetch(pids[2], AccessIntent::Read).unwrap_err();
    assert_eq!(err, BufferError::NoFrames { tier: Tier::Dram });
    // Dropping a guard makes fetch succeed again.
    drop(_g0);
    assert!(bm.fetch(pids[2], AccessIntent::Read).is_ok());
}

#[test]
fn exhausted_dram_falls_back_to_nvm() {
    // Three-tier: with both DRAM frames pinned, a DRAM-destined fetch
    // degrades to NVM placement instead of failing.
    let bm = manager(2, 2, MigrationPolicy::new(1.0, 1.0, 0.0, 1.0));
    let pids: Vec<PageId> = (0..3).map(|_| bm.allocate_page().unwrap()).collect();
    let _g0 = bm.fetch(pids[0], AccessIntent::Read).unwrap();
    let _g1 = bm.fetch(pids[1], AccessIntent::Read).unwrap();
    let g2 = bm.fetch(pids[2], AccessIntent::Read).unwrap();
    assert_eq!(g2.tier(), Tier::Nvm);
}

#[test]
fn inclusivity_lower_for_lazy_than_eager() {
    let run = |policy: MigrationPolicy, seed: u64| {
        // Working set (24 pages) fits entirely in NVM (32 frames) with a
        // small DRAM buffer (4 frames), matching the cacheable regime of
        // Table 2 where the inclusivity difference shows.
        let config = BufferManagerConfig::builder()
            .page_size(PAGE)
            .dram_capacity(4 * PAGE)
            .nvm_capacity(32 * (PAGE + 64))
            .policy(policy)
            .seed(seed)
            .time_scale(TimeScale::ZERO)
            .build()
            .unwrap();
        let bm = BufferManager::new(config).unwrap();
        let pids: Vec<PageId> = (0..24).map(|_| bm.allocate_page().unwrap()).collect();
        // Skewed reads: page i accessed 24 - i times per round.
        for _round in 0..8 {
            for (i, pid) in pids.iter().enumerate() {
                for _ in 0..(24 - i) {
                    let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
                }
            }
        }
        bm.inclusivity()
    };
    let eager = run(MigrationPolicy::eager(), 1);
    let lazy = run(MigrationPolicy::lazy(), 1);
    assert!(
        lazy <= eager,
        "lazy inclusivity {lazy} should not exceed eager {eager} (Table 2)"
    );
    assert!(eager > 0.0, "eager policy must duplicate some pages");
}

#[test]
fn flush_all_dirty_clears_dirty_pages() {
    let bm = manager(4, 4, MigrationPolicy::new(1.0, 1.0, 0.0, 1.0));
    let pids: Vec<PageId> = (0..3).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, i as u8 + 1);
    }
    let flushed = bm.flush_all_dirty().unwrap();
    assert_eq!(flushed, 3);
    // A second flush finds nothing dirty.
    assert_eq!(bm.flush_all_dirty().unwrap(), 0);
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, i as u8 + 1);
    }
}

#[test]
fn crash_loses_dram_keeps_persisted_nvm() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(4 * PAGE)
        .nvm_capacity(8 * (PAGE + 64))
        .policy(MigrationPolicy::new(0.0, 0.0, 1.0, 1.0)) // everything lives on NVM
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pids: Vec<PageId> = (0..4).map(|_| bm.allocate_page().unwrap()).collect();
    for (i, pid) in pids.iter().enumerate() {
        fill_page(&bm, *pid, 0x40 + i as u8); // direct NVM writes, persisted
    }
    bm.simulate_crash();
    let recovered = bm.recover_nvm_buffer();
    assert_eq!(recovered.len(), 4, "all four pages were NVM-resident");
    for (i, pid) in pids.iter().enumerate() {
        check_page(&bm, *pid, 0x40 + i as u8);
    }
}

#[test]
fn crash_without_recovery_falls_back_to_ssd_versions() {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(4 * PAGE)
        .nvm_capacity(4 * (PAGE + 64))
        .policy(MigrationPolicy::new(1.0, 1.0, 0.0, 0.0)) // DRAM only, SSD write-back
        .persistence(PersistenceTracking::Full)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    let bm = BufferManager::new(config).unwrap();
    let pid = bm.allocate_page().unwrap();
    fill_page(&bm, pid, 0x77);
    bm.flush_all_dirty().unwrap();
    fill_page(&bm, pid, 0x99); // dirty in DRAM only
    bm.simulate_crash();
    bm.admin().set_next_page_id(pid.0 + 1);
    // The un-flushed 0x99 version is gone; SSD serves 0x77.
    check_page(&bm, pid, 0x77);
}

#[test]
fn concurrent_disjoint_writers_land_correct_bytes() {
    use std::sync::Arc;
    let bm = Arc::new(manager(8, 16, MigrationPolicy::lazy()));
    let pids: Vec<PageId> = (0..64).map(|_| bm.allocate_page().unwrap()).collect();
    let pids = Arc::new(pids);
    let handles: Vec<_> = (0..8usize)
        .map(|t| {
            let bm = Arc::clone(&bm);
            let pids = Arc::clone(&pids);
            std::thread::spawn(move || {
                // Thread t owns pages t, t+8, t+16, ...
                for round in 0..20u8 {
                    for chunk in 0..8 {
                        let pid = pids[t + chunk * 8];
                        let g = bm.fetch(pid, AccessIntent::Write).unwrap();
                        g.write(0, &[t as u8 ^ round; 128]).unwrap();
                        drop(g);
                        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
                        let mut buf = [0u8; 128];
                        g.read(0, &mut buf).unwrap();
                        assert!(buf.iter().all(|&b| b == t as u8 ^ round));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn concurrent_readers_share_hot_pages() {
    use std::sync::Arc;
    let bm = Arc::new(manager(4, 8, MigrationPolicy::lazy()));
    let pid = bm.allocate_page().unwrap();
    fill_page(&bm, pid, 0x5A);
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let bm = Arc::clone(&bm);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let g = bm.fetch(pid, AccessIntent::Read).unwrap();
                    let mut buf = [0u8; 64];
                    g.read(512, &mut buf).unwrap();
                    assert!(buf.iter().all(|&b| b == 0x5A));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn promotion_probability_reaches_one_in_steady_state() {
    // Empirical check of §3.5's theoretical analysis: with D_r = 0.1 a page
    // absent from DRAM is eventually promoted.
    let bm = manager(4, 8, MigrationPolicy::new(0.1, 0.1, 1.0, 1.0));
    let pid = bm.allocate_page().unwrap();
    let mut promoted = false;
    for _ in 0..500 {
        let g = bm.fetch(pid, AccessIntent::Read).unwrap();
        if g.tier() == Tier::Dram {
            promoted = true;
            break;
        }
    }
    assert!(
        promoted,
        "a D_r = 0.1 page must be promoted within 500 reads"
    );
}
