//! CLOCK replacement behaviour at the buffer-manager level: reference
//! bits must keep the frequently-touched pages resident (paper §3, §5.1:
//! "the cache replacement policy and the data migration policy work in
//! tandem to place the pages in the appropriate tiers based on their
//! access frequency").

use spitfire_core::{
    AccessIntent, BufferManager, BufferManagerConfig, MigrationPolicy, PageId, Tier,
};
use spitfire_device::TimeScale;

const PAGE: usize = 1024;

fn manager(dram_pages: usize, nvm_pages: usize, policy: MigrationPolicy) -> BufferManager {
    let config = BufferManagerConfig::builder()
        .page_size(PAGE)
        .dram_capacity(dram_pages * PAGE)
        .nvm_capacity(nvm_pages * (PAGE + 64))
        .policy(policy)
        .time_scale(TimeScale::ZERO)
        .build()
        .unwrap();
    BufferManager::new(config).unwrap()
}

#[test]
fn hot_pages_survive_cold_scans_in_dram() {
    // 8-frame DRAM-only buffer; 4 hot pages re-touched between every cold
    // access must stay resident (second chances), while 32 cold pages
    // stream through the remaining frames.
    let bm = manager(8, 0, MigrationPolicy::eager());
    let hot: Vec<PageId> = (0..4).map(|_| bm.allocate_page().unwrap()).collect();
    let cold: Vec<PageId> = (0..32).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &hot {
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
    }
    bm.reset_metrics();
    for round in 0..8 {
        for c in &cold {
            // Touch every hot page between cold fetches: their reference
            // bits stay set, so CLOCK gives them second chances.
            for h in &hot {
                let _ = bm.fetch(*h, AccessIntent::Read).unwrap();
            }
            let _ = bm.fetch(*c, AccessIntent::Read).unwrap();
            let _ = round;
        }
    }
    let m = bm.metrics();
    // Hot fetches: 8 rounds * 32 cold * 4 hot = 1024. All but a handful
    // must be DRAM hits (a hot page may lose its frame only in rare hand
    // races).
    let hot_fetches = 8 * 32 * 4;
    assert!(
        m.dram_hits >= hot_fetches - 64,
        "hot pages were evicted too often: {} hits of {}",
        m.dram_hits,
        hot_fetches
    );
    // Cold pages must actually stream through SSD.
    assert!(
        m.ssd_fetches > 200,
        "cold scan did not generate misses: {}",
        m.ssd_fetches
    );
}

#[test]
fn nvm_clock_keeps_warm_pages_under_streaming() {
    // NVM-only hierarchy: warm set of 6 pages vs streaming 40-page scans.
    let bm = manager(0, 12, MigrationPolicy::lazy());
    let warm: Vec<PageId> = (0..6).map(|_| bm.allocate_page().unwrap()).collect();
    let stream: Vec<PageId> = (0..40).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &warm {
        let _ = bm.fetch(*pid, AccessIntent::Read).unwrap();
    }
    bm.reset_metrics();
    for s in &stream {
        for w in &warm {
            let _ = bm.fetch(*w, AccessIntent::Read).unwrap();
        }
        let _ = bm.fetch(*s, AccessIntent::Read).unwrap();
    }
    let m = bm.metrics();
    let warm_fetches = (40 * 6) as u64;
    assert!(
        m.nvm_hits >= warm_fetches - 24,
        "warm pages churned out of NVM: {} hits of {}",
        m.nvm_hits,
        warm_fetches
    );
}

#[test]
fn eviction_counts_balance_with_buffer_occupancy() {
    let bm = manager(4, 8, MigrationPolicy::eager());
    let pids: Vec<PageId> = (0..64).map(|_| bm.allocate_page().unwrap()).collect();
    for pid in &pids {
        let g = bm.fetch(*pid, AccessIntent::Write).unwrap();
        g.write(0, &[1u8; 16]).unwrap();
    }
    let m = bm.metrics();
    let (dram_res, nvm_res) = bm.resident_pages();
    // Conservation: pages brought in = still resident + evicted/discarded.
    let brought_to_dram = m.path(spitfire_core::MigrationPath::SsdToDram)
        + m.path(spitfire_core::MigrationPath::NvmToDram);
    assert_eq!(
        brought_to_dram - m.evictions_dram,
        dram_res as u64,
        "DRAM in-flow minus evictions must equal residency"
    );
    assert!(nvm_res as u64 <= 8 + 1);
    assert!(dram_res as u64 <= 4);
}

#[test]
fn touch_on_hit_refreshes_reference_bit() {
    // Single-frame DRAM: alternating between two pages forces an eviction
    // on every access (no reference-bit protection possible), while
    // repeating one page produces pure hits. Distinguishes touch-on-hit
    // from touch-on-install.
    let bm = manager(1, 0, MigrationPolicy::eager());
    let a = bm.allocate_page().unwrap();
    let b = bm.allocate_page().unwrap();
    for _ in 0..10 {
        let _ = bm.fetch(a, AccessIntent::Read).unwrap();
    }
    let m1 = bm.metrics();
    assert_eq!(m1.ssd_fetches, 1, "repeated access to one page misses once");
    for _ in 0..10 {
        let _ = bm.fetch(a, AccessIntent::Read).unwrap();
        let _ = bm.fetch(b, AccessIntent::Read).unwrap();
    }
    let m2 = bm.metrics();
    assert!(
        m2.ssd_fetches >= 19,
        "alternating pages in a 1-frame pool must thrash: {} fetches",
        m2.ssd_fetches
    );
    // The device never read more pages than fetch misses (no double I/O).
    let ssd = bm.device_stats(Tier::Ssd).unwrap().snapshot();
    assert!(ssd.read_ops >= m2.ssd_fetches);
}
